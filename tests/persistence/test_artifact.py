"""Artifact save/load: registry-wide bitwise round-trips + strict rejection."""

from __future__ import annotations

import json
import zipfile

import numpy as np
import pytest

from repro.core.config import ArrangementERMConfig
from repro.core.registry import available_estimators, estimator_class, make_estimator
from repro.persistence import (
    ARTIFACT_SUFFIX,
    FORMAT_VERSION,
    load_manifest,
    load_model,
    save_model,
    training_fingerprint,
)
from repro.robustness.errors import ArtifactError, PersistenceError

REGISTRY_NAMES = sorted(available_estimators())


def _fit(name, workload):
    train_q, train_s, _, _ = workload
    estimator = make_estimator(name, train_size=len(train_q))
    estimator.fit(train_q, train_s)
    return estimator


@pytest.fixture(scope="module")
def workload(request):
    return request.getfixturevalue("power2d_box_workload")


# -- round trips ---------------------------------------------------------


@pytest.mark.parametrize("name", REGISTRY_NAMES)
def test_roundtrip_bitwise(name, workload, tmp_path):
    """Every registry estimator survives save→load with bitwise-equal
    predictions — the acceptance bar for the artifact format."""
    train_q, train_s, test_q, _ = workload
    estimator = _fit(name, workload)
    path = tmp_path / f"{name}{ARTIFACT_SUFFIX}"
    save_model(estimator, path, training=(train_q, train_s))

    restored = load_model(path)
    assert type(restored) is type(estimator)
    before = estimator.predict_many(test_q)
    after = restored.predict_many(test_q)
    np.testing.assert_array_equal(before, after)
    assert restored.model_size == estimator.model_size


def test_roundtrip_arrangement_histogram_mode(workload, tmp_path):
    """The non-default histogram mode persists its cell geometry too."""
    train_q, train_s, test_q, _ = workload
    cls = estimator_class("arrangement")
    estimator = cls.from_config(
        ArrangementERMConfig(mode="histogram", samples=512, max_cells=20_000)
    )
    estimator.fit(train_q, train_s)
    path = tmp_path / "arr-hist.rma"
    save_model(estimator, path)
    restored = load_model(path)
    np.testing.assert_array_equal(
        estimator.predict_many(test_q), restored.predict_many(test_q)
    )
    assert restored.mode == "histogram"


def test_roundtrip_twice_is_identical(workload, tmp_path):
    """save(load(save(x))) produces the same payload checksum."""
    estimator = _fit("quadhist", workload)
    first = tmp_path / "a.rma"
    second = tmp_path / "b.rma"
    save_model(estimator, first)
    save_model(load_model(first), second)
    assert (
        load_manifest(first)["payload_sha256"]
        == load_manifest(second)["payload_sha256"]
    )


# -- manifest contents ---------------------------------------------------


def test_manifest_records_provenance(workload, tmp_path):
    train_q, train_s, _, _ = workload
    estimator = _fit("ptshist", workload)
    path = tmp_path / "m.rma"
    save_model(
        estimator, path, training=(train_q, train_s), metadata={"note": "x"}
    )
    manifest = load_manifest(path)
    assert manifest["format_version"] == FORMAT_VERSION
    assert manifest["estimator"] == "ptshist"
    assert manifest["config"]["size"] == estimator.size
    assert manifest["model_size"] == estimator.model_size
    fit = manifest["fit"]
    assert fit["n_train"] == len(train_q)
    assert fit["training_fingerprint"] == training_fingerprint(train_q, train_s)
    assert fit["note"] == "x"
    assert fit["saved_at"] > 0


def test_training_fingerprint_is_stable_and_sensitive(workload):
    train_q, train_s, _, _ = workload
    base = training_fingerprint(train_q, train_s)
    assert base == training_fingerprint(train_q, list(train_s))
    perturbed = np.array(train_s, dtype=float)
    perturbed[0] += 1e-9
    assert base != training_fingerprint(train_q, perturbed)
    assert base != training_fingerprint(train_q[:-1], train_s[:-1])


# -- save-side rejection -------------------------------------------------


def test_save_unfitted_rejected(tmp_path):
    estimator = make_estimator("quadhist")
    with pytest.raises(PersistenceError, match="unfitted"):
        save_model(estimator, tmp_path / "x.rma")


def test_failed_save_leaves_no_partial_file(workload, tmp_path, monkeypatch):
    """A crash mid-write must not leave a half-written artifact behind."""
    estimator = _fit("mean", workload)
    target = tmp_path / "crash.rma"

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr("os.replace", boom)
    with pytest.raises(OSError):
        save_model(estimator, target)
    assert list(tmp_path.iterdir()) == []


# -- load-side rejection -------------------------------------------------


@pytest.fixture
def saved(workload, tmp_path):
    estimator = _fit("quadhist", workload)
    path = tmp_path / "good.rma"
    save_model(estimator, path)
    return path


def test_load_missing_file(tmp_path):
    with pytest.raises(PersistenceError, match="not found"):
        load_model(tmp_path / "nope.rma")


def test_load_not_a_zip(tmp_path):
    path = tmp_path / "garbage.rma"
    path.write_bytes(b"this is not a zip archive")
    with pytest.raises(ArtifactError, match="not a valid archive"):
        load_model(path)


def test_load_truncated(saved):
    data = saved.read_bytes()
    saved.write_bytes(data[: len(data) // 2])
    with pytest.raises(ArtifactError):
        load_model(saved)


def test_load_corrupted_payload(saved):
    """Flipping payload bytes trips the checksum, not a numpy error."""
    data = bytearray(saved.read_bytes())
    # Flip bytes in the middle of the archive (inside the stored npz).
    mid = len(data) // 2
    for i in range(mid, mid + 8):
        data[i] ^= 0xFF
    saved.write_bytes(bytes(data))
    with pytest.raises(ArtifactError):
        load_model(saved)


def _rewrite_manifest(path, mutate):
    with zipfile.ZipFile(path, "r") as archive:
        manifest = json.loads(archive.read("manifest.json"))
        payload = archive.read("payload.npz")
    mutate(manifest)
    with zipfile.ZipFile(path, "w") as archive:
        archive.writestr("manifest.json", json.dumps(manifest))
        archive.writestr("payload.npz", payload)


def test_load_version_skew(saved):
    _rewrite_manifest(
        saved, lambda m: m.__setitem__("format_version", FORMAT_VERSION + 1)
    )
    with pytest.raises(ArtifactError, match="format version"):
        load_model(saved)
    with pytest.raises(ArtifactError, match="format version"):
        load_manifest(saved)


def test_load_checksum_mismatch(saved):
    _rewrite_manifest(saved, lambda m: m.__setitem__("payload_sha256", "0" * 64))
    with pytest.raises(ArtifactError, match="checksum"):
        load_model(saved)


def test_load_unknown_estimator(saved):
    def mutate(manifest):
        manifest["payload_sha256"] = manifest["payload_sha256"]
        manifest["estimator"] = "no-such-estimator"

    _rewrite_manifest(saved, mutate)
    with pytest.raises(ArtifactError, match="no-such-estimator"):
        load_model(saved)


def test_load_missing_member(saved, tmp_path):
    stripped = tmp_path / "stripped.rma"
    with zipfile.ZipFile(saved, "r") as archive:
        manifest = archive.read("manifest.json")
    with zipfile.ZipFile(stripped, "w") as archive:
        archive.writestr("manifest.json", manifest)
    with pytest.raises(ArtifactError, match="missing member"):
        load_model(stripped)


def test_load_state_mismatch(saved):
    """A manifest naming the wrong estimator class for its payload is
    rejected by the state-restore step, not silently mis-restored."""

    def mutate(manifest):
        manifest["estimator"] = "mean"
        manifest["config"] = {}

    _rewrite_manifest(saved, mutate)
    with pytest.raises(ArtifactError, match="does not match"):
        load_model(saved)
