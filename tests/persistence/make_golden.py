"""Regenerate the golden compatibility artifact.

Run from the repo root whenever FORMAT_VERSION is bumped (and only then —
the whole point of the golden file is that *unintentional* format changes
fail ``test_golden_artifact.py``):

    PYTHONPATH=src python tests/persistence/make_golden.py

Writes ``data/golden-quadhist-v<N>.rma`` plus a JSON sidecar with the
exact predictions the artifact must keep producing.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.config import QuadHistConfig
from repro.core.quadhist import QuadHist
from repro.geometry.ranges import Box
from repro.persistence import FORMAT_VERSION, save_model

DATA_DIR = Path(__file__).parent / "data"


def golden_workload():
    """A small deterministic 2-D box workload (no dataset needed:
    labels are exact box volumes, i.e. uniform-data selectivities)."""
    rng = np.random.default_rng(20260806)
    queries, labels = [], []
    for _ in range(80):
        lows = rng.uniform(0.0, 0.7, size=2)
        highs = np.minimum(lows + rng.uniform(0.05, 0.3, size=2), 1.0)
        queries.append(Box(lows, highs))
        labels.append(float(np.prod(highs - lows)))
    test = []
    for _ in range(25):
        lows = rng.uniform(0.0, 0.7, size=2)
        highs = np.minimum(lows + rng.uniform(0.05, 0.3, size=2), 1.0)
        test.append(Box(lows, highs))
    return queries, labels, test


def main() -> None:
    queries, labels, test = golden_workload()
    config = QuadHistConfig(tau=0.01, max_leaves=128, domain=Box([0.0, 0.0], [1.0, 1.0]))
    estimator = QuadHist.from_config(config)
    estimator.fit(queries, labels)

    stem = f"golden-quadhist-v{FORMAT_VERSION}"
    DATA_DIR.mkdir(exist_ok=True)
    artifact = DATA_DIR / f"{stem}.rma"
    save_model(estimator, artifact, training=(queries, labels))

    predictions = [float(v) for v in estimator.predict_many(test)]
    sidecar = DATA_DIR / f"{stem}.json"
    sidecar.write_text(
        json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "test_queries": [
                    {"lows": q.lows.tolist(), "highs": q.highs.tolist()} for q in test
                ],
                "predictions": predictions,
            },
            indent=2,
        )
    )
    print(f"wrote {artifact} and {sidecar}")


if __name__ == "__main__":
    main()
