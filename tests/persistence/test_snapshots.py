"""SnapshotStore: generation naming, pruning, corrupt-tolerant restore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import make_estimator
from repro.persistence import SnapshotStore
from repro.robustness.errors import PersistenceError


@pytest.fixture
def fitted(power2d_box_workload):
    train_q, train_s, _, _ = power2d_box_workload
    estimator = make_estimator("ptshist", train_size=len(train_q))
    estimator.fit(train_q, train_s)
    return estimator


def test_empty_store(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    assert store.generations() == []
    assert store.latest_generation() is None
    with pytest.raises(PersistenceError, match="no restorable snapshot"):
        store.restore_latest()


def test_save_names_and_prunes(tmp_path, fitted):
    store = SnapshotStore(tmp_path, keep=3)
    for generation in range(1, 6):
        path = store.save(fitted, generation)
        assert path.name == f"gen-{generation:08d}.rma"
    assert store.generations() == [3, 4, 5]
    assert store.latest_generation() == 5


def test_keep_none_retains_everything(tmp_path, fitted):
    store = SnapshotStore(tmp_path, keep=None)
    for generation in range(1, 6):
        store.save(fitted, generation)
    assert store.generations() == [1, 2, 3, 4, 5]


def test_keep_validation(tmp_path):
    with pytest.raises(ValueError, match="keep"):
        SnapshotStore(tmp_path, keep=0)


def test_restore_latest_roundtrips(tmp_path, fitted, power2d_box_workload):
    _, _, test_q, _ = power2d_box_workload
    store = SnapshotStore(tmp_path)
    store.save(fitted, 1)
    store.save(fitted, 2)
    restored, manifest, path = store.restore_latest()
    assert manifest["fit"]["generation"] == 2
    assert path == store.path_for(2)
    np.testing.assert_array_equal(
        fitted.predict_many(test_q), restored.predict_many(test_q)
    )


def test_restore_skips_corrupt_latest(tmp_path, fitted):
    """A truncated newest generation falls back to the one before it."""
    store = SnapshotStore(tmp_path)
    store.save(fitted, 1)
    store.save(fitted, 2)
    latest = store.path_for(2)
    latest.write_bytes(latest.read_bytes()[:100])
    _, manifest, path = store.restore_latest()
    assert manifest["fit"]["generation"] == 1
    assert path == store.path_for(1)


def test_restore_all_corrupt_raises_with_detail(tmp_path, fitted):
    store = SnapshotStore(tmp_path)
    store.save(fitted, 1)
    store.path_for(1).write_bytes(b"junk")
    with pytest.raises(PersistenceError, match="gen-00000001"):
        store.restore_latest()


def test_foreign_files_ignored(tmp_path, fitted):
    store = SnapshotStore(tmp_path)
    store.save(fitted, 7)
    (tmp_path / "notes.txt").write_text("hi")
    (tmp_path / "gen-bad.rma").write_text("nope")
    assert store.generations() == [7]


class TestPruneLock:
    """Advisory O_EXCL lockfile serializing prunes across processes."""

    def test_lock_released_after_prune(self, tmp_path, fitted):
        store = SnapshotStore(tmp_path, keep=1)
        store.save(fitted, 1)
        store.save(fitted, 2)
        assert store.generations() == [2]  # prune ran ...
        assert not store.lock_path.exists()  # ... and released the lock

    def test_contended_prune_is_skipped_then_converges(self, tmp_path, fitted):
        store = SnapshotStore(tmp_path, keep=1)
        store.save(fitted, 1)
        # A live sibling pruner holds the lock: this save's prune must
        # skip instead of racing it.
        store.lock_path.write_text("4242")
        store.save(fitted, 2)
        assert store.generations() == [1, 2]  # retention exceeded, not pruned
        assert store.lock_path.read_text() == "4242"  # not our lock: untouched
        # Holder releases; the next save converges retention.
        store.lock_path.unlink()
        store.save(fitted, 3)
        assert store.generations() == [3]

    def test_stale_lock_taken_over(self, tmp_path, fitted):
        import os

        store = SnapshotStore(tmp_path, keep=1, stale_lock_seconds=30.0)
        store.save(fitted, 1)
        # A pruner died mid-prune long ago, leaving its lockfile behind.
        store.lock_path.write_text("dead")
        old = 1_000_000.0
        os.utime(store.lock_path, (old, old))
        store.save(fitted, 2)
        assert store.generations() == [2]  # takeover happened, prune ran
        assert not store.lock_path.exists()

    def test_fresh_lock_not_stolen(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        store.directory.mkdir(exist_ok=True)
        store.lock_path.write_text("live")
        assert store._try_lock() is False
        assert store.lock_path.read_text() == "live"

    def test_try_lock_writes_pid_and_unlock_removes(self, tmp_path):
        import os

        store = SnapshotStore(tmp_path, keep=1)
        store.directory.mkdir(exist_ok=True)
        assert store._try_lock() is True
        assert store.lock_path.read_text() == str(os.getpid())
        store._unlock()
        assert not store.lock_path.exists()

    def test_stale_lock_seconds_validation(self, tmp_path):
        with pytest.raises(ValueError, match="stale_lock_seconds"):
            SnapshotStore(tmp_path, stale_lock_seconds=-1.0)
