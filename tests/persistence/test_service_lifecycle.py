"""EstimatorService persistence: warm restarts, snapshot/restore API,
and the versioned HTTP surface with its deprecation aliases."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.registry import make_estimator
from repro.observability import MetricsRegistry
from repro.persistence import SnapshotStore, save_model
from repro.robustness.errors import PersistenceError
from repro.server import EstimatorService, serve


@pytest.fixture
def workload(power2d_box_workload):
    train_q, train_s, test_q, _ = power2d_box_workload
    return train_q, train_s, test_q


def _service(snapshot_dir=None, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return EstimatorService(
        lambda: make_estimator("ptshist", train_size=100),
        min_feedback=20,
        snapshot_dir=str(snapshot_dir) if snapshot_dir is not None else None,
        **kwargs,
    )


def _feed(service, queries, labels):
    for query, label in zip(queries, labels):
        service.feedback(query, float(label))


# -- service lifecycle ---------------------------------------------------


def test_retrain_persists_generation(tmp_path, workload):
    train_q, train_s, _ = workload
    service = _service(tmp_path)
    _feed(service, train_q, train_s)
    service.retrain()
    store = SnapshotStore(tmp_path)
    assert store.generations() == [1]
    status = service.status()
    assert status["snapshot"]["generation"] == 1
    assert status["snapshot_dir"] == str(tmp_path)


def test_restart_restores_without_refit(tmp_path, workload):
    """The acceptance criterion: a restarted service serves the prior
    generation immediately, with bitwise-identical predictions."""
    train_q, train_s, test_q = workload
    first = _service(tmp_path)
    _feed(first, train_q, train_s)
    first.retrain()
    before = first.estimate_many(test_q)

    calls = []

    def counting_factory():
        calls.append(1)
        return make_estimator("ptshist", train_size=100)

    second = EstimatorService(
        counting_factory,
        min_feedback=20,
        snapshot_dir=str(tmp_path),
        registry=MetricsRegistry(),
    )
    status = second.status()
    assert status["trained"] is True
    assert status["generation"] == 1
    assert status["restored_from"] == str(SnapshotStore(tmp_path).path_for(1))
    assert calls == []  # restored, not refitted
    assert second.estimate_many(test_q) == before


def test_restart_with_empty_dir_cold_starts(tmp_path):
    service = _service(tmp_path / "fresh")
    status = service.status()
    assert status["trained"] is False
    assert status["restored_from"] is None


def test_restart_with_corrupt_snapshots_cold_starts(tmp_path):
    (tmp_path / "gen-00000001.rma").write_bytes(b"junk")
    service = _service(tmp_path)
    assert service.status()["trained"] is False


def test_snapshot_and_restore_api(tmp_path, workload):
    train_q, train_s, test_q = workload
    service = _service(tmp_path, snapshot_keep=None)
    _feed(service, train_q, train_s)
    service.retrain()

    result = service.snapshot()
    assert result["generation"] == 1
    before = service.estimate_many(test_q)

    restored = service.restore()
    assert restored["generation"] == 2  # restore installs a new generation
    assert restored["estimator"] == "ptshist"
    assert service.estimate_many(test_q) == before


def test_restore_explicit_path(tmp_path, workload):
    train_q, train_s, test_q = workload
    estimator = make_estimator("quadhist", train_size=len(train_q))
    estimator.fit(train_q, train_s)
    path = tmp_path / "external.rma"
    save_model(estimator, path, training=(train_q, train_s))

    service = _service()  # no snapshot_dir: explicit-path restore still works
    result = service.restore(str(path))
    assert result["restored_from"] == str(path)
    assert service.status()["trained_on"] == len(train_q)
    np.testing.assert_array_equal(
        service.estimate_many(test_q), estimator.predict_many(test_q)
    )


def test_snapshot_without_dir_rejected(workload):
    service = _service()
    with pytest.raises(PersistenceError, match="snapshot directory"):
        service.snapshot()
    with pytest.raises(PersistenceError, match="snapshot directory"):
        service.restore()


def test_persist_failure_never_fails_retrain(tmp_path, workload, monkeypatch):
    train_q, train_s, _ = workload
    service = _service(tmp_path)
    _feed(service, train_q, train_s)
    monkeypatch.setattr(
        SnapshotStore, "save", lambda *a, **k: (_ for _ in ()).throw(OSError("full"))
    )
    result = service.retrain()  # must succeed despite the broken store
    assert result["generation"] == 1
    assert service.status()["trained"] is True
    text = service.registry.render()
    assert 'repro_snapshot_total{outcome="failure"} 1' in text


def test_snapshot_metrics_exported(tmp_path, workload):
    train_q, train_s, _ = workload
    service = _service(tmp_path)
    _feed(service, train_q, train_s)
    service.retrain()
    service.status()  # refreshes the age gauge
    text = service.registry.render()
    assert 'repro_snapshot_total{outcome="success"} 1' in text
    assert "repro_snapshot_generation 1" in text
    assert "repro_snapshot_age_seconds" in text


# -- versioned HTTP surface ----------------------------------------------


@pytest.fixture
def http(tmp_path, workload):
    train_q, train_s, _ = workload
    service = _service(tmp_path)
    _feed(service, train_q, train_s)
    service.retrain()
    server = serve(service)
    host, port = server.server_address
    base = f"http://{host}:{port}"

    def request(path, method="GET", body=None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(base + path, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=10) as response:
                return response.status, dict(response.headers), json.loads(
                    response.read()
                )
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.loads(exc.read())

    yield request, service
    server.shutdown()


def _box_payload(query):
    from repro.data.io import range_to_dict

    return range_to_dict(query)


def test_v1_paths_serve(http, workload):
    request, _ = http
    _, _, test_q = workload
    status, headers, body = request("/v1/status")
    assert status == 200 and body["trained"] is True
    assert "Deprecation" not in headers

    status, headers, body = request(
        "/v1/estimate", "POST", {"query": _box_payload(test_q[0])}
    )
    assert status == 200 and 0.0 <= body["selectivity"] <= 1.0
    assert "Deprecation" not in headers

    status, _, body = request(
        "/v1/predict", "POST", {"queries": [_box_payload(q) for q in test_q[:4]]}
    )
    assert status == 200 and body["count"] == 4


def test_legacy_aliases_deprecated_but_equivalent(http, workload):
    request, _ = http
    _, _, test_q = workload
    for legacy, v1 in [("/status", "/v1/status")]:
        status, headers, body = request(legacy)
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert v1 in headers.get("Link", "")
        _, _, v1_body = request(v1)
        assert body.keys() == v1_body.keys()

    payload = {"query": _box_payload(test_q[0])}
    status, headers, legacy_body = request("/estimate", "POST", payload)
    assert status == 200 and headers.get("Deprecation") == "true"
    _, v1_headers, v1_body = request("/v1/estimate", "POST", payload)
    assert "Deprecation" not in v1_headers
    assert legacy_body == v1_body


def test_health_and_metrics_unversioned(http):
    request, _ = http
    status, headers, body = request("/health")
    assert status == 200 and body["status"] == "ok"
    assert "Deprecation" not in headers


def test_v1_snapshot_and_restore_endpoints(http):
    request, service = http
    status, _, body = request("/v1/snapshot", "POST", {})
    assert status == 200 and body["generation"] == 1

    status, _, body = request("/v1/restore", "POST", {})
    assert status == 200 and body["generation"] == 2
    assert service.status()["generation"] == 2

    status, _, body = request("/v1/restore", "POST", {"path": "/nope.rma"})
    assert status == 409 and body["type"] == "PersistenceError"

    status, _, body = request("/v1/restore", "POST", {"path": 5})
    assert status == 400 and body["type"] == "DataValidationError"


def test_v1_unknown_path_404(http):
    request, _ = http
    status, _, body = request("/v1/nope", "POST", {})
    assert status == 404 and body["type"] == "NotFound"
