"""Backwards-compatibility gate: the committed golden artifact must load.

The artifact under ``data/`` was written by an earlier revision of the
codebase (regenerate with ``make_golden.py`` *only* on an intentional
FORMAT_VERSION bump).  If a refactor of the estimators, configs, or the
artifact format breaks loading — or changes a single bit of the
predictions — this test fails before any user's saved model does.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.geometry.ranges import Box
from repro.persistence import FORMAT_VERSION, load_manifest, load_model

DATA_DIR = Path(__file__).parent / "data"
STEM = f"golden-quadhist-v{FORMAT_VERSION}"


@pytest.fixture(scope="module")
def golden():
    artifact = DATA_DIR / f"{STEM}.rma"
    sidecar = DATA_DIR / f"{STEM}.json"
    if not artifact.exists():
        pytest.fail(
            f"golden artifact {artifact} missing; regenerate with "
            "tests/persistence/make_golden.py after a FORMAT_VERSION bump"
        )
    return artifact, json.loads(sidecar.read_text())


def test_golden_manifest_loads(golden):
    artifact, sidecar = golden
    manifest = load_manifest(artifact)
    assert manifest["format_version"] == sidecar["format_version"] == FORMAT_VERSION
    assert manifest["estimator"] == "quadhist"
    assert manifest["fit"]["n_train"] == 80


def test_golden_predictions_bitwise(golden):
    artifact, sidecar = golden
    estimator = load_model(artifact)
    queries = [
        Box(item["lows"], item["highs"]) for item in sidecar["test_queries"]
    ]
    predictions = [float(v) for v in estimator.predict_many(queries)]
    assert predictions == sidecar["predictions"]
