"""Low-crossing orderings (the Lemma 2.4 machinery)."""

import numpy as np
import pytest

from repro.geometry import Box, unit_box
from repro.learning import (
    crossing_counts,
    expected_crossings,
    greedy_low_crossing_order,
    max_crossing_number,
)


def _random_boxes(rng, k):
    return [
        Box.from_center(rng.random(2), rng.random(2) * 0.5 + 0.1, clip_to=unit_box(2))
        for _ in range(k)
    ]


class TestCrossingCounts:
    def test_identical_ranges_never_cross(self, rng):
        box = Box([0.2, 0.2], [0.7, 0.7])
        points = rng.random((200, 2))
        counts = crossing_counts([box, box, box], [0, 1, 2], points)
        assert np.all(counts == 0)

    def test_disjoint_interval_chain(self, rng):
        """1-D intervals laid left to right: a point inside interval i
        crosses exactly its two adjacent pairs (enter + leave)."""
        intervals = [Box([i / 5.0], [(i + 1) / 5.0 - 0.01]) for i in range(5)]
        points = np.array([[0.5]])  # inside interval 2
        counts = crossing_counts(intervals, [0, 1, 2, 3, 4], points)
        assert counts[0] == 2

    def test_point_outside_everything(self, rng):
        intervals = [Box([0.1], [0.2]), Box([0.3], [0.4])]
        counts = crossing_counts(intervals, [0, 1], np.array([[0.9]]))
        assert counts[0] == 0

    def test_order_validation(self, rng):
        boxes = _random_boxes(rng, 3)
        points = rng.random((10, 2))
        with pytest.raises(ValueError):
            crossing_counts(boxes, [0, 1], points)
        with pytest.raises(ValueError):
            crossing_counts(boxes, [0, 1, 1], points)

    def test_max_and_expected_relation(self, rng):
        boxes = _random_boxes(rng, 8)
        points = rng.random((500, 2))
        order = list(range(8))
        assert expected_crossings(boxes, order, points) <= max_crossing_number(
            boxes, order, points
        )


class TestGreedyOrdering:
    def test_is_permutation(self, rng):
        boxes = _random_boxes(rng, 12)
        points = rng.random((300, 2))
        order = greedy_low_crossing_order(boxes, points)
        assert sorted(order) == list(range(12))

    def test_beats_worst_random_ordering(self, rng):
        """Lemma 2.4's point, empirically: a good ordering has a far lower
        crossing number than typical random ones."""
        boxes = _random_boxes(rng, 16)
        points = rng.random((800, 2))
        greedy = greedy_low_crossing_order(boxes, points)
        greedy_max = max_crossing_number(boxes, greedy, points)
        random_maxima = []
        for _ in range(10):
            perm = list(rng.permutation(16))
            random_maxima.append(max_crossing_number(boxes, perm, points))
        assert greedy_max <= min(random_maxima)
        assert greedy_max < np.mean(random_maxima)

    def test_sublinear_growth_for_boxes(self, rng):
        """max_x I_x = O(k^{1-1/λ} log k) with λ = 4 for 2-D boxes: the
        crossing number of the greedy ordering grows clearly sublinearly.

        A point crossing *every* consecutive pair would give k-1; we check
        the greedy ordering stays well below half of that at k = 32."""
        k = 32
        boxes = _random_boxes(rng, k)
        points = rng.random((1500, 2))
        order = greedy_low_crossing_order(boxes, points)
        assert max_crossing_number(boxes, order, points) < (k - 1) / 2

    def test_start_parameter(self, rng):
        boxes = _random_boxes(rng, 5)
        points = rng.random((100, 2))
        order = greedy_low_crossing_order(boxes, points, start=3)
        assert order[0] == 3
        with pytest.raises(ValueError):
            greedy_low_crossing_order(boxes, points, start=9)

    def test_empty_input(self, rng):
        assert greedy_low_crossing_order([], rng.random((10, 2))) == []
