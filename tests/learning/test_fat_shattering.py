"""γ-fat-shattering of selectivity classes (Lemmas 2.6 / 2.7)."""

import pytest

from repro.geometry import Ball, Box
from repro.learning import delta_distribution_fat_shatters, fat_shatters


class TestFatShattersLP:
    def test_dual_shattered_pair_is_fat_shattered(self, rng):
        """Two overlapping boxes (not covering the domain) admit all four
        sign cells, so delta distributions γ-shatter them for any γ < 1/2
        (Lemma 2.7)."""
        ranges = [Box([0.1, 0.2], [0.5, 0.8]), Box([0.4, 0.2], [0.8, 0.8])]
        atoms = rng.random((300, 2))
        assert fat_shatters(ranges, atoms, gamma=0.45)

    def test_nested_boxes_not_fat_shattered_at_large_gamma(self, rng):
        """If R' ⊆ R then s(R') <= s(R) for every distribution, so the
        pattern (R' high, R low) is unrealisable: shattering fails for any
        γ with 2γ > 0 once witnesses must satisfy both orderings."""
        ranges = [Box([0.0, 0.0], [1.0, 1.0]), Box([0.2, 0.2], [0.8, 0.8])]
        atoms = rng.random((300, 2))
        # E = {inner} requires s(inner) >= sigma_1 + gamma and
        # s(outer) <= sigma_0 - gamma; with outer = domain, s(outer) = 1
        # always, so sigma_0 >= 1 + gamma is impossible.
        assert not fat_shatters(ranges, atoms, gamma=0.1)

    def test_identical_ranges_not_fat_shattered(self, rng):
        box = Box([0.2, 0.2], [0.7, 0.7])
        atoms = rng.random((200, 2))
        assert not fat_shatters([box, box], atoms, gamma=0.05)

    def test_empty_range_set_trivially_shattered(self, rng):
        assert fat_shatters([], rng.random((10, 2)), gamma=0.25)

    def test_invalid_gamma_rejected(self, rng):
        ranges = [Box([0.0, 0.0], [0.5, 0.5])]
        with pytest.raises(ValueError):
            fat_shatters(ranges, rng.random((10, 2)), gamma=0.6)

    def test_three_disjoint_boxes_fat_shattered_at_small_gamma(self, rng):
        """k pairwise-disjoint boxes not covering the domain are
        γ-shatterable up to γ = 1/(2k) (mass-splitting argument), but not
        beyond: the all-high and all-low patterns need Σσ >= kγ and
        Σ(σ+γ) <= 1 simultaneously."""
        ranges = [
            Box([0.0, 0.1], [0.3, 0.9]),
            Box([0.35, 0.1], [0.65, 0.9]),
            Box([0.7, 0.1], [1.0, 0.9]),
        ]
        atoms = rng.random((400, 2))
        assert fat_shatters(ranges, atoms, gamma=0.15)
        assert not fat_shatters(ranges, atoms, gamma=0.3)

    def test_refuses_exponential_blowup(self, rng):
        ranges = [Box([0.0, 0.0], [0.5, 0.5])] * 13
        with pytest.raises(ValueError):
            fat_shatters(ranges, rng.random((10, 2)), gamma=0.1)


class TestDeltaConstruction:
    def test_lemma_2_7_overlapping_balls(self, rng):
        """Figure 5's construction with two overlapping discs."""
        ranges = [Ball([0.4, 0.5], 0.25), Ball([0.6, 0.5], 0.25)]
        pool = rng.random((4000, 2))
        assert delta_distribution_fat_shatters(ranges, pool, gamma=0.49)

    def test_fails_when_dual_not_shattered(self, rng):
        ranges = [Box([0.0, 0.0], [1.0, 1.0]), Box([0.2, 0.2], [0.8, 0.8])]
        pool = rng.random((2000, 2))
        assert not delta_distribution_fat_shatters(ranges, pool)

    def test_gamma_validation(self, rng):
        with pytest.raises(ValueError):
            delta_distribution_fat_shatters(
                [Box([0.0, 0.0], [0.5, 0.5])], rng.random((10, 2)), gamma=0.5
            )

    def test_consistency_with_lp(self, rng):
        """Whenever the delta construction succeeds, the LP must agree."""
        ranges = [Box([0.1, 0.2], [0.5, 0.8]), Box([0.4, 0.2], [0.8, 0.8])]
        pool = rng.random((1500, 2))
        assert delta_distribution_fat_shatters(ranges, pool, gamma=0.45)
        assert fat_shatters(ranges, pool[:200], gamma=0.45)
