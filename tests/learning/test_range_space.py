"""Realizability oracles: checked against geometric ground truth."""

import numpy as np
import pytest

from repro.learning import (
    ball_space,
    box_space,
    convex_polygon_space,
    dual_shatters,
    halfspace_space,
)
from repro.geometry import Ball, Box


DIAMOND = np.array([[0.5, 0.1], [0.5, 0.9], [0.1, 0.5], [0.9, 0.5]])


class TestBoxOracle:
    def test_empty_and_full_subsets_realizable(self):
        space = box_space(2)
        assert space.realizes_subset(DIAMOND, [])
        assert space.realizes_subset(DIAMOND, [0, 1, 2, 3])

    def test_singletons_realizable(self):
        space = box_space(2)
        for i in range(4):
            assert space.realizes_subset(DIAMOND, [i])

    def test_center_point_blocks_extremes(self):
        space = box_space(2)
        points = np.vstack([DIAMOND, [[0.5, 0.5]]])
        # Any box containing the 4 extreme points contains the center.
        assert not space.realizes_subset(points, [0, 1, 2, 3])

    def test_collinear_middle_blocked(self):
        space = box_space(1)
        points = np.array([[0.1], [0.5], [0.9]])
        assert not space.realizes_subset(points, [0, 2])
        assert space.realizes_subset(points, [0, 1])


class TestHalfspaceOracle:
    def test_separable_subset(self):
        space = halfspace_space(2)
        points = np.array([[0.1, 0.1], [0.2, 0.2], [0.9, 0.9]])
        assert space.realizes_subset(points, [2])
        assert space.realizes_subset(points, [0])

    def test_middle_of_segment_not_separable(self):
        space = halfspace_space(2)
        points = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]])
        assert not space.realizes_subset(points, [0, 2])

    def test_xor_not_separable(self):
        space = halfspace_space(2)
        points = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [1.0, 0.0]])
        assert not space.realizes_subset(points, [0, 1])

    def test_triangle_fully_shatterable(self):
        space = halfspace_space(2)
        tri = np.array([[0.2, 0.2], [0.8, 0.2], [0.5, 0.8]])
        for bits in range(8):
            subset = [i for i in range(3) if (bits >> i) & 1]
            assert space.realizes_subset(tri, subset)


class TestBallOracle:
    def test_singleton(self):
        space = ball_space(2)
        points = np.array([[0.2, 0.2], [0.8, 0.8]])
        assert space.realizes_subset(points, [0])

    def test_midpoint_of_pair_blocked(self):
        space = ball_space(1)
        points = np.array([[0.1], [0.5], [0.9]])
        # A 1-D ball is an interval: cannot contain 0.1 and 0.9 but not 0.5.
        assert not space.realizes_subset(points, [0, 2])

    def test_xor_not_realizable_by_balls(self):
        """Any disc through two opposite unit-square corners contains at
        least one of the other two (the perpendicular-shift argument), so
        the XOR dichotomy is unrealisable by genuine balls."""
        space = ball_space(2)
        points = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [1.0, 0.0]])
        assert not space.realizes_subset(points, [0, 1])
        assert not space.realizes_subset(points, [2, 3])

    def test_off_center_pair_realizable_by_balls(self):
        space = ball_space(2)
        points = np.array([[0.1, 0.1], [0.3, 0.1], [0.9, 0.9]])
        assert space.realizes_subset(points, [0, 1])

    def test_halfspace_dichotomies_are_ball_realizable(self, rng):
        """Balls of huge radius approximate halfspaces, so every
        halfspace-realizable dichotomy is ball-realizable."""
        hs = halfspace_space(2)
        balls = ball_space(2)
        points = rng.random((5, 2))
        for bits in range(1 << 5):
            subset = [i for i in range(5) if (bits >> i) & 1]
            if hs.realizes_subset(points, subset):
                assert balls.realizes_subset(points, subset)


class TestConvexPolygonOracle:
    def test_circle_points_all_realizable(self):
        space = convex_polygon_space()
        angles = np.linspace(0, 2 * np.pi, 6, endpoint=False)
        circle = np.stack([0.5 + 0.4 * np.cos(angles), 0.5 + 0.4 * np.sin(angles)], axis=1)
        for bits in range(1 << 6):
            subset = [i for i in range(6) if (bits >> i) & 1]
            assert space.realizes_subset(circle, subset)

    def test_interior_point_blocks(self):
        space = convex_polygon_space()
        points = np.array([[0.1, 0.1], [0.9, 0.1], [0.5, 0.9], [0.5, 0.4]])
        # The hull of the outer triangle contains the interior point.
        assert not space.realizes_subset(points, [0, 1, 2])


class TestDualShatters:
    def test_two_overlapping_boxes_dual_shattered(self, rng):
        ranges = [Box([0.1, 0.2], [0.5, 0.8]), Box([0.4, 0.2], [0.8, 0.8])]
        pool = rng.random((2000, 2))
        witnesses = dual_shatters(ranges, pool)
        assert len(witnesses) == 4  # {}, {0}, {1}, {0,1}

    def test_nested_boxes_not_dual_shattered(self, rng):
        ranges = [Box([0.1, 0.1], [0.9, 0.9]), Box([0.2, 0.2], [0.8, 0.8])]
        pool = rng.random((2000, 2))
        witnesses = dual_shatters(ranges, pool)
        # No point is in the inner box but outside the outer box.
        assert frozenset({1}) not in witnesses
        assert len(witnesses) == 3

    def test_witnesses_are_correct(self, rng):
        ranges = [Ball([0.3, 0.5], 0.25), Ball([0.7, 0.5], 0.25)]
        witnesses = dual_shatters(ranges, rng.random((3000, 2)))
        for key, point in witnesses.items():
            for idx, r in enumerate(ranges):
                assert (idx in key) == (point in r)

    def test_invalid_subset_index(self):
        space = box_space(2)
        with pytest.raises(IndexError):
            space.realizes_subset(DIAMOND, [7])
