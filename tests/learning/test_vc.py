"""VC-dimension checks against the textbook values Section 2.2 cites."""

import numpy as np
import pytest

from repro.learning import (
    ball_space,
    box_space,
    convex_polygon_space,
    estimate_vc_dimension,
    halfspace_space,
    shatters,
    vc_dimension_lower_bound,
)

DIAMOND = np.array([[0.5, 0.1], [0.5, 0.9], [0.1, 0.5], [0.9, 0.5]])


class TestShatters:
    def test_boxes_shatter_diamond(self):
        assert shatters(box_space(2), DIAMOND)

    def test_boxes_cannot_shatter_five_points(self, rng):
        """Figure 2's argument: extremes of 5 points trap the fifth."""
        space = box_space(2)
        for _ in range(25):
            points = rng.random((5, 2))
            assert not shatters(space, points)

    def test_halfspaces_shatter_triangle(self):
        tri = np.array([[0.2, 0.2], [0.8, 0.2], [0.5, 0.8]])
        assert shatters(halfspace_space(2), tri)

    def test_halfspaces_cannot_shatter_four_points(self, rng):
        space = halfspace_space(2)
        for _ in range(15):
            points = rng.random((4, 2))
            assert not shatters(space, points)

    def test_balls_shatter_triangle(self):
        tri = np.array([[0.2, 0.2], [0.8, 0.2], [0.5, 0.8]])
        assert shatters(ball_space(2), tri)

    def test_balls_cannot_shatter_five_points_2d(self, rng):
        # VC-dim of discs in the plane is 3; 5 random points never shatter.
        space = ball_space(2)
        for _ in range(10):
            points = rng.random((5, 2))
            assert not shatters(space, points)

    def test_convex_polygons_shatter_circle_points(self):
        angles = np.linspace(0, 2 * np.pi, 8, endpoint=False)
        circle = np.stack(
            [0.5 + 0.4 * np.cos(angles), 0.5 + 0.4 * np.sin(angles)], axis=1
        )
        assert shatters(convex_polygon_space(), circle)

    def test_refuses_huge_sets(self):
        with pytest.raises(ValueError):
            shatters(box_space(2), np.zeros((25, 2)))


class TestLowerBound:
    def test_certifies_diamond(self):
        assert vc_dimension_lower_bound(box_space(2), DIAMOND) == 4

    def test_rejects_unshattered(self, rng):
        points = np.vstack([DIAMOND, [[0.5, 0.5]]])
        with pytest.raises(ValueError):
            vc_dimension_lower_bound(box_space(2), points)


class TestEstimate:
    def test_boxes_2d(self, rng):
        assert estimate_vc_dimension(box_space(2), rng, max_k=6, trials=150) == 4

    def test_halfspaces_2d(self, rng):
        assert estimate_vc_dimension(halfspace_space(2), rng, max_k=5, trials=100) == 3

    def test_balls_2d(self, rng):
        # VC-dim of discs is exactly 3 (<= d+2 = 4 from the generic bound);
        # random search may find 3 but never 5.
        est = estimate_vc_dimension(ball_space(2), rng, max_k=6, trials=100)
        assert 3 <= est <= 4

    def test_boxes_1d(self, rng):
        assert estimate_vc_dimension(box_space(1), rng, max_k=4, trials=100) == 2

    def test_polygons_hit_search_ceiling(self, rng):
        """Infinite VC dimension: the search ceiling is always reached."""
        est = estimate_vc_dimension(
            convex_polygon_space(), rng, max_k=5, pool_size=40, trials=60
        )
        assert est == 5
