"""Loss functions and empirical risk (Section 2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box
from repro.learning import empirical_risk, l1_loss, l2_loss, linf_loss

unit_floats = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=30
)


class TestLosses:
    def test_l2_on_known_values(self):
        assert l2_loss([0.5, 0.0], [0.0, 0.0]) == pytest.approx(0.125)

    def test_l1_on_known_values(self):
        assert l1_loss([0.5, 0.1], [0.0, 0.0]) == pytest.approx(0.3)

    def test_linf_on_known_values(self):
        assert linf_loss([0.5, 0.1], [0.0, 0.3]) == pytest.approx(0.5)

    def test_zero_on_perfect_prediction(self):
        preds = [0.2, 0.5, 0.9]
        assert l2_loss(preds, preds) == 0.0
        assert l1_loss(preds, preds) == 0.0
        assert linf_loss(preds, preds) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            l2_loss([0.1, 0.2], [0.1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            l2_loss([], [])

    @settings(max_examples=50, deadline=None)
    @given(unit_floats, unit_floats)
    def test_loss_ordering(self, a, b):
        """l2 <= l1 <= linf on [0,1]-valued errors."""
        n = min(len(a), len(b))
        preds, labels = a[:n], b[:n]
        assert l2_loss(preds, labels) <= l1_loss(preds, labels) + 1e-12
        assert l1_loss(preds, labels) <= linf_loss(preds, labels) + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(unit_floats, unit_floats)
    def test_losses_bounded_by_one(self, a, b):
        n = min(len(a), len(b))
        preds, labels = a[:n], b[:n]
        for loss in (l2_loss, l1_loss, linf_loss):
            value = loss(preds, labels)
            assert 0.0 <= value <= 1.0 + 1e-12


class TestEmpiricalRisk:
    def test_constant_hypothesis(self):
        sample = [(Box([0.0], [0.5]), 0.5), (Box([0.0], [1.0]), 1.0)]
        risk = empirical_risk(lambda r: 0.5, sample)
        assert risk == pytest.approx(0.5 * (0.0 + 0.25))

    def test_custom_loss(self):
        sample = [(Box([0.0], [0.5]), 0.5), (Box([0.0], [1.0]), 1.0)]
        risk = empirical_risk(lambda r: 0.5, sample, loss=linf_loss)
        assert risk == pytest.approx(0.5)

    def test_volume_hypothesis_is_exact_for_uniform_labels(self):
        queries = [Box([0.0], [w]) for w in (0.2, 0.5, 0.8)]
        sample = [(q, q.volume()) for q in queries]
        assert empirical_risk(lambda r: r.volume(), sample) == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            empirical_risk(lambda r: 0.0, [])
