"""Sample-complexity bounds: shape and monotonicity checks."""

import pytest

from repro.learning import (
    ball_training_bound,
    bartlett_long_sample_size,
    fat_shattering_upper_bound,
    halfspace_training_bound,
    orthogonal_range_training_bound,
    theorem21_training_bound,
)


class TestBartlettLong:
    def test_decreasing_in_eps(self):
        assert bartlett_long_sample_size(10, 0.05, 0.1) > bartlett_long_sample_size(
            10, 0.1, 0.1
        )

    def test_increasing_in_fat_dimension(self):
        assert bartlett_long_sample_size(100, 0.1, 0.1) > bartlett_long_sample_size(
            10, 0.1, 0.1
        )

    def test_increasing_as_delta_shrinks(self):
        assert bartlett_long_sample_size(10, 0.1, 0.01) > bartlett_long_sample_size(
            10, 0.1, 0.2
        )

    def test_eps_squared_scaling(self):
        """Halving eps multiplies the bound by at least 4 (the 1/eps^2 factor)."""
        a = bartlett_long_sample_size(10, 0.1, 0.1)
        b = bartlett_long_sample_size(10, 0.05, 0.1)
        assert b >= 4 * a

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bartlett_long_sample_size(10, 1.5, 0.1)
        with pytest.raises(ValueError):
            bartlett_long_sample_size(10, 0.1, 0.0)
        with pytest.raises(ValueError):
            bartlett_long_sample_size(-1, 0.1, 0.1)


class TestFatUpperBound:
    def test_grows_with_vc_dim(self):
        assert fat_shattering_upper_bound(4, 0.1) > fat_shattering_upper_bound(2, 0.1)

    def test_grows_as_gamma_shrinks(self):
        assert fat_shattering_upper_bound(2, 0.01) > fat_shattering_upper_bound(2, 0.1)

    def test_polynomial_exponent(self):
        """fat(γ) ~ 1/γ^(λ+1) up to logs: tenfold γ drop ⟹ ≥ 10^(λ+1) growth."""
        lam = 2
        small = fat_shattering_upper_bound(lam, 0.001)
        large = fat_shattering_upper_bound(lam, 0.01)
        assert small / large >= 10 ** (lam + 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            fat_shattering_upper_bound(0, 0.1)
        with pytest.raises(ValueError):
            fat_shattering_upper_bound(2, 1.5)


class TestTheorem21:
    def test_query_class_ordering_matches_paper(self):
        """For d >= 2: boxes (λ=2d) need more samples than balls (λ=d+2),
        which need more than halfspaces (λ=d+1), at the same (ε, δ)."""
        eps, delta, d = 0.1, 0.05, 3
        boxes = orthogonal_range_training_bound(d, eps, delta)
        balls = ball_training_bound(d, eps, delta)
        halfspaces = halfspace_training_bound(d, eps, delta)
        assert boxes > balls > halfspaces

    def test_exponential_in_dimension(self):
        eps, delta = 0.1, 0.05
        assert orthogonal_range_training_bound(4, eps, delta) > 10 * (
            orthogonal_range_training_bound(2, eps, delta)
        )

    def test_matches_generic_form(self):
        assert orthogonal_range_training_bound(2, 0.1, 0.1) == pytest.approx(
            theorem21_training_bound(4, 0.1, 0.1)
        )

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            orthogonal_range_training_bound(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            halfspace_training_bound(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            ball_training_bound(0, 0.1, 0.1)
