"""DiscreteDistribution — Eq. (7) semantics."""

import numpy as np
import pytest

from repro.distributions import DiscreteDistribution
from repro.geometry import Ball, Box, Halfspace, unit_box


@pytest.fixture
def simple():
    points = np.array([[0.25, 0.25], [0.75, 0.25], [0.25, 0.75], [0.75, 0.75]])
    return DiscreteDistribution(points, np.array([0.4, 0.3, 0.2, 0.1]))


class TestConstruction:
    def test_valid(self, simple):
        assert simple.size == 4
        assert simple.dim == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.empty((0, 2)), np.array([]))

    def test_rejects_bad_weight_shape(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.zeros((3, 2)), np.array([0.5, 0.5]))

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.zeros((2, 1)), np.array([1.5, -0.5]))

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.zeros((2, 1)), np.array([0.9, 0.9]))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.zeros((2, 1)), np.array([0.0, 0.0]))


class TestSelectivity:
    def test_whole_domain(self, simple):
        assert simple.selectivity(unit_box(2)) == pytest.approx(1.0)

    def test_half_domain(self, simple):
        q = Box([0.0, 0.0], [0.5, 1.0])  # contains the two x=0.25 points
        assert simple.selectivity(q) == pytest.approx(0.6)

    def test_empty_query(self, simple):
        q = Box([0.9, 0.9], [1.0, 1.0])
        assert simple.selectivity(q) == 0.0

    def test_halfspace(self, simple):
        half = Halfspace([0.0, 1.0], 0.5)  # y >= 0.5
        assert simple.selectivity(half) == pytest.approx(0.3)

    def test_ball(self, simple):
        ball = Ball([0.25, 0.25], 0.1)
        assert simple.selectivity(ball) == pytest.approx(0.4)

    def test_membership_row(self, simple):
        row = simple.membership_row(Box([0.0, 0.0], [0.5, 1.0]))
        np.testing.assert_array_equal(row, [1.0, 0.0, 1.0, 0.0])

    def test_boundary_points_included(self):
        dist = DiscreteDistribution(np.array([[0.5, 0.5]]), np.array([1.0]))
        assert dist.selectivity(Box([0.5, 0.5], [1.0, 1.0])) == pytest.approx(1.0)


class TestSampling:
    def test_sample_from_support(self, rng, simple):
        pts = simple.sample(500, rng)
        assert pts.shape == (500, 2)
        support = {tuple(p) for p in simple.points}
        assert all(tuple(p) in support for p in pts)

    def test_sample_respects_weights(self, rng, simple):
        pts = simple.sample(8000, rng)
        heavy = np.all(pts == simple.points[0], axis=1)
        assert heavy.mean() == pytest.approx(0.4, abs=0.03)

    def test_negative_count_rejected(self, rng, simple):
        with pytest.raises(ValueError):
            simple.sample(-1, rng)
