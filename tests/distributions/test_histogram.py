"""HistogramDistribution — Eq. (6) semantics."""

import numpy as np
import pytest

from repro.distributions import HistogramDistribution
from repro.geometry import Ball, Box, Halfspace, unit_box


@pytest.fixture
def quadrants():
    """Four equal buckets tiling the unit square."""
    return unit_box(2).split()


class TestConstruction:
    def test_valid(self, quadrants):
        hist = HistogramDistribution(quadrants, [0.4, 0.3, 0.2, 0.1])
        assert hist.size == 4
        assert hist.dim == 2

    def test_rejects_weight_mismatch(self, quadrants):
        with pytest.raises(ValueError):
            HistogramDistribution(quadrants, [0.5, 0.5])

    def test_rejects_negative_weights(self, quadrants):
        with pytest.raises(ValueError):
            HistogramDistribution(quadrants, [0.5, 0.6, -0.1, 0.0])

    def test_rejects_unnormalised(self, quadrants):
        with pytest.raises(ValueError):
            HistogramDistribution(quadrants, [0.5, 0.5, 0.5, 0.5])

    def test_rejects_weighted_degenerate_bucket(self):
        buckets = [Box([0.0, 0.0], [0.0, 1.0]), Box([0.5, 0.0], [1.0, 1.0])]
        with pytest.raises(ValueError):
            HistogramDistribution(buckets, [0.5, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HistogramDistribution([], [])

    def test_rejects_mixed_dimensions(self):
        with pytest.raises(ValueError):
            HistogramDistribution([Box([0.0], [1.0]), unit_box(2)], [0.5, 0.5])

    def test_validate_detects_overlap(self):
        buckets = [Box([0.0, 0.0], [0.6, 1.0]), Box([0.4, 0.0], [1.0, 1.0])]
        hist = HistogramDistribution(buckets, [0.5, 0.5])
        with pytest.raises(ValueError):
            hist.validate()

    def test_validate_passes_disjoint(self, quadrants):
        HistogramDistribution(quadrants, [0.25] * 4).validate()


class TestSelectivity:
    def test_whole_domain_is_one(self, quadrants):
        hist = HistogramDistribution(quadrants, [0.4, 0.3, 0.2, 0.1])
        assert hist.selectivity(unit_box(2)) == pytest.approx(1.0)

    def test_single_bucket_query(self, quadrants):
        hist = HistogramDistribution(quadrants, [0.4, 0.3, 0.2, 0.1])
        # quadrants[0] is the low-low quadrant (split() ordering).
        q = quadrants[0]
        assert hist.selectivity(Box(q.lows, q.highs)) == pytest.approx(0.4)

    def test_partial_overlap_uses_fraction(self, quadrants):
        hist = HistogramDistribution(quadrants, [1.0, 0.0, 0.0, 0.0])
        # Query covering half (by volume) of the weighted quadrant.
        query = Box([0.0, 0.0], [0.25, 0.5])
        assert hist.selectivity(query) == pytest.approx(0.5)

    def test_uniform_histogram_matches_volume(self, rng):
        hist = HistogramDistribution(unit_box(2).split(), [0.25] * 4)
        for _ in range(10):
            q = Box.from_center(rng.random(2), rng.random(2), clip_to=unit_box(2))
            assert hist.selectivity(q) == pytest.approx(q.volume(), abs=1e-9)

    def test_halfspace_query(self):
        hist = HistogramDistribution(unit_box(2).split(), [0.25] * 4)
        half = Halfspace([1.0, 0.0], 0.5)
        assert hist.selectivity(half) == pytest.approx(0.5)

    def test_ball_query(self):
        hist = HistogramDistribution(unit_box(2).split(), [0.25] * 4)
        ball = Ball([0.5, 0.5], 0.25)
        assert hist.selectivity(ball) == pytest.approx(np.pi * 0.0625, abs=1e-9)

    def test_clipped_to_unit_interval(self, quadrants):
        hist = HistogramDistribution(quadrants, [0.25] * 4)
        assert 0.0 <= hist.selectivity(Box([-1.0, -1.0], [2.0, 2.0])) <= 1.0

    def test_intersection_fractions_row(self, quadrants):
        hist = HistogramDistribution(quadrants, [0.25] * 4)
        row = hist.intersection_fractions(unit_box(2))
        np.testing.assert_allclose(row, np.ones(4))


class TestDensityAndSampling:
    def test_density_value(self, quadrants):
        hist = HistogramDistribution(quadrants, [1.0, 0.0, 0.0, 0.0])
        assert hist.density(np.array([0.1, 0.1])) == pytest.approx(4.0)
        assert hist.density(np.array([0.9, 0.9])) == pytest.approx(0.0)

    def test_density_integrates_to_one(self, rng, quadrants):
        hist = HistogramDistribution(quadrants, [0.4, 0.3, 0.2, 0.1])
        pts = rng.random((40_000, 2))
        assert np.mean(hist.density(pts)) == pytest.approx(1.0, abs=0.05)

    def test_sample_respects_weights(self, rng, quadrants):
        hist = HistogramDistribution(quadrants, [0.7, 0.1, 0.1, 0.1])
        pts = hist.sample(4000, rng)
        in_heavy = np.asarray(quadrants[0].contains(pts))
        assert in_heavy.mean() == pytest.approx(0.7, abs=0.05)

    def test_sample_shape_and_bounds(self, rng, quadrants):
        hist = HistogramDistribution(quadrants, [0.25] * 4)
        pts = hist.sample(100, rng)
        assert pts.shape == (100, 2)
        assert np.all(unit_box(2).contains(pts))

    def test_sample_selectivity_consistency(self, rng, quadrants):
        """Empirical selectivity of a sample ≈ model selectivity."""
        hist = HistogramDistribution(quadrants, [0.4, 0.3, 0.2, 0.1])
        pts = hist.sample(20_000, rng)
        q = Box([0.0, 0.0], [0.5, 1.0])
        empirical = float(np.mean(q.contains(pts)))
        assert empirical == pytest.approx(hist.selectivity(q), abs=0.02)


class TestVectorizedPaths:
    """selectivity_many / vectorised density are pure optimisations."""

    def test_selectivity_many_matches_scalar_loop(self, quadrants):
        hist = HistogramDistribution(quadrants, [0.4, 0.3, 0.2, 0.1])
        ranges = [
            Box([0.1, 0.1], [0.8, 0.4]),
            Halfspace([1.0, 1.0], 1.0),
            Ball([0.5, 0.5], 0.4),
            unit_box(2),
            Box([0.25, 0.25], [0.25, 0.75]),  # zero-width
        ]
        many = hist.selectivity_many(ranges)
        singles = np.array([hist.selectivity(r) for r in ranges])
        np.testing.assert_allclose(many, singles, atol=1e-12, rtol=0)

    def test_selectivity_many_empty(self, quadrants):
        hist = HistogramDistribution(quadrants, [0.25] * 4)
        assert hist.selectivity_many([]).shape == (0,)

    def test_density_vectorised_matches_per_point(self, rng, quadrants):
        hist = HistogramDistribution(quadrants, [0.4, 0.3, 0.2, 0.1])
        pts = rng.random((200, 2))
        batch = hist.density(pts)
        singles = np.array([hist.density(p) for p in pts])
        np.testing.assert_array_equal(batch, singles)

    def test_density_shared_face_last_bucket_wins(self, quadrants):
        # (0.5, 0.5) lies on the closure of all four quadrants; the
        # vectorised path must keep the scalar loop's last-wins rule.
        hist = HistogramDistribution(quadrants, [0.4, 0.3, 0.2, 0.1])
        expected = 0.1 / quadrants[3].volume()
        assert hist.density(np.array([0.5, 0.5])) == pytest.approx(expected)
        assert hist.density(np.array([[0.5, 0.5]]))[0] == pytest.approx(expected)

    def test_validate_names_the_offending_pair(self):
        buckets = [
            Box([0.0, 0.0], [0.3, 1.0]),
            Box([0.3, 0.0], [0.6, 1.0]),
            Box([0.5, 0.0], [1.0, 1.0]),
        ]
        hist = HistogramDistribution(buckets, [0.3, 0.3, 0.4])
        with pytest.raises(ValueError, match="buckets overlap"):
            hist.validate()
