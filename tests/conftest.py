"""Shared fixtures: deterministic RNGs and small datasets/workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import WorkloadSpec, generate_workload, label_queries, power_like


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def power2d():
    """Small 2-D projection of the power-like dataset (session-cached)."""
    return power_like(rows=8_000).project([0, 3])


@pytest.fixture(scope="session")
def power2d_box_workload(power2d):
    """100 labeled data-driven box queries + 100 test queries."""
    gen = np.random.default_rng(777)
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    train = generate_workload(100, 2, gen, spec=spec, dataset=power2d)
    test = generate_workload(100, 2, gen, spec=spec, dataset=power2d)
    return (
        train,
        label_queries(power2d, train),
        test,
        label_queries(power2d, test),
    )
