"""Estimation service: programmatic API and the HTTP adapter."""

import io
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import QuadHist
from repro.data.io import range_to_dict
from repro.geometry import Box
from repro.observability import configure_logging, parse_exposition, reset_logging
from repro.server import EstimatorService, serve


def _service(**kwargs):
    return EstimatorService(lambda: QuadHist(tau=0.02), **kwargs)


@pytest.fixture
def labeled_feedback(power2d_box_workload):
    train_q, train_s, test_q, test_s = power2d_box_workload
    return list(zip(train_q, train_s)), list(zip(test_q, test_s))


class TestServiceAPI:
    def test_estimate_before_training_raises(self):
        service = _service()
        with pytest.raises(RuntimeError):
            service.estimate(Box([0.0, 0.0], [0.5, 0.5]))

    def test_feedback_then_retrain_then_estimate(self, labeled_feedback):
        feedback, holdout = labeled_feedback
        service = _service()
        for query, label in feedback[:50]:
            service.feedback(query, label)
        info = service.retrain()
        assert info["trained_on"] > 0
        errors = [abs(service.estimate(q) - s) for q, s in holdout[:30]]
        assert float(np.mean(errors)) < 0.1

    def test_retrain_requires_min_feedback(self):
        service = _service(min_feedback=10)
        service.feedback(Box([0.0, 0.0], [0.5, 0.5]), 0.3)
        with pytest.raises(RuntimeError):
            service.retrain()

    def test_auto_retrain(self, labeled_feedback):
        feedback, _ = labeled_feedback
        service = _service(retrain_every=25, min_feedback=20)
        for query, label in feedback[:30]:
            service.feedback(query, label)
        assert service.status()["trained"]

    def test_status_shape(self):
        service = _service()
        status = service.status()
        assert status["trained"] is False
        assert status["feedback_total"] == 0

    def test_invalid_selectivity_rejected(self):
        service = _service()
        with pytest.raises(ValueError):
            service.feedback(Box([0.0, 0.0], [0.5, 0.5]), 1.5)

    def test_feedback_response_shape(self):
        service = _service()
        response = service.feedback(Box([0.0, 0.0], [0.5, 0.5]), 0.3)
        assert set(response) == {"accepted", "pending", "drift", "quarantined_total"}
        assert response["accepted"] is True
        assert response["pending"] == 1
        assert response["quarantined_total"] == 0

    def test_feedback_response_counts_own_append(self, labeled_feedback):
        """The response snapshot is taken in the same locked section as the
        buffer append: pending reflects this pair, pre-auto-retrain."""
        feedback, _ = labeled_feedback
        service = _service(retrain_every=25, min_feedback=20)
        for i, (query, label) in enumerate(feedback[:25], start=1):
            response = service.feedback(query, label)
            assert response["pending"] == i
        # The 25th pair triggered the auto-retrain *after* the snapshot.
        assert service.status()["trained"]
        assert service.status()["feedback_pending"] == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            _service(retrain_every=0)
        with pytest.raises(ValueError):
            _service(min_feedback=1)
        with pytest.raises(ValueError):
            _service(drift_holdout=1.5)


class TestHTTP:
    @pytest.fixture
    def server(self, labeled_feedback):
        service = _service(min_feedback=20)
        server = serve(service, port=0)
        yield server
        server.shutdown()

    def _post(self, server, path, payload):
        host, port = server.server_address
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def _get(self, server, path):
        host, port = server.server_address
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as response:
            return json.loads(response.read())

    def test_full_http_lifecycle(self, server, labeled_feedback):
        feedback, holdout = labeled_feedback
        for query, label in feedback[:40]:
            result = self._post(
                server,
                "/feedback",
                {"query": range_to_dict(query), "selectivity": float(label)},
            )
            assert "pending" in result
        trained = self._post(server, "/retrain", {})
        assert trained["model_size"] >= 1
        query, truth = holdout[0]
        estimate = self._post(server, "/estimate", {"query": range_to_dict(query)})
        assert 0.0 <= estimate["selectivity"] <= 1.0
        status = self._get(server, "/status")
        assert status["trained"] is True

    def test_estimate_before_training_is_409(self, server, labeled_feedback):
        feedback, _ = labeled_feedback
        query, _ = feedback[0]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/estimate", {"query": range_to_dict(query)})
        assert excinfo.value.code == 409
        body = json.loads(excinfo.value.read())
        assert body["type"] == "ModelUnavailableError"
        assert "error" in body

    def test_malformed_request_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/estimate", {"query": {"type": "triangle"}})
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nope")
        assert excinfo.value.code == 404


class TestHTTPErrorPaths:
    """Every failure is a structured JSON body with the right status —
    never a hung connection or an HTML traceback page."""

    @pytest.fixture
    def server(self):
        service = _service(min_feedback=20)
        server = serve(service, port=0)
        yield server
        server.shutdown()

    def _post_raw(self, server, path, body: bytes):
        host, port = server.server_address
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())

    def _error_body(self, excinfo) -> dict:
        body = json.loads(excinfo.value.read())
        assert set(body) >= {"error", "type"}
        assert excinfo.value.headers["Content-Type"] == "application/json"
        return body

    def test_malformed_json_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post_raw(server, "/estimate", b"{not json!")
        assert excinfo.value.code == 400
        body = self._error_body(excinfo)
        assert body["type"] == "DataValidationError"
        assert "malformed JSON" in body["error"]

    def test_non_object_json_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post_raw(server, "/feedback", b"[1, 2, 3]")
        assert excinfo.value.code == 400
        assert self._error_body(excinfo)["type"] == "DataValidationError"

    def test_missing_query_key_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post_raw(server, "/estimate", b"{}")
        assert excinfo.value.code == 400
        self._error_body(excinfo)

    def test_out_of_range_feedback_is_400(self, server):
        query = range_to_dict(Box([0.1, 0.1], [0.5, 0.5]))
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post_raw(
                server,
                "/feedback",
                json.dumps({"query": query, "selectivity": 1.5}).encode(),
            )
        assert excinfo.value.code == 400
        body = self._error_body(excinfo)
        assert body["type"] == "DataValidationError"
        assert "[0, 1]" in body["error"]

    def test_non_numeric_feedback_is_400(self, server):
        query = range_to_dict(Box([0.1, 0.1], [0.5, 0.5]))
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post_raw(
                server,
                "/feedback",
                json.dumps({"query": query, "selectivity": "lots"}).encode(),
            )
        assert excinfo.value.code == 400
        self._error_body(excinfo)

    def test_unknown_post_path_is_404_json(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post_raw(server, "/train", b"{}")
        assert excinfo.value.code == 404
        assert self._error_body(excinfo)["type"] == "NotFound"

    def test_retrain_without_feedback_is_409(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post_raw(server, "/retrain", b"{}")
        assert excinfo.value.code == 409
        assert self._error_body(excinfo)["type"] == "ModelUnavailableError"

    def test_status_reports_robustness_fields(self, server):
        host, port = server.server_address
        with urllib.request.urlopen(f"http://{host}:{port}/status") as response:
            status = json.loads(response.read())
        assert set(status) >= {"generation", "breaker", "buffer", "quarantine"}
        assert status["breaker"]["state"] == "closed"
        assert status["generation"] == 0


class TestBatchEstimation:
    """estimate_many: batch path + generation-keyed prediction cache."""

    def _trained(self, labeled_feedback, **kwargs):
        feedback, holdout = labeled_feedback
        service = _service(**kwargs)
        for query, label in feedback[:50]:
            service.feedback(query, label)
        service.retrain()
        return service, holdout

    def test_before_training_raises(self):
        service = _service()
        with pytest.raises(RuntimeError):
            service.estimate_many([Box([0.0, 0.0], [0.5, 0.5])])

    def test_matches_scalar_estimate(self, labeled_feedback):
        service, holdout = self._trained(labeled_feedback)
        queries = [q for q, _ in holdout[:20]]
        batch = service.estimate_many(queries)
        assert len(batch) == len(queries)
        singles = [service.estimate(q) for q in queries]
        np.testing.assert_allclose(batch, singles, atol=1e-12, rtol=0)

    def test_cache_hits_accumulate(self, labeled_feedback):
        service, holdout = self._trained(labeled_feedback)
        queries = [q for q, _ in holdout[:15]]
        first = service.estimate_many(queries)
        stats = service.status()["prediction_cache"]
        assert stats["size"] == len(queries)
        assert stats["misses"] >= len(queries)
        second = service.estimate_many(queries)
        assert second == first
        stats = service.status()["prediction_cache"]
        assert stats["hits"] >= len(queries)

    def test_cache_invalidated_by_retrain(self, labeled_feedback):
        service, holdout = self._trained(labeled_feedback)
        feedback, _ = labeled_feedback
        queries = [q for q, _ in holdout[:10]]
        service.estimate_many(queries)
        assert service.status()["prediction_cache"]["size"] == len(queries)
        for query, label in feedback[50:70]:
            service.feedback(query, label)
        service.retrain()  # new generation: stale entries must be unreachable
        assert service.status()["prediction_cache"]["size"] == 0
        fresh = service.estimate_many(queries)
        singles = [service.estimate(q) for q in queries]
        np.testing.assert_allclose(fresh, singles, atol=1e-12, rtol=0)

    def test_cache_capacity_bounds_size(self, labeled_feedback):
        service, holdout = self._trained(labeled_feedback, prediction_cache_size=4)
        queries = [q for q, _ in holdout[:12]]
        service.estimate_many(queries)
        assert service.status()["prediction_cache"]["size"] <= 4

    def test_cache_disabled(self, labeled_feedback):
        service, holdout = self._trained(labeled_feedback, prediction_cache_size=0)
        queries = [q for q, _ in holdout[:10]]
        batch = service.estimate_many(queries)
        assert service.status()["prediction_cache"]["size"] == 0
        singles = [service.estimate(q) for q in queries]
        np.testing.assert_allclose(batch, singles, atol=1e-12, rtol=0)

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            _service(prediction_cache_size=-1)

    def test_empty_batch(self, labeled_feedback):
        service, _ = self._trained(labeled_feedback)
        assert service.estimate_many([]) == []


class TestHTTPBatchPredict:
    @pytest.fixture
    def server(self, labeled_feedback):
        service = _service(min_feedback=20)
        server = serve(service, port=0)
        yield server
        server.shutdown()

    def _post(self, server, path, payload):
        host, port = server.server_address
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def _train(self, server, labeled_feedback):
        feedback, holdout = labeled_feedback
        for query, label in feedback[:40]:
            self._post(
                server,
                "/feedback",
                {"query": range_to_dict(query), "selectivity": float(label)},
            )
        self._post(server, "/retrain", {})
        return holdout

    def test_predict_endpoint(self, server, labeled_feedback):
        holdout = self._train(server, labeled_feedback)
        queries = [q for q, _ in holdout[:8]]
        result = self._post(
            server, "/predict", {"queries": [range_to_dict(q) for q in queries]}
        )
        assert result["count"] == len(queries)
        assert len(result["selectivities"]) == len(queries)
        for value, (query, _) in zip(result["selectivities"], holdout[:8]):
            single = self._post(server, "/estimate", {"query": range_to_dict(query)})
            assert value == pytest.approx(single["selectivity"], abs=1e-12)

    def test_predict_non_list_queries_is_400(self, server, labeled_feedback):
        self._train(server, labeled_feedback)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/predict", {"queries": {"type": "box"}})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "must be a list" in body["error"]

    def test_predict_before_training_is_409(self, server, labeled_feedback):
        feedback, _ = labeled_feedback
        queries = [range_to_dict(feedback[0][0])]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/predict", {"queries": queries})
        assert excinfo.value.code == 409
        body = json.loads(excinfo.value.read())
        assert body["type"] == "ModelUnavailableError"


class TestObservabilityEndpoints:
    @pytest.fixture
    def server(self):
        service = _service(min_feedback=20)
        server = serve(service, port=0)
        yield server
        server.shutdown()

    def _get_raw(self, server, path):
        host, port = server.server_address
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as response:
            return response.status, response.headers, response.read()

    def test_health_reports_ok(self, server):
        status, headers, body = self._get_raw(server, "/health")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["reasons"] == []
        assert payload["breaker"] == "closed"

    def test_health_works_before_training(self, server):
        # Liveness must not depend on model state (409s are for /estimate).
        status, _, body = self._get_raw(server, "/health")
        assert status == 200 and json.loads(body)["status"] == "ok"

    def test_metrics_exposition_content_type(self, server):
        status, headers, body = self._get_raw(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        text = body.decode("utf-8")
        assert "# TYPE repro_service_requests_total counter" in text
        assert "# TYPE repro_http_requests_total counter" in text

    def test_metrics_counts_http_traffic(self, server):
        self._get_raw(server, "/health")
        try:
            self._get_raw(server, "/nope-unknown")
        except urllib.error.HTTPError:
            pass
        _, _, body = self._get_raw(server, "/metrics")
        text = body.decode("utf-8")
        assert (
            'repro_http_requests_total{method="GET",endpoint="/health",status="2xx"}'
            in text
        )
        # Unknown paths fold into the "other" label (bounded cardinality).
        assert 'endpoint="other",status="4xx"' in text


class TestAccessLog:
    def _serve(self, access_log):
        service = _service(min_feedback=20)
        server = serve(service, port=0, access_log=access_log)
        return server

    def test_enabled_emits_structured_line(self):
        stream = io.StringIO()
        configure_logging(json_mode=True, stream=stream)
        server = self._serve(access_log=True)
        try:
            host, port = server.server_address
            urllib.request.urlopen(f"http://{host}:{port}/health").read()
        finally:
            server.shutdown()
            reset_logging()
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        access = [line for line in lines if line["event"] == "http_request"]
        assert len(access) == 1
        assert access[0]["method"] == "GET"
        assert access[0]["path"] == "/health"
        assert access[0]["status"] == 200
        assert access[0]["seconds"] >= 0.0

    def test_quiet_by_default(self):
        stream = io.StringIO()
        configure_logging(json_mode=True, stream=stream)
        server = self._serve(access_log=False)
        try:
            host, port = server.server_address
            urllib.request.urlopen(f"http://{host}:{port}/health").read()
        finally:
            server.shutdown()
            reset_logging()
        assert "http_request" not in stream.getvalue()


class TestRequestTracing:
    """X-Request-Id propagation and per-stage latency decomposition in
    the single-process server (the pool path is covered by
    ``tests/serving/test_ops.py``)."""

    def _post(self, server, path, payload, headers=None):
        host, port = server.server_address
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST",
        )
        return urllib.request.urlopen(request)

    def _trained_server(self, labeled_feedback, **extras):
        from repro.observability import MetricsRegistry

        feedback, _ = labeled_feedback
        service = _service(min_feedback=20, registry=MetricsRegistry())
        for query, label in feedback[:30]:
            service.feedback(query, label)
        service.retrain()
        return serve(service, port=0, **extras), service

    def test_request_id_generated_and_echoed(self, labeled_feedback):
        from repro.data.io import range_to_dict
        from repro.server import REQUEST_ID_HEADER

        feedback, _ = labeled_feedback
        server, _ = self._trained_server(labeled_feedback)
        try:
            payload = {"query": range_to_dict(feedback[0][0])}
            with self._post(server, "/v1/estimate", payload) as response:
                generated = response.headers.get(REQUEST_ID_HEADER)
            assert generated and len(generated) == 16

            with self._post(
                server,
                "/v1/estimate",
                payload,
                headers={REQUEST_ID_HEADER: "trace-me-7"},
            ) as response:
                assert response.headers.get(REQUEST_ID_HEADER) == "trace-me-7"

            # Garbage ids (control chars, oversized) are replaced, never
            # echoed back verbatim into headers and logs.
            with self._post(
                server,
                "/v1/estimate",
                payload,
                headers={REQUEST_ID_HEADER: "x" * 500},
            ) as response:
                cleaned = response.headers.get(REQUEST_ID_HEADER)
            assert cleaned == "x" * 128
        finally:
            server.shutdown()

    def test_access_log_carries_request_id_and_stages(self, labeled_feedback):
        from repro.data.io import range_to_dict
        from repro.server import REQUEST_ID_HEADER

        feedback, _ = labeled_feedback
        stream = io.StringIO()
        configure_logging(json_mode=True, stream=stream)
        server, _ = self._trained_server(labeled_feedback, access_log=True)
        try:
            payload = {"query": range_to_dict(feedback[0][0])}
            self._post(
                server,
                "/v1/estimate",
                payload,
                headers={REQUEST_ID_HEADER: "staged-1"},
            ).close()
        finally:
            server.shutdown()
            reset_logging()
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        access = [line for line in lines if line["event"] == "http_request"]
        assert len(access) == 1
        assert access[0]["request_id"] == "staged-1"
        stages = access[0]["stages"]
        # No admission controller here, so no queue stage; the kernel
        # and total decomposition must still be present and ordered.
        assert set(stages) == {"kernel", "total"}
        assert 0.0 <= stages["kernel"] <= stages["total"]

    def test_stage_histogram_skips_probes_and_stays_unlabelled(
        self, labeled_feedback
    ):
        from repro.data.io import range_to_dict

        feedback, _ = labeled_feedback
        server, service = self._trained_server(labeled_feedback)
        try:
            host, port = server.server_address
            payload = {"query": range_to_dict(feedback[0][0])}
            for _ in range(3):
                self._post(server, "/v1/estimate", payload).close()
            urllib.request.urlopen(f"http://{host}:{port}/health").read()
            text = (
                urllib.request.urlopen(f"http://{host}:{port}/metrics")
                .read()
                .decode()
            )
        finally:
            server.shutdown()
        hist = service.registry.get("repro_request_stage_seconds")
        assert hist.snapshot(stage="total")["count"] == 3
        assert hist.snapshot(stage="kernel")["count"] == 3
        # Single-process serving stays worker-label-free: render-time
        # injection happens only when a supervised pool sets the worker
        # label.  Check the service's own families rather than the whole
        # page — other components may legitimately *declare* a worker
        # label (e.g. supervisor restart counters).
        families, problems = parse_exposition(text)
        assert problems == []
        for family in ("repro_request_stage_seconds", "repro_service_queries_total"):
            for _, labels, _, _ in families[family]["samples"]:
                assert "worker" not in labels


class TestIncrementalUpdate:
    """The update() fast path: absorb pending feedback via partial_fit."""

    def _trained(self, labeled_feedback, n=60, **kwargs):
        from repro.observability import MetricsRegistry

        feedback, _ = labeled_feedback
        kwargs.setdefault("registry", MetricsRegistry())
        service = _service(**kwargs)
        for query, label in feedback[:n]:
            service.feedback(query, label)
        service.retrain()
        return service, feedback

    def test_update_absorbs_pending_feedback(self, labeled_feedback):
        service, feedback = self._trained(labeled_feedback)
        for query, label in feedback[60:80]:
            service.feedback(query, label)
        before = service.status()["generation"]
        result = service.update()
        assert result["incremental"] is True
        assert result["rows_appended"] == 20
        assert result["generation"] == before + 1
        assert result["update"]["warm_started"] is True
        status = service.status()
        assert status["feedback_pending"] == 0
        assert status["last_update"]["incremental"] is True

    def test_update_without_pending_raises(self, labeled_feedback):
        service, _ = self._trained(labeled_feedback)
        with pytest.raises(RuntimeError):
            service.update()

    def test_update_invalidates_prediction_cache(self, labeled_feedback):
        """Regression: a stale cached prediction must never be served after
        an incremental update — the LRU is generation-keyed and cleared."""
        service, feedback = self._trained(labeled_feedback)
        _, holdout = labeled_feedback
        queries = [q for q, _ in holdout[:10]]
        service.estimate_many(queries)
        service.estimate_many(queries)  # all hits now
        cache = service.status()["prediction_cache"]
        assert cache["hits"] >= len(queries) and cache["size"] >= len(queries)
        for query, label in feedback[60:90]:
            service.feedback(query, label)
        service.update()
        assert service.status()["prediction_cache"]["size"] == 0
        hits_before = service.status()["prediction_cache"]["hits"]
        misses_before = service.status()["prediction_cache"]["misses"]
        service.estimate_many(queries)
        cache = service.status()["prediction_cache"]
        # Every post-update lookup missed: nothing stale was served.
        assert cache["hits"] == hits_before
        assert cache["misses"] == misses_before + len(queries)

    def test_update_without_model_falls_back_to_retrain(self, labeled_feedback):
        from repro.observability import MetricsRegistry

        feedback, _ = labeled_feedback
        service = _service(min_feedback=20, registry=MetricsRegistry())
        for query, label in feedback[:30]:
            service.feedback(query, label)
        result = service.update()
        assert result["incremental"] is False
        assert result["fallback"] == "no_model"
        assert service.status()["trained"] is True

    def test_update_without_partial_fit_falls_back(self, labeled_feedback):
        from repro.core import GaussianMixtureHist
        from repro.observability import MetricsRegistry
        from repro.server import EstimatorService

        feedback, _ = labeled_feedback
        service = EstimatorService(
            lambda: GaussianMixtureHist(components=4),
            min_feedback=20,
            registry=MetricsRegistry(),
        )
        for query, label in feedback[:30]:
            service.feedback(query, label)
        service.retrain()
        for query, label in feedback[30:40]:
            service.feedback(query, label)
        result = service.update()
        assert result["incremental"] is False
        assert result["fallback"] == "unsupported"

    def test_residual_budget_falls_back(self, labeled_feedback):
        service, feedback = self._trained(
            labeled_feedback, update_residual_budget=1e-12
        )
        for query, label in feedback[60:80]:
            service.feedback(query, label)
        result = service.update()
        assert result["incremental"] is False
        assert result["fallback"] == "residual_budget"

    def test_evicted_batch_falls_back(self, labeled_feedback):
        """Pending feedback that aged out of the recency ring cannot be
        replayed exactly — the service refits on the union instead."""
        service, feedback = self._trained(
            labeled_feedback, min_feedback=10, feedback_capacity=20
        )
        for query, label in feedback[60:75]:  # 15 pending > ring of 10
            service.feedback(query, label)
        result = service.update()
        assert result["incremental"] is False
        assert result["fallback"] == "batch_evicted"

    def test_auto_update_with_incremental_flag(self, labeled_feedback):
        from repro.observability import MetricsRegistry

        feedback, _ = labeled_feedback
        service = _service(
            retrain_every=25,
            min_feedback=20,
            incremental_updates=True,
            registry=MetricsRegistry(),
        )
        for query, label in feedback[:30]:
            service.feedback(query, label)
        # First auto-train had no model: update fell back to a full fit.
        assert service.status()["trained"] is True
        assert service.status()["last_update"]["fallback"] == "no_model"
        for query, label in feedback[30:60]:
            service.feedback(query, label)
        status = service.status()
        assert status["last_update"]["incremental"] is True
        assert status["generation"] == 2

    def test_update_metrics_move(self, labeled_feedback):
        service, feedback = self._trained(labeled_feedback)
        for query, label in feedback[60:80]:
            service.feedback(query, label)
        service.update()
        registry = service.registry
        assert registry.get("repro_update_total").value(outcome="success") == 1
        assert (
            registry.get("repro_update_rows_appended_total").value() == 20
        )
        assert registry.get("repro_update_seconds").snapshot()["count"] == 1

    def test_http_update_endpoint(self, labeled_feedback):
        from repro.observability import MetricsRegistry

        feedback, _ = labeled_feedback
        service = _service(min_feedback=20, registry=MetricsRegistry())
        server = serve(service, port=0)
        try:
            host, port = server.server_address
            for query, label in feedback[:40]:
                service.feedback(query, label)
            service.retrain()
            for query, label in feedback[40:55]:
                service.feedback(query, label)
            request = urllib.request.Request(
                f"http://{host}:{port}/v1/update",
                data=b"{}",
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request) as response:
                body = json.loads(response.read())
        finally:
            server.shutdown()
        assert body["incremental"] is True
        assert body["rows_appended"] == 15
        assert body["generation"] == 2

    def test_delta_snapshot_carries_incremental_metadata(
        self, labeled_feedback, tmp_path
    ):
        from repro.observability import MetricsRegistry
        from repro.persistence.artifact import load_manifest

        service, feedback = self._trained(
            labeled_feedback, snapshot_dir=str(tmp_path)
        )
        for query, label in feedback[60:80]:
            service.feedback(query, label)
        service.update()
        store = service.snapshot_store
        assert store.latest_generation() == 2
        manifest = load_manifest(store.path_for(2))
        fit = manifest["fit"]
        assert fit["incremental"] is True
        assert fit["base_generation"] == 1
        assert fit["rows_appended"] == 20
