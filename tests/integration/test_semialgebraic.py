"""Semi-algebraic and disc-intersection queries, end to end (Section 2.2).

The paper's generality claim: any query class expressible as semi-algebraic
sets with bounded description complexity has finite VC dimension, so its
selectivity is learnable — including range spaces whose *objects* are not
points (disc-intersection queries, via the (x, y, radius) lifting).
These tests run the actual learners on such workloads.
"""

import numpy as np
import pytest

from repro.core import PtsHist
from repro.data import Dataset, label_queries
from repro.geometry import Box, DiscIntersectionRange, SemiAlgebraicRange
from repro.eval import rms_error


@pytest.fixture(scope="module")
def disc_dataset():
    """A universe of discs encoded as points (x, y, radius) in [0,1]^3.

    Radii are small and skewed; centers cluster in the lower-left.
    """
    gen = np.random.default_rng(31)
    n = 8000
    centers = gen.beta(2.0, 4.0, size=(n, 2))
    radii = gen.beta(1.5, 12.0, size=n)
    rows = np.column_stack([centers, radii])
    return Dataset("discs", np.clip(rows, 0, 1))


class TestDiscIntersectionQueries:
    def test_learnable_with_ptshist(self, disc_dataset):
        gen = np.random.default_rng(7)
        def workload(count):
            queries = []
            for _ in range(count):
                center = gen.random(2)
                radius = gen.random() * 0.5
                queries.append(DiscIntersectionRange(center, radius))
            return queries

        train = workload(120)
        test = workload(80)
        train_labels = label_queries(disc_dataset, train)
        test_labels = label_queries(disc_dataset, test)
        est = PtsHist(size=480, seed=0).fit(train, train_labels)
        rms = rms_error(est.predict_many(test), test_labels)
        assert rms < 0.1

    def test_selectivity_semantics(self, disc_dataset):
        """A query disc covering everything selects every data disc."""
        huge = DiscIntersectionRange([0.5, 0.5], radius=3.0)
        assert label_queries(disc_dataset, [huge])[0] == 1.0

    def test_empty_query(self, disc_dataset):
        tiny_far = DiscIntersectionRange([5.0, 5.0], radius=0.01, max_data_radius=1.0)
        assert label_queries(disc_dataset, [tiny_far])[0] == 0.0


class TestSemiAlgebraicQueries:
    def test_annulus_queries_learnable(self, rng):
        """Annulus (ring) queries: b=2 quadratic predicates, finite VC."""
        data_points = rng.random((6000, 2))
        dataset = Dataset("uniform2d", data_points)

        def make_annulus(center, r_inner, r_outer):
            cx, cy = center
            return SemiAlgebraicRange(
                dim=2,
                predicates=[
                    lambda p, cx=cx, cy=cy, r=r_outer: (p[:, 0] - cx) ** 2
                    + (p[:, 1] - cy) ** 2
                    - r**2,
                    lambda p, cx=cx, cy=cy, r=r_inner: r**2
                    - ((p[:, 0] - cx) ** 2 + (p[:, 1] - cy) ** 2),
                ],
                bounding_box=Box(
                    np.clip([cx - r_outer, cy - r_outer], 0, 1),
                    np.clip([cx + r_outer, cy + r_outer], 0, 1),
                ),
            )

        def workload(count):
            queries = []
            for _ in range(count):
                center = rng.random(2)
                r_inner = 0.05 + 0.15 * rng.random()
                r_outer = r_inner + 0.1 + 0.3 * rng.random()
                queries.append(make_annulus(center, r_inner, r_outer))
            return queries

        train = workload(100)
        test = workload(60)
        est = PtsHist(size=400, seed=0).fit(train, label_queries(dataset, train))
        rms = rms_error(est.predict_many(test), label_queries(dataset, test))
        assert rms < 0.1
