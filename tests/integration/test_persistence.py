"""Model persistence: every fitted estimator must pickle round-trip.

A selectivity model is trained once and shipped into a query optimizer;
if it cannot be serialised it cannot be deployed.  All estimators hold
plain numpy state, so pickle must reproduce predictions exactly.
"""

import pickle

import numpy as np
import pytest

from repro.baselines import Isomer, MeanEstimator, QuickSel, STHoles, UniformEstimator
from repro.core import ArrangementERM, GaussianMixtureHist, KdHist, PtsHist, QuadHist


ESTIMATORS = [
    ("quadhist", lambda: QuadHist(tau=0.02)),
    ("ptshist", lambda: PtsHist(size=100, seed=0)),
    ("gmm", lambda: GaussianMixtureHist(components=60, seed=0)),
    ("kdhist", lambda: KdHist(tau=0.02)),
    ("arrangement", lambda: ArrangementERM(mode="discrete", samples=800)),
    ("isomer", lambda: Isomer(max_buckets=1000)),
    ("stholes", lambda: STHoles(max_buckets=80)),
    ("quicksel", lambda: QuickSel()),
    ("uniform", lambda: UniformEstimator()),
    ("mean", lambda: MeanEstimator()),
]


@pytest.mark.parametrize("name,factory", ESTIMATORS)
def test_pickle_roundtrip_preserves_predictions(name, factory, power2d_box_workload):
    train_q, train_s, test_q, _ = power2d_box_workload
    model = factory().fit(train_q, train_s)
    restored = pickle.loads(pickle.dumps(model))
    np.testing.assert_array_equal(
        model.predict_many(test_q), restored.predict_many(test_q)
    )
    assert restored.model_size == model.model_size


def test_unfitted_estimator_also_picklable():
    restored = pickle.loads(pickle.dumps(QuadHist(tau=0.01)))
    assert "unfitted" in repr(restored)


def test_pickled_distribution_still_samples(power2d_box_workload):
    train_q, train_s, _, _ = power2d_box_workload
    model = QuadHist(tau=0.02).fit(train_q, train_s)
    restored = pickle.loads(pickle.dumps(model))
    rng = np.random.default_rng(0)
    sample = restored.distribution.sample(100, rng)
    assert sample.shape == (100, 2)
