"""Integration tests: the paper's qualitative claims, end to end.

These are the fast versions of the benchmark suite's checks — each one
validates a headline claim of the paper on a small scale:

* learnability: test error decreases with training size (Theorem 2.1),
* genericity: the same learners handle boxes, halfspaces, and balls,
* query-driven models beat the uniform assumption on skewed data,
* Q-errors of simplex-constrained models stay bounded where QuickSel's
  blow up (Section 4.2 / Table 1),
* the learned model is a genuine distribution one can sample from.
"""

import numpy as np
import pytest

from repro.baselines import QuickSel, UniformEstimator
from repro.core import PtsHist, QuadHist
from repro.data import WorkloadSpec, forest_like, power_like
from repro.eval import evaluate_estimator, make_workload, rms_error, train_test_workload


@pytest.fixture(scope="module")
def power2d_big():
    return power_like(rows=15_000).project([0, 3])


@pytest.fixture(scope="module")
def gen():
    return np.random.default_rng(2022)


class TestLearnability:
    def test_error_decreases_with_training_size(self, power2d_big, gen):
        """Theorem 2.1's empirical signature (Figure 11)."""
        test = make_workload(power2d_big, 150, gen)
        errors = []
        for n in (25, 100, 400):
            train = make_workload(power2d_big, n, gen)
            est = QuadHist(tau=0.005).fit(train.queries, train.selectivities)
            errors.append(rms_error(est.predict_many(test.queries), test.selectivities))
        assert errors[2] < errors[0]
        assert errors[2] < 0.03  # the paper reaches <0.01 at n=1000

    def test_ptshist_error_decreases_too(self, power2d_big, gen):
        test = make_workload(power2d_big, 150, gen)
        errors = []
        for n in (25, 100, 400):
            train = make_workload(power2d_big, n, gen)
            est = PtsHist(size=4 * n, seed=0).fit(train.queries, train.selectivities)
            errors.append(rms_error(est.predict_many(test.queries), test.selectivities))
        assert errors[2] < errors[0]


class TestGenericity:
    @pytest.mark.parametrize("query_kind", ["box", "ball", "halfspace"])
    def test_quadhist_handles_all_query_types_2d(self, power2d_big, gen, query_kind):
        spec = WorkloadSpec(query_kind=query_kind, center_kind="data")
        train, test = train_test_workload(power2d_big, 80, 60, gen, spec=spec)
        result = evaluate_estimator("quadhist", QuadHist(tau=0.01), train, test)
        assert result.rms < 0.08

    @pytest.mark.parametrize("query_kind", ["box", "ball", "halfspace"])
    def test_ptshist_handles_all_query_types_4d(self, gen, query_kind):
        data = forest_like(rows=10_000).numeric_projection(4, gen)
        spec = WorkloadSpec(query_kind=query_kind, center_kind="data")
        train, test = train_test_workload(data, 100, 60, gen, spec=spec)
        result = evaluate_estimator("ptshist", PtsHist(size=400, seed=0), train, test)
        assert result.rms < 0.12


class TestAgainstBaselines:
    def test_learned_models_beat_uniform_assumption(self, power2d_big, gen):
        train, test = train_test_workload(power2d_big, 150, 100, gen)
        uniform = evaluate_estimator("uniform", UniformEstimator(), train, test)
        quad = evaluate_estimator("quadhist", QuadHist(tau=0.01), train, test)
        pts = evaluate_estimator("ptshist", PtsHist(size=600, seed=0), train, test)
        assert quad.rms < uniform.rms / 5
        assert pts.rms < uniform.rms / 3

    def test_simplex_models_bound_qerror_vs_quicksel(self, power2d_big, gen):
        """Table 1's story: on Random workloads over skewed data QuickSel's
        tail Q-error explodes while QuadHist stays moderate."""
        spec = WorkloadSpec(query_kind="box", center_kind="random")
        train, test = train_test_workload(power2d_big, 150, 100, gen, spec=spec)
        quad = evaluate_estimator("quadhist", QuadHist(tau=0.01), train, test)
        quick = evaluate_estimator("quicksel", QuickSel(), train, test)
        assert quad.q_quantiles[0.99] <= quick.q_quantiles[0.99] * 2


class TestDistributionSemantics:
    def test_learned_histogram_is_samplable_and_consistent(self, power2d_big, gen):
        train = make_workload(power2d_big, 150, gen)
        est = QuadHist(tau=0.01).fit(train.queries, train.selectivities)
        sample = est.distribution.sample(8000, gen)
        # Empirical selectivity of the sample matches model predictions.
        for q in train.queries[:10]:
            empirical = float(np.mean(q.contains(sample)))
            assert empirical == pytest.approx(est.predict(q), abs=0.03)

    def test_agnostic_labels_accepted(self, power2d_big, gen):
        """The agnostic model: noisy labels still train (Remark, Sec 2.1)."""
        train = make_workload(power2d_big, 100, gen)
        noisy = np.clip(
            train.selectivities + gen.normal(0, 0.05, len(train)), 0, 1
        )
        est = QuadHist(tau=0.01).fit(train.queries, noisy)
        preds = est.predict_many(train.queries)
        # Fit should track the noisy labels roughly but remain a distribution.
        assert rms_error(preds, noisy) < 0.08
