"""Classic data-driven 1-D histograms (oracle baselines)."""

import numpy as np
import pytest

from repro.baselines import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    VOptimalHistogram,
    WaveletHistogram,
)
from repro.geometry import Box

ALL = [
    ("equi-width", lambda: EquiWidthHistogram(buckets=64)),
    ("equi-depth", lambda: EquiDepthHistogram(buckets=64)),
    ("v-optimal", lambda: VOptimalHistogram(buckets=24, grid=128)),
    ("wavelet", lambda: WaveletHistogram(coefficients=48, grid=128)),
]


@pytest.fixture(scope="module")
def skewed_column():
    gen = np.random.default_rng(17)
    return np.clip(gen.beta(1.5, 6.0, size=30_000), 0, 1)


def true_selectivity(column, lo, hi):
    return float(np.mean((column >= lo) & (column <= hi)))


@pytest.mark.parametrize("name,factory", ALL)
class TestSharedBehaviour:
    def test_whole_domain_is_one(self, name, factory, skewed_column):
        est = factory().fit_data(skewed_column)
        assert est.predict(Box([0.0], [1.0])) == pytest.approx(1.0, abs=1e-6)

    def test_accurate_on_random_ranges(self, name, factory, skewed_column, rng):
        est = factory().fit_data(skewed_column)
        errors = []
        for _ in range(40):
            lo = rng.random() * 0.8
            hi = lo + rng.random() * (1 - lo)
            truth = true_selectivity(skewed_column, lo, hi)
            errors.append(abs(est.predict(Box([lo], [hi])) - truth))
        assert float(np.mean(errors)) < 0.02, name

    def test_rejects_query_driven_fit(self, name, factory):
        with pytest.raises(TypeError):
            factory().fit([Box([0.0], [0.5])], [0.5])

    def test_rejects_2d_queries(self, name, factory, skewed_column):
        est = factory().fit_data(skewed_column)
        with pytest.raises(TypeError):
            est.predict(Box([0.0, 0.0], [0.5, 0.5]))

    def test_rejects_unnormalised_data(self, name, factory):
        with pytest.raises(ValueError):
            factory().fit_data(np.array([0.5, 2.0]))

    def test_rejects_empty_data(self, name, factory):
        with pytest.raises(ValueError):
            factory().fit_data(np.array([]))

    def test_monotone(self, name, factory, skewed_column):
        est = factory().fit_data(skewed_column)
        inner = est.predict(Box([0.2], [0.4]))
        outer = est.predict(Box([0.1], [0.5]))
        assert inner <= outer + 1e-9


class TestEquiDepth:
    def test_buckets_hold_equal_mass(self, skewed_column):
        est = EquiDepthHistogram(buckets=10).fit_data(skewed_column)
        assert np.allclose(est._masses, 0.1, atol=0.01)

    def test_handles_ties(self):
        column = np.concatenate([np.zeros(500), np.full(500, 0.5), np.ones(500)])
        est = EquiDepthHistogram(buckets=8).fit_data(column)
        assert est.predict(Box([0.0], [1.0])) == pytest.approx(1.0, abs=1e-6)


class TestVOptimal:
    def test_beats_equi_width_on_spiky_data(self):
        """V-optimal's raison d'être: it isolates spikes exactly."""
        gen = np.random.default_rng(3)
        spike = np.full(20_000, 0.305)
        background = gen.random(10_000)
        column = np.concatenate([spike, background])
        v_opt = VOptimalHistogram(buckets=16, grid=128).fit_data(column)
        equi = EquiWidthHistogram(buckets=16).fit_data(column)
        query = Box([0.30], [0.31])
        truth = true_selectivity(column, 0.30, 0.31)
        assert abs(v_opt.predict(query) - truth) <= abs(equi.predict(query) - truth)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            VOptimalHistogram(buckets=50, grid=20)


class TestWavelet:
    def test_full_coefficients_reconstruct_exactly(self, skewed_column):
        est = WaveletHistogram(coefficients=128, grid=128).fit_data(skewed_column)
        reference = EquiWidthHistogram(buckets=128).fit_data(skewed_column)
        for lo, hi in [(0.0, 0.25), (0.1, 0.6), (0.5, 1.0)]:
            assert est.predict(Box([lo], [hi])) == pytest.approx(
                reference.predict(Box([lo], [hi])), abs=1e-9
            )

    def test_sparse_synopsis_still_accurate(self, skewed_column):
        est = WaveletHistogram(coefficients=16, grid=256).fit_data(skewed_column)
        truth = true_selectivity(skewed_column, 0.0, 0.2)
        assert est.predict(Box([0.0], [0.2])) == pytest.approx(truth, abs=0.05)

    def test_power_of_two_validation(self):
        with pytest.raises(ValueError):
            WaveletHistogram(grid=100)
