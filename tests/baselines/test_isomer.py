"""ISOMER — STHoles drilling invariants and max-ent consistency."""

import numpy as np
import pytest

from repro.baselines import Isomer, UniformEstimator
from repro.geometry import Ball, Box, unit_box


@pytest.fixture
def box_workload(rng):
    queries = [
        Box.from_center(rng.random(2), rng.random(2) * 0.7, clip_to=unit_box(2))
        for _ in range(15)
    ]
    queries = [q for q in queries if q.volume() > 0]
    labels = np.clip([q.volume() * 0.7 for q in queries], 0, 1)
    return queries, np.asarray(labels)


class TestDrilling:
    def test_buckets_partition_domain(self, box_workload):
        queries, labels = box_workload
        est = Isomer().fit(queries, labels)
        total = float(np.sum(est.distribution._volumes))
        assert total == pytest.approx(1.0)

    def test_buckets_are_disjoint(self, box_workload):
        queries, labels = box_workload
        est = Isomer().fit(queries, labels)
        est.distribution.validate()

    def test_buckets_aligned_with_queries(self, box_workload, rng):
        """After drilling, every bucket is fully inside or outside every
        training query (the invariant that makes feedback constraints 0/1)."""
        queries, labels = box_workload
        est = Isomer().fit(queries, labels)
        for bucket in est.distribution.buckets:
            if bucket.volume() <= 0:
                continue
            probe = bucket.lows + rng.random((15, 2)) * bucket.widths
            for q in queries:
                inside = np.asarray(q.contains(probe))
                assert inside.all() or not inside.any()

    def test_bucket_count_grows_superlinearly(self, rng):
        """The paper observes ISOMER using 48-160x buckets per query."""
        queries = [
            Box.from_center(rng.random(2), rng.random(2) * 0.7, clip_to=unit_box(2))
            for _ in range(30)
        ]
        queries = [q for q in queries if q.volume() > 0]
        labels = np.clip([q.volume() * 0.7 for q in queries], 0, 1)
        est = Isomer().fit(queries, labels)
        assert est.model_size > 3 * len(queries)

    def test_max_buckets_respected_up_to_one_round(self, box_workload):
        queries, labels = box_workload
        est = Isomer(max_buckets=50).fit(queries, labels)
        # One drilling round can overshoot by a factor <= 2d+1 per bucket.
        assert est.model_size <= 50 * (2 * 2 + 1)

    def test_rejects_non_box_queries(self):
        with pytest.raises(TypeError):
            Isomer().fit([Ball([0.5, 0.5], 0.2)], [0.2])


class TestAccuracy:
    def test_consistent_with_training_feedback(self, box_workload):
        queries, labels = box_workload
        est = Isomer(slack=1e-4).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.max(np.abs(preds - labels)) < 0.05

    def test_beats_uniform_on_skewed_data(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        isomer = Isomer(max_buckets=4000).fit(train_q[:50], train_s[:50])
        uniform = UniformEstimator().fit(train_q[:50], train_s[:50])
        rms_isomer = np.sqrt(np.mean((isomer.predict_many(test_q) - test_s) ** 2))
        rms_uniform = np.sqrt(np.mean((uniform.predict_many(test_q) - test_s) ** 2))
        assert rms_isomer < rms_uniform / 3

    def test_weights_are_distribution(self, box_workload):
        queries, labels = box_workload
        est = Isomer().fit(queries, labels)
        assert np.sum(est.distribution.weights) == pytest.approx(1.0)
        assert np.all(est.distribution.weights >= 0)


class TestValidation:
    def test_invalid_max_buckets(self):
        with pytest.raises(ValueError):
            Isomer(max_buckets=0)
