"""STHoles — tree invariants, budget, merging, accuracy."""

import numpy as np
import pytest

from repro.baselines import STHoles, UniformEstimator
from repro.geometry import Ball, Box, unit_box


@pytest.fixture
def small_workload(rng):
    queries = [
        Box.from_center(rng.random(2), rng.random(2) * 0.6, clip_to=unit_box(2))
        for _ in range(25)
    ]
    queries = [q for q in queries if q.volume() > 0]
    labels = np.clip([q.volume() * 0.7 for q in queries], 0, 1)
    return queries, np.asarray(labels)


def _check_tree(est: STHoles):
    """Every child box nested in its parent; siblings disjoint."""
    for bucket in est._root.walk():
        for child in bucket.children:
            assert bucket.box.contains_box(child.box)
        for i, a in enumerate(bucket.children):
            for b in bucket.children[i + 1 :]:
                inter = a.box.intersect(b.box)
                assert inter is None or inter.volume() < 1e-9


class TestStructure:
    def test_tree_invariants(self, small_workload):
        queries, labels = small_workload
        est = STHoles(max_buckets=100).fit(queries, labels)
        _check_tree(est)

    def test_bucket_budget_respected(self, small_workload):
        queries, labels = small_workload
        est = STHoles(max_buckets=30).fit(queries, labels)
        assert est.model_size <= 30

    def test_drilling_creates_buckets(self, small_workload):
        queries, labels = small_workload
        est = STHoles(max_buckets=200).fit(queries, labels)
        assert est.model_size > 1

    def test_merging_preserves_invariants(self, small_workload):
        queries, labels = small_workload
        est = STHoles(max_buckets=10).fit(queries, labels)
        _check_tree(est)
        assert est.model_size <= 10

    def test_regions_partition_domain(self, small_workload):
        queries, labels = small_workload
        est = STHoles(max_buckets=100).fit(queries, labels)
        total = sum(b.region_volume() for b in est._root.walk())
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_rejects_non_box_queries(self):
        with pytest.raises(TypeError):
            STHoles().fit([Ball([0.5, 0.5], 0.2)], [0.2])

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            STHoles(max_buckets=0)


class TestAccuracy:
    def test_weights_on_simplex(self, small_workload):
        queries, labels = small_workload
        est = STHoles(max_buckets=100).fit(queries, labels)
        assert np.all(est._weights >= -1e-12)
        assert np.sum(est._weights) == pytest.approx(1.0, abs=1e-8)

    def test_fits_training_feedback(self, small_workload):
        queries, labels = small_workload
        est = STHoles(max_buckets=150).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.05

    def test_beats_uniform_on_skewed_data(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        st = STHoles(max_buckets=300).fit(train_q[:60], train_s[:60])
        uniform = UniformEstimator().fit(train_q[:60], train_s[:60])
        rms_st = np.sqrt(np.mean((st.predict_many(test_q) - test_s) ** 2))
        rms_uniform = np.sqrt(np.mean((uniform.predict_many(test_q) - test_s) ** 2))
        assert rms_st < rms_uniform / 3

    def test_tight_budget_degrades_gracefully(self, power2d_box_workload):
        """A heavily merged model stays a valid (coarse) estimator."""
        train_q, train_s, test_q, test_s = power2d_box_workload
        est = STHoles(max_buckets=8).fit(train_q[:40], train_s[:40])
        preds = est.predict_many(test_q)
        assert np.all(preds >= 0.0) and np.all(preds <= 1.0)
        rms = np.sqrt(np.mean((preds - test_s) ** 2))
        assert rms < 0.35  # coarse but not useless
