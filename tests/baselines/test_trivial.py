"""Trivial baselines."""

import numpy as np
import pytest

from repro.baselines import MeanEstimator, UniformEstimator
from repro.geometry import Ball, Box, Halfspace, unit_box


class TestUniformEstimator:
    def test_box_prediction_is_volume(self):
        est = UniformEstimator().fit([Box([0.0, 0.0], [1.0, 1.0])], [1.0])
        assert est.predict(Box([0.0, 0.0], [0.5, 0.5])) == pytest.approx(0.25)

    def test_halfspace_prediction(self):
        est = UniformEstimator().fit([Box([0.0, 0.0], [1.0, 1.0])], [1.0])
        assert est.predict(Halfspace([1.0, 0.0], 0.4)) == pytest.approx(0.6)

    def test_ball_prediction(self):
        est = UniformEstimator().fit([Box([0.0, 0.0], [1.0, 1.0])], [1.0])
        assert est.predict(Ball([0.5, 0.5], 0.25)) == pytest.approx(
            np.pi * 0.0625, abs=1e-9
        )

    def test_exact_on_uniform_data(self, rng):
        est = UniformEstimator().fit([unit_box(2)], [1.0])
        for _ in range(10):
            q = Box.from_center(rng.random(2), rng.random(2), clip_to=unit_box(2))
            assert est.predict(q) == pytest.approx(q.volume(), abs=1e-9)

    def test_model_size(self):
        assert UniformEstimator().fit([unit_box(2)], [1.0]).model_size == 1


class TestMeanEstimator:
    def test_predicts_training_mean(self):
        est = MeanEstimator().fit(
            [Box([0.0], [0.1]), Box([0.0], [0.9])], [0.2, 0.6]
        )
        assert est.predict(Box([0.0], [0.5])) == pytest.approx(0.4)

    def test_ignores_query(self):
        est = MeanEstimator().fit([Box([0.0], [0.5])], [0.33])
        assert est.predict(Box([0.0], [0.01])) == est.predict(Box([0.0], [0.99]))
