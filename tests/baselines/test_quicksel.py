"""QuickSel — mixture-of-uniforms QP."""

import numpy as np
import pytest

from repro.baselines import QuickSel, UniformEstimator
from repro.geometry import Ball, Box, unit_box


@pytest.fixture
def box_workload(rng):
    queries = [
        Box.from_center(rng.random(2), rng.random(2) * 0.7, clip_to=unit_box(2))
        for _ in range(20)
    ]
    queries = [q for q in queries if q.volume() > 0]
    labels = np.clip([q.volume() * 0.6 for q in queries], 0, 1)
    return queries, np.asarray(labels)


class TestTraining:
    def test_constraints_satisfied_on_training_queries(self, box_workload):
        queries, labels = box_workload
        est = QuickSel().fit(queries, labels)
        raw = np.array([est.raw_predict(q) for q in queries])
        assert np.max(np.abs(raw - labels)) < 0.02

    def test_total_mass_is_one(self, box_workload):
        queries, labels = box_workload
        est = QuickSel().fit(queries, labels)
        assert est.raw_predict(unit_box(2)) == pytest.approx(1.0, abs=1e-6)

    def test_weights_may_be_negative(self, rng):
        """QuickSel's defining quirk: an over-constrained workload forces
        negative kernel weights (the source of its bad tail Q-errors)."""
        # Nested boxes with contradictory-looking densities.
        outer = Box([0.0, 0.0], [0.8, 0.8])
        inner = Box([0.2, 0.2], [0.6, 0.6])
        est = QuickSel().fit([outer, inner], [0.3, 0.29])
        assert np.any(est._weights < -1e-6)

    def test_model_size_is_kernels(self, box_workload):
        queries, labels = box_workload
        est = QuickSel().fit(queries, labels)
        assert est.model_size == len(queries) + 1  # + the domain kernel

    def test_rejects_non_box_queries(self):
        with pytest.raises(TypeError):
            QuickSel().fit([Ball([0.5, 0.5], 0.2)], [0.2])

    def test_public_predictions_clipped(self, box_workload, rng):
        queries, labels = box_workload
        est = QuickSel().fit(queries, labels)
        for _ in range(20):
            q = Box.from_center(rng.random(2), rng.random(2) * 0.2, clip_to=unit_box(2))
            assert 0.0 <= est.predict(q) <= 1.0


class TestAccuracy:
    def test_beats_uniform_on_skewed_data(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        qs = QuickSel().fit(train_q, train_s)
        uniform = UniformEstimator().fit(train_q, train_s)
        rms_qs = np.sqrt(np.mean((qs.predict_many(test_q) - test_s) ** 2))
        rms_uniform = np.sqrt(np.mean((uniform.predict_many(test_q) - test_s) ** 2))
        assert rms_qs < rms_uniform / 3

    def test_more_training_reduces_error(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        small = QuickSel().fit(train_q[:20], train_s[:20])
        large = QuickSel().fit(train_q, train_s)
        rms_small = np.sqrt(np.mean((small.predict_many(test_q) - test_s) ** 2))
        rms_large = np.sqrt(np.mean((large.predict_many(test_q) - test_s) ** 2))
        assert rms_large <= rms_small * 1.2  # allow noise, expect improvement


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QuickSel(constraint_weight=0)
        with pytest.raises(ValueError):
            QuickSel(ridge=-1)
