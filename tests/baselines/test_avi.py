"""AVI product histogram — the classical independence-assumption oracle."""

import numpy as np
import pytest

from repro.baselines import AVIProductHistogram
from repro.core import QuadHist
from repro.data import Dataset, WorkloadSpec, generate_workload, label_queries
from repro.geometry import Ball, Box


@pytest.fixture(scope="module")
def independent_data():
    gen = np.random.default_rng(5)
    return Dataset("indep", gen.random((20_000, 2)))


@pytest.fixture(scope="module")
def correlated_data():
    gen = np.random.default_rng(6)
    x = gen.random(20_000)
    y = np.clip(x + gen.normal(0, 0.02, 20_000), 0, 1)  # y ~ x
    return Dataset("corr", np.column_stack([x, y]))


class TestAVI:
    def test_exact_on_independent_data(self, independent_data, rng):
        est = AVIProductHistogram(buckets_per_dim=64).fit_data(independent_data.rows)
        queries = generate_workload(
            40, 2, rng, WorkloadSpec("box", "random")
        )
        truths = label_queries(independent_data, queries)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - truths) ** 2)) < 0.02

    def test_fails_on_correlated_data(self, correlated_data):
        """The AVI failure mode: on y ~ x data, an off-diagonal box is
        (nearly) empty but the product of marginals predicts a large mass."""
        est = AVIProductHistogram(buckets_per_dim=64).fit_data(correlated_data.rows)
        off_diagonal = Box([0.0, 0.6], [0.4, 1.0])
        truth = label_queries(correlated_data, [off_diagonal])[0]
        assert truth < 0.01  # precondition: correlation empties the box
        assert est.predict(off_diagonal) > 0.1  # AVI badly overestimates

    def test_learned_model_beats_avi_on_correlated_data(self, correlated_data, rng):
        """The motivating comparison: query feedback captures correlation
        that the independence assumption cannot."""
        spec = WorkloadSpec("box", "data")
        train = generate_workload(150, 2, rng, spec, dataset=correlated_data)
        test = generate_workload(100, 2, rng, spec, dataset=correlated_data)
        train_s = label_queries(correlated_data, train)
        test_s = label_queries(correlated_data, test)
        learned = QuadHist(tau=0.005).fit(train, train_s)
        avi = AVIProductHistogram(buckets_per_dim=64).fit_data(correlated_data.rows)
        rms_learned = np.sqrt(np.mean((learned.predict_many(test) - test_s) ** 2))
        rms_avi = np.sqrt(np.mean((avi.predict_many(test) - test_s) ** 2))
        assert rms_learned < rms_avi / 2

    def test_model_size_sums_marginals(self, independent_data):
        est = AVIProductHistogram(buckets_per_dim=32).fit_data(independent_data.rows)
        assert est.model_size <= 2 * 32

    def test_rejects_query_driven_fit(self):
        with pytest.raises(TypeError):
            AVIProductHistogram().fit([Box([0.0, 0.0], [0.5, 0.5])], [0.25])

    def test_rejects_wrong_dim_or_type(self, independent_data):
        est = AVIProductHistogram().fit_data(independent_data.rows)
        with pytest.raises(TypeError):
            est.predict(Box([0.0], [0.5]))
        with pytest.raises(TypeError):
            est.predict(Ball([0.5, 0.5], 0.2))

    def test_validation(self):
        with pytest.raises(ValueError):
            AVIProductHistogram(buckets_per_dim=0)
        with pytest.raises(ValueError):
            AVIProductHistogram().fit_data(np.empty((0, 2)))
