"""Regression baseline: the from-scratch trees, boosting, and LW estimator."""

import numpy as np
import pytest

from repro.baselines import GradientBoostedTrees, LWRegression, RegressionTree
from repro.baselines.regression import featurize_box
from repro.core import QuadHist
from repro.eval import monotonicity_violations
from repro.geometry import Ball, Box, unit_box


class TestRegressionTree:
    def test_fits_step_function_exactly(self):
        x = np.linspace(0, 1, 200)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2, min_samples_leaf=2).fit(x, y)
        preds = tree.predict(x)
        assert np.max(np.abs(preds - y)) < 1e-9

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).random((50, 3))
        y = np.full(50, 0.7)
        tree = RegressionTree().fit(x, y)
        assert np.allclose(tree.predict(x), 0.7)

    def test_respects_min_samples_leaf(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        tree = RegressionTree(min_samples_leaf=2).fit(x, y)
        # Cannot split: both points predict the mean.
        assert np.allclose(tree.predict(x), 0.5)

    def test_deeper_trees_fit_better(self, rng):
        x = rng.random((400, 2))
        y = np.sin(6 * x[:, 0]) * x[:, 1]
        shallow = RegressionTree(max_depth=2).fit(x, y)
        deep = RegressionTree(max_depth=6).fit(x, y)
        sse_shallow = np.sum((shallow.predict(x) - y) ** 2)
        sse_deep = np.sum((deep.predict(x) - y) ** 2)
        assert sse_deep < sse_shallow

    def test_split_chooses_informative_feature(self, rng):
        x = rng.random((300, 2))
        y = (x[:, 1] > 0.5).astype(float)  # only feature 1 matters
        tree = RegressionTree(max_depth=1).fit(x, y)
        assert tree._root.feature == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree().fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.ones((1, 2)))


class TestBoosting:
    def test_training_error_monotonically_decreases(self, rng):
        x = rng.random((300, 3))
        y = x[:, 0] * 2 + np.sin(5 * x[:, 1])
        model = GradientBoostedTrees(n_trees=50, learning_rate=0.2).fit(x, y)
        errors = model.train_errors
        assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))

    def test_beats_single_tree(self, rng):
        x = rng.random((400, 2))
        y = np.sin(6 * x[:, 0]) + 0.5 * x[:, 1] ** 2
        boosted = GradientBoostedTrees(n_trees=80, max_depth=3).fit(x, y)
        single = RegressionTree(max_depth=3).fit(x, y)
        mse_boosted = np.mean((boosted.predict(x) - y) ** 2)
        mse_single = np.mean((single.predict(x) - y) ** 2)
        assert mse_boosted < mse_single / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_trees=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)


class TestLWRegression:
    def test_featurize_shape(self):
        features = featurize_box(Box([0.1, 0.2], [0.5, 0.9]))
        assert features.shape == (4 * 2 + 1,)

    def test_accuracy_on_power_data(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        est = LWRegression(n_trees=120).fit(train_q, train_s)
        rms = np.sqrt(np.mean((est.predict_many(test_q) - test_s) ** 2))
        assert rms < 0.12

    def test_comparable_but_not_guaranteed_valid(self, power2d_box_workload, rng):
        """The paper's point about regression models, measured: accuracy is
        fine, but monotonicity violations occur (a distribution model has
        exactly zero)."""
        train_q, train_s, _, _ = power2d_box_workload
        lw = LWRegression(n_trees=120).fit(train_q, train_s)
        quad = QuadHist(tau=0.01).fit(train_q, train_s)
        lw_viol = monotonicity_violations(lw, rng, dim=2, chains=60)
        quad_viol = monotonicity_violations(quad, rng, dim=2, chains=60)
        assert quad_viol == 0.0
        assert lw_viol >= quad_viol  # typically strictly positive

    def test_rejects_non_box_queries(self):
        with pytest.raises(TypeError):
            LWRegression().fit([Ball([0.5, 0.5], 0.2)], [0.2])

    def test_prediction_clipped_to_unit_interval(self, power2d_box_workload, rng):
        train_q, train_s, _, _ = power2d_box_workload
        est = LWRegression(n_trees=60).fit(train_q, train_s)
        for _ in range(20):
            q = Box.from_center(rng.random(2), rng.random(2), clip_to=unit_box(2))
            assert 0.0 <= est.predict(q) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LWRegression(log_floor=0.0)
