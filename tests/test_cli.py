"""CLI: both subcommands, argument validation, and file round-trip."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_observability_flags(self):
        args = build_parser().parse_args(["serve"])
        assert args.log_json is False
        assert args.access_log is False
        args = build_parser().parse_args(["serve", "--log-json", "--access-log"])
        assert args.log_json is True
        assert args.access_log is True

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.url is None
        args = build_parser().parse_args(["metrics", "--url", "http://x:1/metrics"])
        assert args.url == "http://x:1/metrics"

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "w.json"])
        assert args.dataset == "power"
        assert args.attrs == [0, 3]
        assert args.queries == 200

    def test_attrs_parsing(self):
        args = build_parser().parse_args(
            ["generate", "--out", "w.json", "--attrs", "1,4,6"]
        )
        assert args.attrs == [1, 4, 6]

    def test_bad_attrs_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--out", "w.json", "--attrs", "a,b"])

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--out", "w", "--dataset", "tpch"])


class TestGenerate:
    def test_writes_workload_file(self, tmp_path, capsys):
        out = tmp_path / "train.json"
        code = main(
            [
                "generate",
                "--rows", "3000",
                "--queries", "25",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["queries"]) == 25
        assert "wrote 25" in capsys.readouterr().out


class TestEvaluate:
    def test_end_to_end_table(self, capsys):
        code = main(
            [
                "evaluate",
                "--rows", "3000",
                "--train", "30",
                "--test", "20",
                "--methods", "quadhist,uniform",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quadhist" in out and "uniform" in out
        assert "rms" in out

    def test_unknown_method_fails_cleanly(self, capsys):
        code = main(
            [
                "evaluate",
                "--rows", "3000",
                "--train", "10",
                "--test", "10",
                "--methods", "resnet",
            ]
        )
        assert code == 2
        assert "unknown method" in capsys.readouterr().err

    def test_train_from_file(self, tmp_path, capsys):
        out = tmp_path / "train.json"
        main(["generate", "--rows", "3000", "--queries", "30", "--out", str(out)])
        capsys.readouterr()
        code = main(
            [
                "evaluate",
                "--rows", "3000",
                "--train-file", str(out),
                "--test", "15",
                "--methods", "ptshist",
            ]
        )
        assert code == 0
        assert "train=30" in capsys.readouterr().out


class TestMetricsCommand:
    def test_dumps_exposition_from_running_sidecar(self, capsys):
        from repro.core import QuadHist
        from repro.server import EstimatorService, serve

        service = EstimatorService(lambda: QuadHist(tau=0.02))
        server = serve(service, port=0)
        try:
            host, port = server.server_address
            code = main(["metrics", "--host", host, "--port", str(port)])
        finally:
            server.shutdown()
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_requests_total counter" in out
        assert "repro_http_requests_total" in out

    def test_explicit_url_overrides_host_port(self, capsys):
        from repro.core import QuadHist
        from repro.server import EstimatorService, serve

        service = EstimatorService(lambda: QuadHist(tau=0.02))
        server = serve(service, port=0)
        try:
            host, port = server.server_address
            code = main(
                ["metrics", "--port", "1", "--url", f"http://{host}:{port}/metrics"]
            )
        finally:
            server.shutdown()
        assert code == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_unreachable_sidecar_fails_cleanly(self, capsys):
        code = main(["metrics", "--url", "http://127.0.0.1:9/metrics", "--timeout", "0.5"])
        assert code == 1
        assert "could not scrape" in capsys.readouterr().err
