"""Degraded-health reporting: breaker open, stale serving generation.

``/health`` stays HTTP 200 in every state — an unhealthy worker is still
alive — but the body flips to ``degraded`` with machine-readable reasons
so load balancers and the supervisor can weight away from it.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.core import QuadHist
from repro.observability import MetricsRegistry
from repro.server import EstimatorService, serve
from repro.serving import pretrain_snapshot


class _ExplodingEstimator:
    def fit(self, queries, selectivities, **kwargs):
        raise RuntimeError("fit exploded")


def _feed(service, workload, n=30):
    train_q, train_s, _, _ = workload
    for query, label in zip(train_q[:n], train_s[:n]):
        service.feedback(query, label)


def test_health_ok_when_serving_normally(power2d_box_workload):
    service = EstimatorService(
        lambda: QuadHist(tau=0.02), min_feedback=20, registry=MetricsRegistry()
    )
    _feed(service, power2d_box_workload)
    service.retrain()
    health = service.health()
    assert health["status"] == "ok"
    assert health["reasons"] == []
    assert health["trained"] is True
    assert health["breaker"] == "closed"


def test_degraded_when_breaker_open(power2d_box_workload):
    service = EstimatorService(
        lambda: _ExplodingEstimator(),
        min_feedback=20,
        breaker_threshold=1,
        registry=MetricsRegistry(),
    )
    _feed(service, power2d_box_workload)
    with pytest.raises(RuntimeError, match="fit exploded"):
        service.retrain()
    health = service.health()
    assert health["status"] == "degraded"
    assert health["reasons"] == ["breaker_open"]
    assert health["breaker"] == "open"


def test_degraded_when_generation_stale(tmp_path):
    pretrain_snapshot(tmp_path, generation=1)
    service = EstimatorService(
        lambda: QuadHist(tau=0.01),
        snapshot_dir=tmp_path,
        health_stale_after=2,
        registry=MetricsRegistry(),
    )
    assert service.health()["status"] == "ok"  # serving the newest generation

    # A sibling worker (or operator) writes generations this one hasn't
    # picked up yet.  One generation behind is routine retrain churn ...
    pretrain_snapshot(tmp_path, generation=2)
    health = service.health()
    assert health["status"] == "ok"
    assert health["snapshot_lag"] == 1

    # ... two behind crosses health_stale_after: rolling reloads are broken.
    pretrain_snapshot(tmp_path, generation=3)
    health = service.health()
    assert health["status"] == "degraded"
    assert health["reasons"] == ["stale_generation"]
    assert health["snapshot_lag"] == 2

    # Catching up (what GenerationReloader does) clears the flag.
    service.restore()
    assert service.health()["status"] == "ok"


def test_stale_check_disabled_with_none(tmp_path):
    pretrain_snapshot(tmp_path, generation=1)
    service = EstimatorService(
        lambda: QuadHist(tau=0.01),
        snapshot_dir=tmp_path,
        health_stale_after=None,
        registry=MetricsRegistry(),
    )
    pretrain_snapshot(tmp_path, generation=9)
    health = service.health()
    assert health["status"] == "ok"
    assert health["snapshot_lag"] is None


def test_health_stale_after_validation():
    with pytest.raises(ValueError, match="health_stale_after"):
        EstimatorService(
            lambda: QuadHist(tau=0.01),
            health_stale_after=0,
            registry=MetricsRegistry(),
        )


def test_http_health_degraded_is_still_200(power2d_box_workload):
    service = EstimatorService(
        lambda: _ExplodingEstimator(),
        min_feedback=20,
        breaker_threshold=1,
        registry=MetricsRegistry(),
    )
    _feed(service, power2d_box_workload)
    with pytest.raises(RuntimeError):
        service.retrain()
    server = serve(service, port=0)
    try:
        host, port = server.server_address
        with urllib.request.urlopen(
            f"http://{host}:{port}/health", timeout=5
        ) as response:
            assert response.status == 200
            body = json.loads(response.read())
        assert body["status"] == "degraded"
        assert body["reasons"] == ["breaker_open"]
    finally:
        server.shutdown()
