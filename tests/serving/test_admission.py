"""Admission control: slots, bounded waiting room, shedding, deadlines."""

from __future__ import annotations

import threading

import pytest

from repro.observability import MetricsRegistry
from repro.robustness import Deadline, DeadlineExceededError, OverloadedError
from repro.serving import AdmissionController


def _controller(**kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return AdmissionController(**kwargs)


def test_parameter_validation():
    with pytest.raises(ValueError, match="max_concurrency"):
        _controller(max_concurrency=0)
    with pytest.raises(ValueError, match="queue_depth"):
        _controller(queue_depth=-1)


def test_pass_through_under_capacity():
    controller = _controller(max_concurrency=2)
    with controller.admit():
        assert controller.executing == 1
        with controller.admit():
            assert controller.executing == 2
    assert controller.executing == 0


def test_sheds_with_429_and_retry_after_when_queue_full():
    registry = MetricsRegistry()
    controller = _controller(
        max_concurrency=1, queue_depth=0, shed_retry_after_s=2.0, registry=registry
    )
    with controller.admit():
        with pytest.raises(OverloadedError) as excinfo:
            with controller.admit():
                pass
    assert excinfo.value.http_status == 429
    assert excinfo.value.http_headers == {"Retry-After": "2"}
    shed = registry.counter(
        "repro_requests_shed_total",
        "Requests shed with 429 because the admission queue was full",
        labels=("worker",),
    )
    assert shed.value(worker="0") == 1.0


def test_queued_request_fails_504_when_deadline_expires():
    controller = _controller(max_concurrency=1, queue_depth=4)
    with controller.admit():
        with pytest.raises(DeadlineExceededError):
            with controller.admit(Deadline(0.05)):
                pass
    # The expired waiter must not leak its queue slot.
    assert controller.waiting == 0
    assert controller.executing == 0


def test_already_expired_deadline_rejected_before_queueing():
    controller = _controller(max_concurrency=1)
    expired = Deadline(0.0)
    with pytest.raises(DeadlineExceededError, match="before admission"):
        with controller.admit(expired):
            pass


def test_waiter_proceeds_when_slot_frees():
    controller = _controller(max_concurrency=1, queue_depth=4)
    entered = threading.Event()
    release = threading.Event()
    results = []

    def _holder():
        with controller.admit():
            entered.set()
            release.wait(5.0)

    def _waiter():
        with controller.admit(Deadline(5.0)):
            results.append("ran")

    holder = threading.Thread(target=_holder)
    holder.start()
    assert entered.wait(5.0)
    waiter = threading.Thread(target=_waiter)
    waiter.start()
    # The waiter is queued behind the held slot, not shed.
    deadline = Deadline(5.0)
    while controller.waiting == 0 and not deadline.expired():
        pass
    assert controller.waiting == 1
    release.set()
    waiter.join(5.0)
    holder.join(5.0)
    assert results == ["ran"]
    assert controller.executing == 0 and controller.waiting == 0


def test_snapshot_shape():
    controller = _controller(max_concurrency=3, queue_depth=7)
    with controller.admit():
        snap = controller.snapshot()
    assert snap == {
        "executing": 1,
        "waiting": 0,
        "max_concurrency": 3,
        "queue_depth": 7,
    }
