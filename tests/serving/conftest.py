"""Shared fixtures for the serving-layer tests.

Pool tests fork worker processes that warm-start from a snapshot store;
pre-training that store once per session keeps every pool boot cheap.
"""

from __future__ import annotations

import pytest

from repro.serving.warmup import pretrain_snapshot, sample_query_payloads


@pytest.fixture(scope="session")
def pool_snapshot_dir(tmp_path_factory):
    """A snapshot store holding one pre-trained generation."""
    directory = tmp_path_factory.mktemp("pool-snapshots")
    pretrain_snapshot(directory)
    return directory


@pytest.fixture(scope="session")
def query_payloads():
    """JSON-encoded box-query payloads for HTTP traffic."""
    return sample_query_payloads(16, seed=3)
