"""Deadline budgets: the primitive shared by admission and coalescing."""

from __future__ import annotations

import pytest

from repro.robustness import Deadline, DeadlineExceededError
from repro.robustness.errors import DataValidationError


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def test_unlimited_never_expires():
    deadline = Deadline(None)
    assert deadline.unlimited
    assert deadline.remaining() is None
    assert not deadline.expired()
    deadline.check()  # no-op


def test_remaining_tracks_clock():
    clock = FakeClock()
    deadline = Deadline(2.0, clock=clock)
    assert deadline.remaining() == pytest.approx(2.0)
    clock.now = 1.5
    assert deadline.remaining() == pytest.approx(0.5)
    assert not deadline.expired()
    clock.now = 2.5
    assert deadline.expired()
    assert deadline.remaining() == pytest.approx(-0.5)


def test_check_raises_with_overrun_detail():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    clock.now = 1.25
    with pytest.raises(DeadlineExceededError, match="estimate deadline exceeded"):
        deadline.check("estimate")


def test_after_ms_conversion():
    clock = FakeClock()
    deadline = Deadline.after_ms(250.0, clock=clock)
    assert deadline.remaining() == pytest.approx(0.25)
    assert Deadline.after_ms(None).unlimited


def test_wait_budget_clips_to_remaining():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    assert deadline.wait_budget(0.2) == pytest.approx(0.2)
    clock.now = 0.9
    assert deadline.wait_budget(0.2) == pytest.approx(0.1)
    clock.now = 2.0
    assert deadline.wait_budget(0.2) == 0.0
    assert Deadline(None).wait_budget(0.2) == pytest.approx(0.2)


def test_invalid_budgets_rejected():
    for bad in (-1.0, float("nan"), float("inf")):
        with pytest.raises(DataValidationError):
            Deadline(bad)
