"""Supervisor ops endpoint and fleet-wide metric aggregation over a
real pre-fork pool.

These tests exercise the full wire path the chaos harness relies on:
worker registries → heartbeat snapshots → FleetAggregator → ops HTTP
endpoint.  The equality assertions are exact — the kernel balances
requests across workers arbitrarily, but the *sum* over workers must
always equal the traffic generated.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.core import QuadHist
from repro.observability import (
    MetricsRegistry,
    default_registry,
    lint_exposition,
    parse_exposition,
)
from repro.server import REQUEST_ID_HEADER, EstimatorService
from repro.serving import ServingConfig, Supervisor

QUERIES_TOTAL = "repro_service_queries_total"
HITS_TOTAL = "repro_prediction_cache_hits_total"
MISSES_TOTAL = "repro_prediction_cache_misses_total"


def _post(base, path, payload, timeout=10.0, headers=None):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response, json.loads(response.read())


def _get_text(base, path, timeout=10.0):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return response.read().decode("utf-8")


def _wait_until(predicate, budget_s, interval=0.05):
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def ops_pool(pool_snapshot_dir):
    config = ServingConfig(
        workers=3,
        restart_backoff_s=0.05,
        stable_after_s=0.5,
        drain_timeout_s=15.0,
        deadline_ms=10_000.0,
        heartbeat_interval_s=0.1,
        ops_port=0,
    )

    def factory():
        return EstimatorService(
            lambda: QuadHist(tau=0.01), snapshot_dir=str(pool_snapshot_dir)
        )

    # Pollute the parent's process-global registry before forking: each
    # worker inherits it verbatim, and must reset it on boot or the
    # fleet aggregate counts this pre-fork history once per worker
    # (exactly what un-isolated earlier tests in a full pytest run do).
    default_registry().counter(
        "repro_service_queries_total",
        "Individual queries received via estimate/estimate_many",
    ).inc(100)

    supervisor = Supervisor(factory, config=config, registry=MetricsRegistry())
    host, port = supervisor.start()
    ops_host, ops_port = supervisor.ops_address
    try:
        yield supervisor, f"http://{host}:{port}", f"http://{ops_host}:{ops_port}"
    finally:
        if supervisor._sock is not None:
            supervisor.stop(drain=False)
        default_registry().reset()


class TestFleetAggregation:
    def test_aggregated_metrics_equal_generated_traffic(
        self, ops_pool, query_payloads
    ):
        supervisor, base, ops = ops_pool
        assert _wait_until(lambda: supervisor.status()["alive"] == 3, 20.0)

        singles, batches, batch_size = 18, 4, 5
        for i in range(singles):
            _post(base, "/v1/estimate", {"query": query_payloads[i % 16]})
        for i in range(batches):
            batch = [query_payloads[(i + j) % 16] for j in range(batch_size)]
            _post(base, "/v1/predict", {"queries": batch})
        expected = singles + batches * batch_size

        # However the kernel spread the requests, the fleet sum must
        # converge on exactly the traffic generated (next heartbeats).
        assert _wait_until(
            lambda: supervisor.aggregator.total(QUERIES_TOTAL) == expected, 10.0
        ), supervisor.aggregator.total(QUERIES_TOTAL)
        hits = supervisor.aggregator.total(HITS_TOTAL)
        misses = supervisor.aggregator.total(MISSES_TOTAL)
        assert hits + misses == expected

        # The ops endpoint serves the same numbers over HTTP, lint-clean.
        text = _get_text(ops, "/metrics")
        assert lint_exposition(text) == []
        families, _ = parse_exposition(text)
        scraped = sum(
            value for _, _, value, _ in families[QUERIES_TOTAL]["samples"]
        )
        assert scraped == expected
        # Supervisor's own registry rides along under its own names.
        assert families["repro_workers_alive"]["samples"][0][2] == 3.0

        # Per-request stage decomposition covers every gated request.
        stage = families["repro_request_stage_seconds"]
        counts = {
            labels["stage"]: value
            for name, labels, value, _ in stage["samples"]
            if name.endswith("_count")
        }
        assert counts["total"] == singles + batches
        assert counts["queue"] == singles + batches
        assert counts["kernel"] >= 1

    def test_totals_monotone_across_sigkill_respawn(self, ops_pool, query_payloads):
        supervisor, base, _ = ops_pool
        assert _wait_until(lambda: supervisor.status()["alive"] == 3, 20.0)
        for i in range(10):
            _post(base, "/v1/estimate", {"query": query_payloads[i % 16]})
        assert _wait_until(
            lambda: supervisor.aggregator.total(QUERIES_TOTAL) == 10, 10.0
        )

        victim = next(slot for slot in supervisor._slots if slot.alive)
        os.kill(victim.process.pid, signal.SIGKILL)
        assert _wait_until(
            lambda: victim.restarts >= 1 and supervisor.status()["alive"] == 3, 30.0
        )
        # The respawned incarnation reports zeroed counters; the fold
        # must keep the dead incarnation's contribution.
        assert supervisor.aggregator.total(QUERIES_TOTAL) == 10

        for i in range(5):
            _post(base, "/v1/estimate", {"query": query_payloads[i % 16]})
        assert _wait_until(
            lambda: supervisor.aggregator.total(QUERIES_TOTAL) == 15, 10.0
        ), supervisor.aggregator.total(QUERIES_TOTAL)

    def test_drain_folds_final_snapshots(self, ops_pool, query_payloads):
        supervisor, base, _ = ops_pool
        assert _wait_until(lambda: supervisor.status()["alive"] == 3, 20.0)
        for i in range(8):
            _post(base, "/v1/estimate", {"query": query_payloads[i % 16]})
        report = supervisor.stop(drain=True)
        assert report["killed"] == []
        # The "stopped" heartbeat each worker sends on drain carries its
        # final registry snapshot; nothing served may be lost.
        assert supervisor.aggregator.total(QUERIES_TOTAL) == 8


class TestOpsEndpoint:
    def test_workers_lists_slots_and_incarnations(self, ops_pool):
        supervisor, _, ops = ops_pool
        assert _wait_until(lambda: supervisor.status()["alive"] == 3, 20.0)
        assert _wait_until(
            lambda: all(s.last_payload is not None for s in supervisor._slots), 10.0
        )
        body = json.loads(_get_text(ops, "/workers"))
        assert {slot["index"] for slot in body["slots"]} == {0, 1, 2}
        assert all(slot["incarnation"] == 1 for slot in body["slots"])
        assert set(body["aggregator"]) == {"0", "1", "2"}
        assert all(v["has_snapshot"] for v in body["aggregator"].values())

    def test_health_reports_fleet_status(self, ops_pool):
        supervisor, _, ops = ops_pool
        assert _wait_until(lambda: supervisor.status()["alive"] == 3, 20.0)
        body = json.loads(_get_text(ops, "/health"))
        assert body["status"] == "ok"
        assert body["alive"] == 3 and body["workers"] == 3
        assert body["reasons"] == []
        assert set(body["per_worker"]) == {"0", "1", "2"}

    def test_unknown_path_is_404_with_endpoint_list(self, ops_pool):
        _, _, ops = ops_pool
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_text(ops, "/nope")
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert "/metrics" in body["endpoints"]

    def test_ops_address_requires_running_pool(self, pool_snapshot_dir):
        def factory():
            return EstimatorService(
                lambda: QuadHist(tau=0.01), snapshot_dir=str(pool_snapshot_dir)
            )

        supervisor = Supervisor(
            factory,
            config=ServingConfig(workers=2, ops_port=0),
            registry=MetricsRegistry(),
        )
        from repro.serving.supervisor import WorkerSupervisionError

        with pytest.raises(WorkerSupervisionError):
            supervisor.ops_address


class TestPoolRequestIds:
    def test_every_response_carries_a_request_id(self, ops_pool, query_payloads):
        supervisor, base, _ = ops_pool
        assert _wait_until(lambda: supervisor.status()["alive"] == 3, 20.0)
        response, _ = _post(base, "/v1/estimate", {"query": query_payloads[0]})
        generated = response.headers.get(REQUEST_ID_HEADER)
        assert generated and len(generated) == 16

        response, _ = _post(
            base,
            "/v1/estimate",
            {"query": query_payloads[1]},
            headers={REQUEST_ID_HEADER: "client-chosen-42"},
        )
        assert response.headers.get(REQUEST_ID_HEADER) == "client-chosen-42"
