"""ServingConfig: validation, coalesce switch, round-tripping."""

from __future__ import annotations

import pytest

from repro.serving import ServingConfig


def test_defaults_are_valid_and_coalescing():
    config = ServingConfig()
    assert config.workers == 2
    assert config.coalesce is True
    assert config.to_dict()["queue_depth"] == 32


def test_flush_ms_zero_disables_coalescing():
    assert ServingConfig(flush_ms=0.0).coalesce is False


def test_rejects_bad_values():
    with pytest.raises(ValueError, match="workers"):
        ServingConfig(workers=0)
    with pytest.raises(ValueError, match="queue_depth"):
        ServingConfig(queue_depth=-1)
    with pytest.raises(ValueError, match="deadline_ms"):
        ServingConfig(deadline_ms=0.0)
    with pytest.raises(ValueError, match="heartbeat_timeout_s"):
        ServingConfig(heartbeat_interval_s=1.0, heartbeat_timeout_s=0.5)
    with pytest.raises(ValueError, match="restart_storm_threshold"):
        ServingConfig(restart_storm_threshold=0)


def test_unlimited_deadline_allowed():
    assert ServingConfig(deadline_ms=None).deadline_ms is None


def test_frozen():
    config = ServingConfig()
    with pytest.raises(AttributeError):
        config.workers = 4
