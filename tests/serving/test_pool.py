"""Pool integration: supervision, restarts, drain, rolling reloads.

These tests fork real worker processes over a shared socket.  Budgets
are generous (single-core CI boxes) but every wait polls, so the happy
path stays fast.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.core import QuadHist
from repro.observability import MetricsRegistry
from repro.server import DEADLINE_HEADER, EstimatorService
from repro.serving import ServingConfig, Supervisor, pretrain_snapshot
from repro.serving.chaos import run_kill_workers_scenario
from repro.serving.worker import GenerationReloader


def _factory_for(snapshot_dir):
    def factory():
        return EstimatorService(
            lambda: QuadHist(tau=0.01), snapshot_dir=str(snapshot_dir)
        )

    return factory


def _post(base, path, payload, timeout=10.0, headers=None):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(base, path, timeout=10.0):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _wait_until(predicate, budget_s, interval=0.05):
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def pool(pool_snapshot_dir):
    config = ServingConfig(
        workers=2,
        restart_backoff_s=0.05,
        stable_after_s=0.5,
        drain_timeout_s=15.0,
        reload_check_s=0.2,
        deadline_ms=10_000.0,
    )
    supervisor = Supervisor(
        _factory_for(pool_snapshot_dir), config=config, registry=MetricsRegistry()
    )
    host, port = supervisor.start()
    yield supervisor, f"http://{host}:{port}"
    if supervisor._sock is not None:
        supervisor.stop(drain=False)


class TestSupervisedPool:
    def test_boot_serve_kill_recover_drain(self, pool, query_payloads):
        supervisor, base = pool
        assert _wait_until(lambda: supervisor.status()["alive"] == 2, 20.0)

        # Warm-started workers serve immediately (no cold fit).
        status, body = _post(base, "/v1/estimate", {"query": query_payloads[0]})
        assert status == 200
        assert 0.0 <= body["selectivity"] <= 1.0
        status, health = _get(base, "/health")
        assert status == 200 and health["trained"] is True

        # SIGKILL one worker; the supervisor respawns it warm.
        victim = next(slot for slot in supervisor._slots if slot.alive)
        os.kill(victim.process.pid, signal.SIGKILL)
        assert _wait_until(
            lambda: victim.restarts >= 1 and supervisor.status()["alive"] == 2,
            30.0,
        )
        status, _ = _post(base, "/v1/estimate", {"query": query_payloads[1]})
        assert status == 200

        # Graceful drain: every worker exits 0, nothing is SIGKILLed.
        report = supervisor.stop(drain=True)
        assert report["killed"] == []
        assert sorted(report["drained"]) == [0, 1]

    def test_deadline_header_yields_504(self, pool, query_payloads):
        supervisor, base = pool
        assert _wait_until(lambda: supervisor.status()["alive"] == 2, 20.0)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                base,
                "/v1/estimate",
                {"query": query_payloads[0]},
                headers={DEADLINE_HEADER: "0"},
            )
        assert excinfo.value.code == 504
        body = json.loads(excinfo.value.read())
        assert body["type"] == "DeadlineExceededError"

    def test_status_reports_admission_and_workers(self, pool):
        supervisor, base = pool
        assert _wait_until(lambda: supervisor.status()["alive"] == 2, 20.0)
        # Heartbeats carry health + admission state into the supervisor.
        assert _wait_until(
            lambda: all(
                slot.last_payload is not None for slot in supervisor._slots
            ),
            10.0,
        )
        payload = supervisor._slots[0].last_payload
        assert payload["status"] == "ready"
        assert payload["health"]["trained"] is True
        assert payload["admission"]["max_concurrency"] == 8
        status = supervisor.status()
        assert status["workers"] == 2
        assert {slot["index"] for slot in status["slots"]} == {0, 1}


class TestRollingReload:
    def test_reloader_installs_newer_store_generation(self, tmp_path):
        pretrain_snapshot(tmp_path, generation=1)
        service = EstimatorService(
            lambda: QuadHist(tau=0.01),
            snapshot_dir=tmp_path,
            registry=MetricsRegistry(),
        )
        assert service.store_generation == 1
        reloader = GenerationReloader(service, interval=60.0)
        assert reloader.poll_once() is False  # already newest

        pretrain_snapshot(tmp_path, generation=4, seed=11)
        assert reloader.poll_once() is True
        assert service.store_generation == 4
        assert reloader.reloads == 1
        assert reloader.delta_reloads == 0  # a full-fit snapshot, not a delta
        assert service.health()["status"] == "ok"
        assert reloader.poll_once() is False  # idempotent once caught up

    def test_reloader_picks_up_delta_snapshots(self, tmp_path):
        """A sibling's incremental update() writes a delta snapshot; the
        rolling reloader installs it like any generation and counts it."""
        import numpy as np

        from repro.data import generate_workload, label_queries, power_like

        dataset = power_like(rows=6_000).project([0, 3])
        gen = np.random.default_rng(21)
        queries = generate_workload(80, 2, gen, dataset=dataset)
        labels = label_queries(dataset, queries)

        writer = EstimatorService(
            lambda: QuadHist(tau=0.02),
            min_feedback=20,
            snapshot_dir=tmp_path,
            registry=MetricsRegistry(),
        )
        for query, label in zip(queries[:50], labels[:50]):
            writer.feedback(query, float(label))
        writer.retrain()  # gen 1: full fit

        follower = EstimatorService(
            lambda: QuadHist(tau=0.02),
            snapshot_dir=tmp_path,
            registry=MetricsRegistry(),
        )
        assert follower.store_generation == 1
        reloader = GenerationReloader(follower, interval=60.0)
        assert reloader.poll_once() is False

        for query, label in zip(queries[50:70], labels[50:70]):
            writer.feedback(query, float(label))
        result = writer.update()  # gen 2: delta snapshot
        assert result["incremental"] is True

        assert reloader.poll_once() is True
        assert follower.store_generation == 2
        assert reloader.reloads == 1
        assert reloader.delta_reloads == 1

        for query, label in zip(queries[70:], labels[70:]):
            writer.feedback(query, float(label))
        writer.retrain()  # gen 3: full fit again
        assert reloader.poll_once() is True
        assert reloader.reloads == 2
        assert reloader.delta_reloads == 1  # only the delta counted


@pytest.mark.slow
class TestChaos:
    def test_scaled_down_kill_scenario_passes(self, pool_snapshot_dir):
        report = run_kill_workers_scenario(
            workers=2,
            duration_s=4.0,
            kill_every_s=1.5,
            clients=3,
            recovery_budget_s=30.0,
            drain_budget_s=20.0,
            snapshot_dir=str(pool_snapshot_dir),
        )
        assert report["kills"] >= 1
        assert report["http_5xx"] == 0, report["responses"]
        assert report["recovered"] is True
        assert report["probe_ok"] == 20
        assert report["passed"] is True, report
