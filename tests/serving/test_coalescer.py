"""Coalescer: concurrent single queries fold into one ``estimate_many``.

The concurrency-correctness contract under test: K threads submitting
overlapping single queries inside one flush window each receive exactly
the answer ``estimate_many`` gives for their query, at least one actual
coalesced flush happens, and the service's prediction-cache accounting
stays exact (hits + misses == queries submitted).
"""

from __future__ import annotations

import threading

import pytest

from repro.core import QuadHist
from repro.observability import MetricsRegistry
from repro.robustness import Deadline, DeadlineExceededError
from repro.serving import PredictCoalescer
from repro.server import EstimatorService


@pytest.fixture
def trained_service(power2d_box_workload):
    train_q, train_s, _, _ = power2d_box_workload
    service = EstimatorService(
        lambda: QuadHist(tau=0.02), min_feedback=20, registry=MetricsRegistry()
    )
    for query, label in zip(train_q[:50], train_s[:50]):
        service.feedback(query, label)
    service.retrain()
    return service


def test_k_threads_overlapping_queries_get_exact_answers(
    trained_service, power2d_box_workload
):
    _, _, test_q, _ = power2d_box_workload
    k = 8
    # Overlapping on purpose: 8 threads share 4 distinct queries.
    queries = [test_q[i % 4] for i in range(k)]
    expected = trained_service.estimate_many(queries)
    hits_before = trained_service.status()["prediction_cache"]["hits"]
    misses_before = trained_service.status()["prediction_cache"]["misses"]

    registry = MetricsRegistry()
    coalescer = PredictCoalescer(
        trained_service.estimate_many,
        flush_ms=100.0,  # generous window so every thread lands in one batch
        worker="t",
        registry=registry,
    )
    barrier = threading.Barrier(k)
    results: list[float | None] = [None] * k
    errors: list[BaseException] = []

    def _submit(index: int) -> None:
        try:
            barrier.wait(5.0)
            results[index] = coalescer.submit(queries[index], Deadline(10.0))
        except BaseException as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=_submit, args=(i,)) for i in range(k)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(15.0)

    assert not errors
    assert results == pytest.approx(list(expected))

    batches = registry.counter(
        "repro_coalesced_batches_total",
        "Coalesced predict_many flushes executed",
        labels=("worker",),
    ).value(worker="t")
    coalesced = registry.counter(
        "repro_coalesced_queries_total",
        "Queries answered through the coalescer",
        labels=("worker",),
    ).value(worker="t")
    assert batches >= 1
    assert batches < k  # folding happened: fewer flushes than callers
    assert coalesced == k

    # Cache accounting is untouched by coalescing: every submitted query
    # still counts exactly one hit or one miss.
    cache = trained_service.status()["prediction_cache"]
    new_hits = cache["hits"] - hits_before
    new_misses = cache["misses"] - misses_before
    assert new_hits + new_misses == k


def test_results_are_positionally_sliced_per_caller(trained_service, power2d_box_workload):
    _, _, test_q, _ = power2d_box_workload
    coalescer = PredictCoalescer(
        trained_service.estimate_many, flush_ms=50.0, registry=MetricsRegistry()
    )
    expected = trained_service.estimate_many(test_q[:6])
    outcome: dict[str, list[float]] = {}
    barrier = threading.Barrier(2)

    def _batch_caller():
        barrier.wait(5.0)
        outcome["batch"] = coalescer.submit_many(test_q[:4], Deadline(10.0))

    def _single_caller():
        barrier.wait(5.0)
        outcome["single"] = coalescer.submit_many(test_q[4:6], Deadline(10.0))

    threads = [
        threading.Thread(target=_batch_caller),
        threading.Thread(target=_single_caller),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(15.0)
    assert outcome["batch"] == pytest.approx(list(expected[:4]))
    assert outcome["single"] == pytest.approx(list(expected[4:6]))


def test_empty_submission_returns_empty():
    coalescer = PredictCoalescer(lambda qs: [], registry=MetricsRegistry())
    assert coalescer.submit_many([]) == []


def test_max_batch_flushes_immediately(trained_service, power2d_box_workload):
    _, _, test_q, _ = power2d_box_workload
    coalescer = PredictCoalescer(
        trained_service.estimate_many,
        flush_ms=10_000.0,  # would hang the test if max_batch didn't cut it
        max_batch=3,
        registry=MetricsRegistry(),
    )
    expected = trained_service.estimate_many(test_q[:3])
    got = coalescer.submit_many(test_q[:3], Deadline(10.0))
    assert got == pytest.approx(list(expected))


def test_backend_error_propagates_to_every_caller():
    boom = RuntimeError("backend down")

    def _failing(queries):
        raise boom

    coalescer = PredictCoalescer(_failing, flush_ms=50.0, registry=MetricsRegistry())
    failures = []
    barrier = threading.Barrier(3)

    def _submit():
        barrier.wait(5.0)
        try:
            coalescer.submit({"x": 1}, Deadline(10.0))
        except RuntimeError as exc:
            failures.append(exc)

    threads = [threading.Thread(target=_submit) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(15.0)
    assert len(failures) == 3
    assert all(exc is boom for exc in failures)


def test_follower_deadline_expires_during_flush_window():
    coalescer = PredictCoalescer(
        lambda queries: [0.5] * len(queries),
        flush_ms=1_000.0,  # leader holds the window far past the follower's budget
        registry=MetricsRegistry(),
    )
    leader_result: list[float] = []

    def _leader():
        leader_result.append(coalescer.submit({"q": 0}, Deadline(10.0)))

    leader = threading.Thread(target=_leader)
    leader.start()
    # Wait for the leader to open a batch, then join it with a budget far
    # smaller than the remaining flush window.
    ready = Deadline(5.0)
    while coalescer._pending is None and not ready.expired():
        pass
    assert coalescer._pending is not None
    with pytest.raises(DeadlineExceededError, match="coalesced flush"):
        coalescer.submit({"q": 1}, Deadline(0.05))
    leader.join(15.0)
    # The follower's expiry never poisons the batch: the leader still
    # flushed and got its answer.
    assert leader_result == [0.5]
