"""Learning curves and empirical sample complexity."""

import pytest

from repro.core import QuadHist
from repro.eval.learning_curve import empirical_sample_complexity, learning_curve


def _factory(n):
    return QuadHist(tau=0.005, max_leaves=4 * n)


class TestLearningCurve:
    def test_curve_shape(self, power2d, rng):
        curve = learning_curve(_factory, power2d, rng, train_sizes=(25, 100))
        assert [point["train"] for point in curve] == [25, 100]
        assert all(0.0 <= point["rms"] <= 1.0 for point in curve)

    def test_error_decreases_along_curve(self, power2d, rng):
        curve = learning_curve(_factory, power2d, rng, train_sizes=(25, 200))
        assert curve[-1]["rms"] <= curve[0]["rms"]

    def test_repeats_report_spread(self, power2d, rng):
        curve = learning_curve(
            _factory, power2d, rng, train_sizes=(50,), repeats=3
        )
        assert curve[0]["rms_std"] >= 0.0

    def test_validation(self, power2d, rng):
        with pytest.raises(ValueError):
            learning_curve(_factory, power2d, rng, train_sizes=())
        with pytest.raises(ValueError):
            learning_curve(_factory, power2d, rng, repeats=0)


class TestSampleComplexity:
    def test_finds_modest_target(self, power2d, rng):
        n = empirical_sample_complexity(
            _factory, power2d, rng, target_rms=0.05, start=25, max_size=800
        )
        assert n is not None and 25 <= n <= 800

    def test_harder_target_needs_more_samples(self, power2d, rng):
        easy = empirical_sample_complexity(
            _factory, power2d, rng, target_rms=0.1, start=25, max_size=1600
        )
        hard = empirical_sample_complexity(
            _factory, power2d, rng, target_rms=0.01, start=25, max_size=1600
        )
        assert easy is not None
        if hard is not None:
            assert hard >= easy

    def test_unreachable_target_returns_none(self, power2d, rng):
        n = empirical_sample_complexity(
            _factory, power2d, rng, target_rms=1e-9, start=25, max_size=50
        )
        assert n is None

    def test_validation(self, power2d, rng):
        with pytest.raises(ValueError):
            empirical_sample_complexity(_factory, power2d, rng, target_rms=0.0)
        with pytest.raises(ValueError):
            empirical_sample_complexity(
                _factory, power2d, rng, target_rms=0.1, start=100, max_size=50
            )
