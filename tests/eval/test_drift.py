"""Workload-drift detection (CUSUM on prediction errors)."""

import numpy as np
import pytest

from repro.core import QuadHist
from repro.data import label_queries, power_like, shifted_gaussian_workload
from repro.eval.drift import DriftDetector


class TestDriftDetectorUnit:
    @pytest.fixture
    def detector(self, rng):
        # Baseline drawn from the same error process the in-control
        # serving stream will produce (squared N(0, 0.02) deviations).
        baseline = rng.normal(0, 0.02, 300) ** 2
        return DriftDetector(baseline)  # calibrated defaults

    def test_no_alarm_under_baseline_conditions(self, detector, rng):
        fired = False
        for _ in range(200):
            truth = rng.random()
            estimate = truth + rng.normal(0, 0.02)
            fired = detector.update(estimate, truth) or fired
        assert not fired

    def test_alarm_on_sustained_large_errors(self, detector, rng):
        fired = False
        for _ in range(50):
            fired = detector.update(0.9, 0.1) or fired
        assert fired

    def test_statistic_resets(self, detector):
        for _ in range(50):
            detector.update(0.9, 0.1)
        assert detector.statistic > 0
        detector.reset()
        assert detector.statistic == 0.0
        assert detector.observations == 0

    def test_statistic_never_negative(self, detector, rng):
        for _ in range(100):
            detector.update(0.5, 0.5)  # perfect predictions
            assert detector.statistic >= 0.0

    def test_update_many(self, detector):
        fired = detector.update_many(np.full(60, 0.9), np.full(60, 0.1))
        assert fired

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            DriftDetector(np.array([0.1]))
        with pytest.raises(ValueError):
            DriftDetector(np.array([0.1, np.nan]))
        with pytest.raises(ValueError):
            DriftDetector(np.array([0.1, 0.2]), slack=-1)
        with pytest.raises(ValueError):
            DriftDetector(np.array([0.1, 0.2]), threshold=0)
        detector = DriftDetector(np.array([0.001, 0.002]))
        with pytest.raises(ValueError):
            detector.update_many(np.ones(3), np.ones(4))


class TestDriftEndToEnd:
    def test_detects_workload_shift(self):
        """The Section 4.3 scenario, online: train on mean-0.7 Gaussians
        (queries over the sparse region), serve mean-0.7 (no alarm), then
        mean-0.2 — the dense data region the model never saw (alarm)."""
        gen = np.random.default_rng(8)
        data = power_like(rows=10_000).project([0, 3])

        train = shifted_gaussian_workload(200, 2, 0.7, gen, dataset=data)
        train_labels = label_queries(data, train)
        model = QuadHist(tau=0.005).fit(train, train_labels)

        holdout = shifted_gaussian_workload(80, 2, 0.7, gen, dataset=data)
        holdout_labels = label_queries(data, holdout)
        baseline = (model.predict_many(holdout) - holdout_labels) ** 2
        detector = DriftDetector(baseline)

        same = shifted_gaussian_workload(120, 2, 0.7, gen, dataset=data)
        fired_same = detector.update_many(
            model.predict_many(same), label_queries(data, same)
        )
        assert not fired_same

        shifted = shifted_gaussian_workload(120, 2, 0.2, gen, dataset=data)
        fired_shifted = detector.update_many(
            model.predict_many(shifted), label_queries(data, shifted)
        )
        assert fired_shifted
