"""Experiment harness."""

import numpy as np

from repro.baselines import MeanEstimator
from repro.core import QuadHist
from repro.data import WorkloadSpec
from repro.eval import evaluate_estimator, make_workload, train_test_workload


class TestMakeWorkload:
    def test_labels_match_queries(self, power2d, rng):
        wl = make_workload(power2d, 30, rng)
        assert len(wl) == 30
        assert wl.selectivities.shape == (30,)
        assert np.all(wl.selectivities >= 0) and np.all(wl.selectivities <= 1)

    def test_spec_is_respected(self, power2d, rng):
        from repro.geometry import Ball

        wl = make_workload(power2d, 10, rng, spec=WorkloadSpec("ball", "random"))
        assert all(isinstance(q, Ball) for q in wl.queries)

    def test_nonempty_filter(self, power2d, rng):
        wl = make_workload(power2d, 50, rng, spec=WorkloadSpec("box", "random"))
        filtered = wl.nonempty()
        assert all(s > 0 for s in filtered.selectivities)
        assert len(filtered) <= len(wl)


class TestTrainTest:
    def test_sizes(self, power2d, rng):
        train, test = train_test_workload(power2d, 40, 20, rng)
        assert len(train) == 40
        assert len(test) == 20

    def test_independent_workloads(self, power2d, rng):
        train, test = train_test_workload(power2d, 10, 10, rng)
        assert train.queries[0] != test.queries[0]


class TestEvaluate:
    def test_result_fields(self, power2d, rng):
        train, test = train_test_workload(power2d, 40, 20, rng)
        result = evaluate_estimator("quadhist", QuadHist(tau=0.05), train, test)
        assert result.name == "quadhist"
        assert result.train_size == 40
        assert result.model_size >= 1
        assert result.fit_seconds >= 0
        assert 0 <= result.rms <= 1
        assert set(result.q_quantiles) == {0.5, 0.95, 0.99, 1.0}

    def test_row_is_flat(self, power2d, rng):
        train, test = train_test_workload(power2d, 20, 10, rng)
        result = evaluate_estimator("mean", MeanEstimator(), train, test)
        row = result.row()
        assert row["method"] == "mean"
        assert "q99" in row and "MAX" in row

    def test_custom_q_floor(self, power2d, rng):
        train, test = train_test_workload(power2d, 20, 10, rng)
        result = evaluate_estimator(
            "mean", MeanEstimator(), train, test, q_floor=0.01
        )
        assert result.q_quantiles[1.0] <= 100.0
