"""Selectivity-stratified error analysis."""

import pytest

from repro.baselines import MeanEstimator
from repro.core import QuadHist
from repro.eval import stratified_error_report


class TestStratifiedReport:
    @pytest.fixture
    def fitted(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        model = QuadHist(tau=0.01).fit(train_q, train_s)
        return model, test_q, test_s

    def test_strata_cover_all_queries(self, fitted):
        model, test_q, test_s = fitted
        reports = stratified_error_report(model, test_q, test_s)
        assert sum(r.queries for r in reports) == len(test_q)

    def test_empty_strata_omitted(self, fitted):
        model, test_q, test_s = fitted
        reports = stratified_error_report(
            model, test_q, test_s, strata=(0.0, 1e-9, 1e-8, 1.0)
        )
        # The micro-strata are almost surely empty for this workload.
        assert all(r.queries > 0 for r in reports)

    def test_row_shape(self, fitted):
        model, test_q, test_s = fitted
        reports = stratified_error_report(model, test_q, test_s)
        row = reports[0].row()
        assert set(row) == {"stratum", "queries", "rms", "mean_q", "max_q"}

    def test_qerror_concentrates_in_selective_strata(self, power2d_box_workload):
        """The blind mean-predictor's Q-error blows up exactly on the most
        selective stratum — the pattern stratification exists to reveal."""
        train_q, train_s, test_q, test_s = power2d_box_workload
        model = MeanEstimator().fit(train_q, train_s)
        reports = stratified_error_report(model, test_q, test_s)
        assert len(reports) >= 2
        most_selective = reports[0]
        least_selective = reports[-1]
        assert most_selective.mean_q_error > least_selective.mean_q_error

    def test_validation(self, fitted):
        model, test_q, test_s = fitted
        with pytest.raises(ValueError):
            stratified_error_report(model, test_q, test_s[:-1])
        with pytest.raises(ValueError):
            stratified_error_report(model, test_q, test_s, strata=(0.5,))
        with pytest.raises(ValueError):
            stratified_error_report(model, test_q, test_s, strata=(0.5, 0.5))

    def test_boundary_values_included(self, fitted):
        """Selectivity exactly 1.0 lands in the final (closed) stratum."""
        model, test_q, test_s = fitted
        test_s = test_s.copy()
        test_s[0] = 1.0
        reports = stratified_error_report(model, test_q, test_s)
        assert sum(r.queries for r in reports) == len(test_q)
