"""Error measures (Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import linf_error, q_error_quantiles, q_errors, rms_error

unit_arrays = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=40
)


class TestRMS:
    def test_known_value(self):
        assert rms_error([0.5, 0.0], [0.0, 0.0]) == pytest.approx(np.sqrt(0.125))

    def test_zero_on_perfect(self):
        assert rms_error([0.1, 0.9], [0.1, 0.9]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rms_error([0.1], [0.1, 0.2])

    def test_empty(self):
        with pytest.raises(ValueError):
            rms_error([], [])


class TestLinf:
    def test_known_value(self):
        assert linf_error([0.5, 0.2], [0.1, 0.2]) == pytest.approx(0.4)

    @settings(max_examples=40, deadline=None)
    @given(unit_arrays, unit_arrays)
    def test_linf_dominates_rms(self, a, b):
        n = min(len(a), len(b))
        assert linf_error(a[:n], b[:n]) >= rms_error(a[:n], b[:n]) - 1e-12


class TestQError:
    def test_exact_prediction_is_one(self):
        np.testing.assert_allclose(q_errors([0.5], [0.5]), [1.0])

    def test_symmetric(self):
        np.testing.assert_allclose(q_errors([0.1], [0.2]), q_errors([0.2], [0.1]))

    def test_ratio(self):
        np.testing.assert_allclose(q_errors([0.1], [0.4]), [4.0])

    def test_floor_prevents_division_by_zero(self):
        errors = q_errors([0.0], [0.5], floor=0.001)
        assert errors[0] == pytest.approx(500.0)

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            q_errors([0.1], [0.1], floor=0.0)

    @settings(max_examples=40, deadline=None)
    @given(unit_arrays, unit_arrays)
    def test_q_errors_at_least_one(self, a, b):
        n = min(len(a), len(b))
        assert np.all(q_errors(a[:n], b[:n]) >= 1.0)

    def test_quantiles_default_keys(self):
        est = np.linspace(0.01, 0.99, 50)
        tru = est * 1.1
        quantiles = q_error_quantiles(est, np.clip(tru, 0, 1))
        assert set(quantiles) == {0.5, 0.95, 0.99, 1.0}

    def test_quantiles_monotone(self):
        gen = np.random.default_rng(0)
        est = gen.random(100)
        tru = gen.random(100)
        quantiles = q_error_quantiles(est, tru)
        assert quantiles[0.5] <= quantiles[0.95] <= quantiles[0.99] <= quantiles[1.0]

    def test_max_quantile_is_max(self):
        est = np.array([0.1, 0.2, 0.9])
        tru = np.array([0.1, 0.4, 0.3])
        quantiles = q_error_quantiles(est, tru)
        assert quantiles[1.0] == pytest.approx(3.0)
