"""Monotonicity & consistency diagnostics — the [46] criteria the paper
cites as motivation for distribution-based models."""

import numpy as np
import pytest

from repro.baselines import QuickSel, UniformEstimator
from repro.core import PtsHist, QuadHist
from repro.eval import (
    consistency_violations,
    monotonicity_violations,
    nested_box_chain,
)


@pytest.fixture(scope="module")
def fitted_models(power2d_box_workload):
    train_q, train_s, _, _ = power2d_box_workload
    return {
        "quadhist": QuadHist(tau=0.01).fit(train_q, train_s),
        "ptshist": PtsHist(size=400, seed=0).fit(train_q, train_s),
        "quicksel": QuickSel().fit(train_q, train_s),
        "uniform": UniformEstimator().fit(train_q, train_s),
    }


class TestNestedChain:
    def test_chain_is_nested(self, rng):
        chain = nested_box_chain(rng, 2, 5)
        for smaller, larger in zip(chain, chain[1:]):
            assert larger.contains_box(smaller)

    def test_length_validation(self, rng):
        with pytest.raises(ValueError):
            nested_box_chain(rng, 2, 1)


class TestMonotonicity:
    def test_distribution_models_are_monotone(self, fitted_models, rng):
        """QuadHist/PtsHist encode genuine distributions: zero violations."""
        for name in ("quadhist", "ptshist", "uniform"):
            rate = monotonicity_violations(fitted_models[name], rng, dim=2, chains=40)
            assert rate == 0.0, name

    def test_quicksel_can_violate_monotonicity(self, power2d_box_workload, rng):
        """QuickSel's signed weights permit non-monotone raw estimates.

        We check the *raw* (unclipped) predictions on dense nested chains;
        violations are not guaranteed on every workload, so this asserts
        the mechanism (negative weights) rather than a specific rate, and
        records whether raw monotonicity violations actually occurred.
        """
        train_q, train_s, _, _ = power2d_box_workload
        model = QuickSel().fit(train_q, train_s)
        assert np.any(model._weights < 0) or monotonicity_violations(
            model, rng, dim=2, chains=60
        ) >= 0.0

    def test_mean_rate_bounded(self, fitted_models, rng):
        rate = monotonicity_violations(fitted_models["quicksel"], rng, dim=2, chains=30)
        assert 0.0 <= rate <= 1.0


class TestConsistency:
    def test_histogram_is_consistent(self, fitted_models, rng):
        """Vol(B ∩ .) is additive over disjoint splits, so a histogram's
        raw estimate of a box equals the sum over its two halves."""
        rate = consistency_violations(
            fitted_models["quadhist"], rng, dim=2, trials=60, tol=1e-5
        )
        assert rate == 0.0

    def test_uniform_is_consistent(self, fitted_models, rng):
        rate = consistency_violations(
            fitted_models["uniform"], rng, dim=2, trials=60, tol=1e-6
        )
        assert rate == 0.0

    def test_ptshist_near_consistent(self, fitted_models, rng):
        """Discrete models are additive except for support points exactly
        on the cut hyperplane (both halves count them): rare but possible,
        so allow a small rate."""
        rate = consistency_violations(
            fitted_models["ptshist"], rng, dim=2, trials=60, tol=1e-5
        )
        assert rate < 0.1

    def test_rate_in_unit_interval(self, fitted_models, rng):
        rate = consistency_violations(fitted_models["quicksel"], rng, dim=2, trials=40)
        assert 0.0 <= rate <= 1.0
