"""Text reporting helpers."""

from repro.eval import format_series, format_table


class TestFormatTable:
    def test_renders_columns(self):
        rows = [{"method": "quadhist", "rms": 0.01}, {"method": "ptshist", "rms": 0.02}]
        text = format_table(rows, title="Accuracy")
        assert "Accuracy" in text
        assert "quadhist" in text and "ptshist" in text
        assert "0.01" in text

    def test_empty(self):
        assert "(empty)" in format_table([])

    def test_missing_cells_blank(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows)
        assert "3" in text

    def test_floats_formatted(self):
        text = format_table([{"x": 0.123456789}])
        assert "0.12346" in text


class TestFormatSeries:
    def test_renders_x_and_series(self):
        text = format_series(
            "train", [50, 100], {"quadhist": [0.05, 0.02], "ptshist": [0.06, 0.03]}
        )
        assert "train" in text
        assert "50" in text and "100" in text
        assert "0.02" in text

    def test_ragged_series_tolerated(self):
        text = format_series("n", [1, 2, 3], {"a": [0.1]})
        assert "3" in text
