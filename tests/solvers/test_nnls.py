"""Own Lawson–Hanson NNLS vs scipy's reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import nnls as scipy_nnls

from repro.solvers import nnls


class TestNNLS:
    def test_matches_unconstrained_when_solution_positive(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        b = np.array([1.0, 2.0, 3.0])
        x = nnls(a, b)
        expected, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(x, expected, atol=1e-9)

    def test_clamps_negative_component(self):
        a = np.eye(2)
        b = np.array([1.0, -1.0])
        x = nnls(a, b)
        np.testing.assert_allclose(x, [1.0, 0.0], atol=1e-12)

    def test_zero_rhs(self):
        a = np.random.default_rng(0).random((5, 3))
        np.testing.assert_allclose(nnls(a, np.zeros(5)), np.zeros(3), atol=1e-12)

    def test_output_nonnegative(self, rng):
        for _ in range(20):
            a = rng.normal(size=(8, 5))
            b = rng.normal(size=8)
            assert np.all(nnls(a, b) >= 0.0)

    def test_matches_scipy_objective(self, rng):
        for _ in range(30):
            m = int(rng.integers(3, 25))
            n = int(rng.integers(2, 15))
            a = rng.random((m, n))
            b = rng.random(m)
            ours = nnls(a, b)
            reference, _ = scipy_nnls(a, b)
            obj_ours = np.sum((a @ ours - b) ** 2)
            obj_ref = np.sum((a @ reference - b) ** 2)
            assert obj_ours <= obj_ref + 1e-8

    def test_wide_matrix(self, rng):
        a = rng.random((3, 10))
        b = rng.random(3)
        x = nnls(a, b)
        assert np.all(x >= 0)
        reference, _ = scipy_nnls(a, b)
        assert np.sum((a @ x - b) ** 2) <= np.sum((a @ reference - b) ** 2) + 1e-8

    def test_input_validation(self):
        with pytest.raises(ValueError):
            nnls(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            nnls(np.zeros((3, 2)), np.zeros(4))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 2**31 - 1))
    def test_kkt_conditions(self, m, n, seed):
        """At the solution: gradient <= 0 off-support, ~0 on support."""
        gen = np.random.default_rng(seed)
        a = gen.random((m, n))
        b = gen.random(m)
        x = nnls(a, b)
        gradient = a.T @ (b - a @ x)
        on_support = x > 1e-9
        assert np.all(gradient[~on_support] <= 1e-7)
        if on_support.any():
            assert np.max(np.abs(gradient[on_support])) <= 1e-6
