"""Simplex-constrained least squares — all methods, plus the projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import fit_simplex_weights, project_to_simplex

METHODS = ["penalty", "penalty-own", "pgd", "active-set", "scipy-nnls"]

float_lists = st.lists(
    st.floats(-5, 5, allow_nan=False, allow_infinity=False), min_size=1, max_size=25
)


class TestProjection:
    def test_already_on_simplex(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_to_simplex(v), v, atol=1e-12)

    def test_uniform_from_constant(self):
        np.testing.assert_allclose(
            project_to_simplex(np.array([3.0, 3.0])), [0.5, 0.5]
        )

    def test_clips_dominated_coordinates(self):
        w = project_to_simplex(np.array([10.0, 0.0, 0.0]))
        np.testing.assert_allclose(w, [1.0, 0.0, 0.0])

    @settings(max_examples=60, deadline=None)
    @given(float_lists)
    def test_projection_is_feasible(self, values):
        w = project_to_simplex(np.array(values))
        assert np.all(w >= -1e-12)
        assert np.sum(w) == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(float_lists)
    def test_projection_is_closest_among_probes(self, values):
        """No random feasible probe is closer than the projection."""
        v = np.array(values)
        w = project_to_simplex(v)
        gen = np.random.default_rng(0)
        dist_w = np.sum((w - v) ** 2)
        for _ in range(20):
            probe = gen.dirichlet(np.ones(len(v)))
            assert dist_w <= np.sum((probe - v) ** 2) + 1e-9

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            project_to_simplex(np.zeros((2, 2)))


class TestFitSimplexWeights:
    @pytest.fixture
    def problem(self, rng):
        a = rng.random((40, 12))
        w_true = rng.dirichlet(np.ones(12))
        s = a @ w_true + rng.normal(0, 0.005, 40)
        return a, np.clip(s, 0, 1), w_true

    @pytest.mark.parametrize("method", METHODS)
    def test_output_on_simplex(self, problem, method):
        a, s, _ = problem
        w = fit_simplex_weights(a, s, method=method)
        assert np.all(w >= -1e-12)
        assert np.sum(w) == pytest.approx(1.0, abs=1e-8)

    @pytest.mark.parametrize("method", METHODS)
    def test_recovers_low_loss(self, problem, method):
        a, s, w_true = problem
        w = fit_simplex_weights(a, s, method=method)
        fit_loss = np.mean((a @ w - s) ** 2)
        true_loss = np.mean((a @ w_true - s) ** 2)
        assert fit_loss <= true_loss + 1e-4

    def test_methods_agree_on_objective(self, problem):
        a, s, _ = problem
        objectives = []
        for method in METHODS:
            w = fit_simplex_weights(a, s, method=method)
            objectives.append(float(np.sum((a @ w - s) ** 2)))
        assert max(objectives) - min(objectives) <= 1e-4

    def test_exact_interpolation_when_possible(self):
        a = np.eye(3)
        s = np.array([0.2, 0.3, 0.5])
        w = fit_simplex_weights(a, s, method="pgd")
        np.testing.assert_allclose(w, s, atol=1e-6)

    def test_single_bucket(self):
        w = fit_simplex_weights(np.ones((5, 1)), np.linspace(0, 1, 5))
        np.testing.assert_allclose(w, [1.0])

    def test_zero_design_matrix(self):
        """All-zero design: any simplex point is optimal; must not crash."""
        w = fit_simplex_weights(np.zeros((4, 3)), np.full(4, 0.5))
        assert np.sum(w) == pytest.approx(1.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            fit_simplex_weights(np.ones((2, 2)), np.ones(2), method="nope")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fit_simplex_weights(np.ones((2, 2)), np.ones(3))
        with pytest.raises(ValueError):
            fit_simplex_weights(np.ones(4), np.ones(4))
        with pytest.raises(ValueError):
            fit_simplex_weights(np.ones((2, 0)), np.ones(2))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_penalty_close_to_exact(self, seed):
        gen = np.random.default_rng(seed)
        a = gen.random((15, 6))
        s = np.clip(a @ gen.dirichlet(np.ones(6)) + gen.normal(0, 0.02, 15), 0, 1)
        w_pen = fit_simplex_weights(a, s, method="penalty")
        w_pgd = fit_simplex_weights(a, s, method="pgd")
        obj_pen = np.sum((a @ w_pen - s) ** 2)
        obj_pgd = np.sum((a @ w_pgd - s) ** 2)
        assert obj_pen <= obj_pgd + 1e-3


class TestScipyFallback:
    def test_runtime_error_falls_back_to_fista(self, monkeypatch):
        """scipy >= 1.12 raises RuntimeError at its iteration cap on
        ill-conditioned systems; the penalty path must fall back to the
        exact projected-gradient solve instead of crashing mid-training."""
        import scipy.optimize

        def exploding_nnls(*args, **kwargs):
            raise RuntimeError("Maximum number of iterations reached.")

        monkeypatch.setattr(scipy.optimize, "nnls", exploding_nnls)
        gen = np.random.default_rng(0)
        a = gen.random((30, 10))
        s = np.clip(a @ gen.dirichlet(np.ones(10)), 0, 1)
        w = fit_simplex_weights(a, s, method="penalty")
        assert np.all(w >= -1e-12)
        assert np.sum(w) == pytest.approx(1.0, abs=1e-8)
        assert np.mean((a @ w - s) ** 2) < 1e-3
