"""Maximum-entropy solver (ISOMER's weight-estimation phase)."""

import numpy as np
import pytest

from repro.solvers import fit_maxent_weights


class TestMaxEnt:
    def test_unconstrained_is_uniform(self):
        """With no informative constraints the max-ent solution is uniform."""
        a = np.ones((1, 5))  # constraint: total mass = s
        w = fit_maxent_weights(a, np.array([1.0]))
        np.testing.assert_allclose(w, np.full(5, 0.2), atol=1e-6)

    def test_output_is_distribution(self, rng):
        a = (rng.random((10, 20)) > 0.5).astype(float)
        s = rng.random(10) * 0.5
        w = fit_maxent_weights(a, s)
        assert np.all(w >= 0.0)
        assert np.sum(w) == pytest.approx(1.0, abs=1e-9)

    def test_constraints_approximately_satisfied(self, rng):
        """Consistent constraints are met to within the slack tolerance."""
        membership = np.array(
            [
                [1.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 1.0],
                [1.0, 0.0, 1.0, 0.0],
            ]
        )
        w_true = np.array([0.4, 0.2, 0.3, 0.1])
        s = membership @ w_true
        w = fit_maxent_weights(membership, s, slack=1e-5)
        np.testing.assert_allclose(membership @ w, s, atol=5e-3)

    def test_entropy_maximised_among_consistent(self, rng):
        """Among distributions meeting the constraints, ours has (near-)max
        entropy: compare against random consistent distributions."""
        membership = np.array([[1.0, 1.0, 0.0, 0.0]])
        s = np.array([0.6])
        w = fit_maxent_weights(membership, s, slack=1e-6)

        def entropy(p):
            p = np.maximum(p, 1e-15)
            return -float(np.sum(p * np.log(p)))

        # Max-ent solution: (0.3, 0.3, 0.2, 0.2).
        np.testing.assert_allclose(w, [0.3, 0.3, 0.2, 0.2], atol=1e-3)
        for _ in range(20):
            probe = rng.dirichlet(np.ones(2)) * 0.6
            rest = rng.dirichlet(np.ones(2)) * 0.4
            candidate = np.concatenate([probe, rest])
            assert entropy(w) >= entropy(candidate) - 1e-3

    def test_inconsistent_constraints_do_not_crash(self):
        """Conflicting feedback (same query, different selectivities) must
        still return a valid distribution (soft constraints)."""
        a = np.array([[1.0, 0.0], [1.0, 0.0]])
        s = np.array([0.2, 0.8])
        w = fit_maxent_weights(a, s, slack=1e-2)
        assert np.sum(w) == pytest.approx(1.0)
        # The fit lands between the two conflicting targets.
        assert 0.2 <= w[0] <= 0.8

    def test_single_bucket(self):
        np.testing.assert_allclose(
            fit_maxent_weights(np.ones((2, 1)), np.array([1.0, 1.0])), [1.0]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_maxent_weights(np.ones((2, 2)), np.ones(3))
        with pytest.raises(ValueError):
            fit_maxent_weights(np.ones((2, 2)), np.ones(2), slack=0.0)
        with pytest.raises(ValueError):
            fit_maxent_weights(np.ones(4), np.ones(4))
