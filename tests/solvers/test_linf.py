"""L∞-objective trainer (Section 4.6)."""

import numpy as np
import pytest

from repro.solvers import fit_simplex_weights, fit_simplex_weights_linf


class TestLinfFit:
    @pytest.fixture
    def problem(self, rng):
        a = rng.random((30, 10))
        w_true = rng.dirichlet(np.ones(10))
        s = np.clip(a @ w_true + rng.normal(0, 0.01, 30), 0, 1)
        return a, s

    def test_output_on_simplex(self, problem):
        a, s = problem
        w = fit_simplex_weights_linf(a, s)
        assert np.all(w >= -1e-12)
        assert np.sum(w) == pytest.approx(1.0, abs=1e-8)

    def test_linf_no_worse_than_l2_solution(self, problem):
        """The L∞ minimiser achieves max-error <= that of the L2 fit."""
        a, s = problem
        w_inf = fit_simplex_weights_linf(a, s)
        w_l2 = fit_simplex_weights(a, s, method="pgd")
        assert np.max(np.abs(a @ w_inf - s)) <= np.max(np.abs(a @ w_l2 - s)) + 1e-8

    def test_exact_interpolation(self):
        a = np.eye(4)
        s = np.array([0.1, 0.2, 0.3, 0.4])
        w = fit_simplex_weights_linf(a, s)
        assert np.max(np.abs(a @ w - s)) <= 1e-8

    def test_single_bucket(self):
        np.testing.assert_allclose(
            fit_simplex_weights_linf(np.ones((3, 1)), np.array([0.2, 0.5, 0.8])), [1.0]
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fit_simplex_weights_linf(np.ones((2, 2)), np.ones(3))
        with pytest.raises(ValueError):
            fit_simplex_weights_linf(np.ones(4), np.ones(4))
