"""Warm-started solver entry points (the incremental-retrain support)."""

import numpy as np
import pytest

from repro.robustness.errors import DataValidationError
from repro.solvers.linf import fit_simplex_weights_linf
from repro.solvers.nnls import nnls
from repro.solvers.simplex_ls import (
    fit_simplex_weights,
    fit_simplex_weights_robust,
)


def _problem(m=120, n=40, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.0, 1.0, size=(m, n))
    w_true = rng.dirichlet(np.ones(n))
    s = np.clip(a @ w_true + rng.normal(0.0, 0.01, size=m), 0.0, 1.0)
    return a, s


def _residual(a, s, w):
    return float(np.linalg.norm(a @ w - s))


class TestNnlsWarmStart:
    def test_x0_reaches_same_optimum(self):
        a, s = _problem()
        cold = nnls(a, s)
        warm = nnls(a, s, x0=cold)
        np.testing.assert_allclose(warm, cold, atol=1e-8)

    def test_perturbed_x0_reaches_same_optimum(self):
        a, s = _problem(seed=1)
        cold = nnls(a, s)
        rng = np.random.default_rng(2)
        warm = nnls(a, s, x0=cold + rng.normal(0.0, 1e-3, cold.shape))
        assert _residual(a, s, warm) == pytest.approx(
            _residual(a, s, cold), abs=1e-6
        )

    def test_bad_shape_raises(self):
        a, s = _problem()
        with pytest.raises(ValueError):
            nnls(a, s, x0=np.ones(3))

    def test_nonfinite_x0_ignored(self):
        a, s = _problem()
        warm = nnls(a, s, x0=np.full(a.shape[1], np.nan))
        np.testing.assert_allclose(warm, nnls(a, s), atol=1e-8)


class TestSimplexWarmStart:
    @pytest.mark.parametrize("method", ["penalty", "penalty-own", "pgd", "active-set"])
    def test_warm_result_is_feasible_and_competitive(self, method):
        a, s = _problem(seed=3)
        cold = fit_simplex_weights(a, s, method=method)
        warm = fit_simplex_weights(a, s, method=method, warm_start=cold)
        assert warm.min() >= -1e-12
        assert warm.sum() == pytest.approx(1.0, abs=1e-8)
        assert _residual(a, s, warm) <= _residual(a, s, cold) + 5e-3

    def test_warm_from_perturbed_previous_solution(self):
        a, s = _problem(seed=4)
        prev = fit_simplex_weights(a, s)
        rng = np.random.default_rng(5)
        jittered = prev + rng.normal(0.0, 1e-2, prev.shape)
        warm = fit_simplex_weights(a, s, warm_start=jittered)
        assert _residual(a, s, warm) <= _residual(a, s, prev) + 5e-3

    def test_strict_shape_mismatch_raises(self):
        a, s = _problem()
        with pytest.raises(DataValidationError):
            fit_simplex_weights(a, s, warm_start=np.ones(3))

    def test_robust_reports_warm_started(self):
        a, s = _problem(seed=6)
        cold, cold_report = fit_simplex_weights_robust(a, s)
        assert cold_report.warm_started is False
        warm, warm_report = fit_simplex_weights_robust(a, s, warm_start=cold)
        assert warm_report.warm_started is True
        assert warm_report.to_dict()["warm_started"] is True
        assert _residual(a, s, warm) <= _residual(a, s, cold) + 5e-3

    def test_robust_drops_invalid_warm_start(self):
        """The robust ladder is best-effort: a stale (wrong-length) warm
        start is dropped instead of failing the solve."""
        a, s = _problem(seed=7)
        w, report = fit_simplex_weights_robust(a, s, warm_start=np.ones(3))
        assert report.warm_started is False
        assert w.sum() == pytest.approx(1.0, abs=1e-8)


class TestLinfWarmStart:
    def test_solves_same_with_warm_start(self):
        a, s = _problem(seed=8)
        base = fit_simplex_weights_linf(a, s)
        warm = fit_simplex_weights_linf(a, s, warm_start=base)

        def worst(w):
            return float(np.abs(a @ w - s).max())

        assert worst(warm) <= worst(base) + 1e-8

    def test_warm_start_is_failure_fallback(self, monkeypatch):
        import repro.solvers.linf as linf_mod

        a, s = _problem(seed=9)
        prev = np.zeros(a.shape[1])
        prev[0] = 2.0  # unnormalised on purpose: the fallback renormalises

        class _Fail:
            status = 2
            x = None

        monkeypatch.setattr(linf_mod, "linprog", lambda *args, **kwargs: _Fail())
        w = linf_mod.fit_simplex_weights_linf(a, s, warm_start=prev)
        expected = np.zeros(a.shape[1])
        expected[0] = 1.0
        np.testing.assert_allclose(w, expected)

    def test_failure_without_warm_start_is_uniform(self, monkeypatch):
        import repro.solvers.linf as linf_mod

        a, s = _problem(seed=10)

        class _Fail:
            status = 2
            x = None

        monkeypatch.setattr(linf_mod, "linprog", lambda *args, **kwargs: _Fail())
        w = linf_mod.fit_simplex_weights_linf(a, s)
        np.testing.assert_allclose(w, np.full(a.shape[1], 1.0 / a.shape[1]))
