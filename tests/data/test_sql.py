"""SQL WHERE-clause parsing into query ranges."""

import numpy as np
import pytest

from repro.data.sql import PredicateError, parse_predicate
from repro.geometry import Ball, Box, Halfspace

ATTRS = ["A1", "A2", "A3"]


class TestBoxPredicates:
    def test_simple_range(self):
        box = parse_predicate("0.1 <= A1 AND A1 <= 0.5", ATTRS)
        assert isinstance(box, Box)
        assert box.lows[0] == pytest.approx(0.1)
        assert box.highs[0] == pytest.approx(0.5)
        # Unconstrained attributes span the whole domain.
        assert box.lows[1] == 0.0 and box.highs[1] == 1.0

    def test_where_keyword_accepted(self):
        box = parse_predicate("WHERE A1 <= 0.5", ATTRS)
        assert box.highs[0] == pytest.approx(0.5)

    def test_two_attributes(self):
        box = parse_predicate(
            "0.1 <= A1 AND A1 <= 0.5 AND 0.2 <= A2 AND A2 <= 0.6", ATTRS
        )
        assert box.lows[1] == pytest.approx(0.2)
        assert box.highs[1] == pytest.approx(0.6)

    def test_between(self):
        box = parse_predicate("A2 BETWEEN 0.25 AND 0.75", ATTRS)
        assert box.lows[1] == pytest.approx(0.25)
        assert box.highs[1] == pytest.approx(0.75)

    def test_equality_predicate(self):
        box = parse_predicate("A3 = 0.5", ATTRS)
        assert box.lows[2] == box.highs[2] == pytest.approx(0.5)

    def test_combined_forms(self):
        box = parse_predicate("A1 >= 0.3 AND A2 BETWEEN 0.1 AND 0.2 AND A3 < 0.9", ATTRS)
        assert box.lows[0] == pytest.approx(0.3)
        assert box.highs[2] == pytest.approx(0.9)

    def test_repeated_constraints_tighten(self):
        box = parse_predicate("A1 >= 0.2 AND A1 >= 0.4 AND A1 <= 0.9 AND A1 <= 0.7", ATTRS)
        assert box.lows[0] == pytest.approx(0.4)
        assert box.highs[0] == pytest.approx(0.7)

    def test_case_insensitive_and(self):
        box = parse_predicate("A1 <= 0.5 and A2 >= 0.5", ATTRS)
        assert box.highs[0] == pytest.approx(0.5)
        assert box.lows[1] == pytest.approx(0.5)


class TestHalfspacePredicates:
    def test_paper_form(self):
        """SELECT ... WHERE theta0 + theta1*A1 + theta2*A2 >= 0."""
        half = parse_predicate("0.3 + 1.0*A1 - 2.0*A2 >= 0", ATTRS)
        assert isinstance(half, Halfspace)
        # 1.0*A1 - 2.0*A2 >= -0.3
        assert [0.5, 0.1, 0.0] in half  # 0.5 - 0.2 = 0.3 >= -0.3
        assert [0.0, 0.9, 0.0] not in half  # -1.8 < -0.3

    def test_le_direction_flipped(self):
        half = parse_predicate("A1 + A2 <= 1.0", ATTRS)
        assert isinstance(half, Halfspace)
        assert [0.2, 0.2, 0.0] in half
        assert [0.9, 0.9, 0.0] not in half

    def test_bare_attribute_coefficients(self):
        half = parse_predicate("A1 - A2 >= 0", ATTRS)
        assert [0.6, 0.4, 0.0] in half
        assert [0.4, 0.6, 0.0] not in half


class TestBallPredicates:
    def test_paper_form(self):
        ball = parse_predicate("(A1-0.2)^2 + (A2-0.7)^2 + (A3-0.5)^2 <= 0.04", ATTRS)
        assert isinstance(ball, Ball)
        np.testing.assert_allclose(ball.ball_center, [0.2, 0.7, 0.5])
        assert ball.radius == pytest.approx(0.2)

    def test_partial_dimension_not_a_ball(self):
        """Mentioning only some attributes is not a full-space ball; it
        falls through and fails as a box conjunct (squares unsupported)."""
        with pytest.raises(PredicateError):
            parse_predicate("(A1-0.2)^2 <= 0.04", ATTRS[:2] + ["A9"])


class TestErrors:
    def test_unknown_attribute(self):
        with pytest.raises(PredicateError):
            parse_predicate("B7 <= 0.5", ATTRS)

    def test_empty_clause(self):
        with pytest.raises(PredicateError):
            parse_predicate("   ", ATTRS)

    def test_garbage(self):
        with pytest.raises(PredicateError):
            parse_predicate("A1 LIKE 'foo'", ATTRS)

    def test_contradictory_bounds(self):
        with pytest.raises(PredicateError):
            parse_predicate("A1 >= 0.8 AND A1 <= 0.2", ATTRS)

    def test_reversed_between(self):
        with pytest.raises(PredicateError):
            parse_predicate("A1 BETWEEN 0.9 AND 0.1", ATTRS)

    def test_empty_attributes(self):
        with pytest.raises(PredicateError):
            parse_predicate("A1 <= 0.5", [])


class TestEndToEnd:
    def test_parsed_queries_train_a_model(self, power2d):
        """SQL-authored workload drives the normal pipeline."""
        from repro.core import QuadHist
        from repro.data import label_queries

        attrs = ["A1", "A2"]
        clauses = [
            f"{lo:.2f} <= A1 AND A1 <= {lo + 0.4:.2f} AND A2 <= {hi:.2f}"
            for lo, hi in zip(np.linspace(0, 0.5, 12), np.linspace(0.3, 1.0, 12))
        ]
        queries = [parse_predicate(c, attrs) for c in clauses]
        labels = label_queries(power2d, queries)
        model = QuadHist(tau=0.05).fit(queries, labels)
        assert 0.0 <= model.predict(queries[0]) <= 1.0
