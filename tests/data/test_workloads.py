"""Workload generation (Section 4's three center distributions x three
query types, plus the shifted-Gaussian workloads of Section 4.3)."""

import numpy as np
import pytest

from repro.data import (
    WorkloadSpec,
    census_like,
    generate_workload,
    power_like,
    shifted_gaussian_workload,
)
from repro.data.datasets import AttributeType
from repro.geometry import Ball, Box, Halfspace, unit_box


@pytest.fixture(scope="module")
def power2d_module():
    return power_like(rows=4000).project([0, 3])


class TestSpecs:
    def test_invalid_query_kind(self):
        with pytest.raises(ValueError):
            WorkloadSpec(query_kind="triangle")

    def test_invalid_center_kind(self):
        with pytest.raises(ValueError):
            WorkloadSpec(center_kind="poisson")

    def test_invalid_std(self):
        with pytest.raises(ValueError):
            WorkloadSpec(gaussian_std=0.0)


class TestBoxWorkloads:
    def test_boxes_clipped_to_domain(self, rng, power2d_module):
        queries = generate_workload(
            50, 2, rng, WorkloadSpec("box", "data"), dataset=power2d_module
        )
        dom = unit_box(2)
        for q in queries:
            assert isinstance(q, Box)
            assert dom.contains_box(q)

    def test_random_centers_need_no_dataset(self, rng):
        queries = generate_workload(20, 3, rng, WorkloadSpec("box", "random"))
        assert len(queries) == 20
        assert all(q.dim == 3 for q in queries)

    def test_data_driven_requires_dataset(self, rng):
        with pytest.raises(ValueError):
            generate_workload(5, 2, rng, WorkloadSpec("box", "data"))

    def test_gaussian_centers_cluster_at_mean(self, rng):
        queries = generate_workload(400, 2, rng, WorkloadSpec("box", "gaussian"))
        centers = np.array([q.center() for q in queries])
        assert np.allclose(centers.mean(axis=0), 0.5, atol=0.05)

    def test_data_driven_centers_follow_data(self, rng, power2d_module):
        """Data-driven box centers concentrate where rows concentrate."""
        queries = generate_workload(
            300, 2, rng, WorkloadSpec("box", "data"), dataset=power2d_module
        )
        # Most power rows sit in the lower half of attribute 0.
        row_frac = float(np.mean(power2d_module.rows[:, 0] < 0.5))
        assert row_frac > 0.6  # precondition: data is skewed

    def test_dataset_dim_mismatch(self, rng, power2d_module):
        with pytest.raises(ValueError):
            generate_workload(5, 3, rng, WorkloadSpec("box", "data"), dataset=power2d_module)

    def test_categorical_attributes_get_equality_cells(self, rng):
        ds = census_like(rows=2000).project([5, 0])  # categorical + numeric
        assert ds.kinds[0] is AttributeType.CATEGORICAL
        card = ds.cardinalities[0]
        queries = generate_workload(
            30, 2, rng, WorkloadSpec("box", "data"), dataset=ds
        )
        for q in queries:
            width = q.highs[0] - q.lows[0]
            assert width == pytest.approx(1.0 / card, abs=1e-9)


class TestBallAndHalfspaceWorkloads:
    def test_ball_workload(self, rng):
        queries = generate_workload(30, 2, rng, WorkloadSpec("ball", "random"))
        assert all(isinstance(q, Ball) for q in queries)
        assert all(0.0 <= q.radius <= 1.0 for q in queries)

    def test_halfspace_workload(self, rng):
        queries = generate_workload(30, 2, rng, WorkloadSpec("halfspace", "random"))
        assert all(isinstance(q, Halfspace) for q in queries)
        for q in queries:
            assert np.linalg.norm(q.normal) == pytest.approx(1.0)

    def test_halfspace_boundary_through_center(self, rng, power2d_module):
        """The sampled center lies on the boundary: roughly half the domain
        is selected on average."""
        queries = generate_workload(
            300, 2, rng, WorkloadSpec("halfspace", "gaussian")
        )
        from repro.geometry.volume import range_volume

        volumes = [range_volume(q, unit_box(2)) for q in queries]
        assert np.mean(volumes) == pytest.approx(0.5, abs=0.06)


class TestShiftedGaussian:
    def test_centers_follow_requested_mean(self, rng):
        queries = shifted_gaussian_workload(400, 2, mean=0.3, rng=rng)
        centers = np.array([q.center() for q in queries])
        assert np.allclose(centers.mean(axis=0), 0.3, atol=0.06)

    def test_variance_parameter(self, rng):
        narrow = shifted_gaussian_workload(400, 2, mean=0.5, rng=rng, variance=0.001)
        wide = shifted_gaussian_workload(400, 2, mean=0.5, rng=rng, variance=0.05)
        spread = lambda qs: np.std([q.center()[0] for q in qs])  # noqa: E731
        assert spread(narrow) < spread(wide)


class TestValidation:
    def test_negative_count(self, rng):
        with pytest.raises(ValueError):
            generate_workload(-1, 2, rng)

    def test_zero_dim(self, rng):
        with pytest.raises(ValueError):
            generate_workload(5, 0, rng)

    def test_determinism(self):
        a = generate_workload(10, 2, np.random.default_rng(5), WorkloadSpec("box", "random"))
        b = generate_workload(10, 2, np.random.default_rng(5), WorkloadSpec("box", "random"))
        for qa, qb in zip(a, b):
            assert qa == qb
