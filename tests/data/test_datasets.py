"""Dataset container: normalisation, projection, categorical cells."""

import numpy as np
import pytest

from repro.data import AttributeType, Dataset


@pytest.fixture
def mixed_dataset(rng):
    rows = rng.random((100, 3))
    # Attribute 2 is categorical with 4 categories: snap to cell centers.
    codes = rng.integers(0, 4, size=100)
    rows[:, 2] = (codes + 0.5) / 4
    return Dataset(
        "mixed",
        rows,
        kinds=[AttributeType.NUMERIC, AttributeType.NUMERIC, AttributeType.CATEGORICAL],
        cardinalities=[None, None, 4],
    )


class TestConstruction:
    def test_basic(self, rng):
        ds = Dataset("t", rng.random((50, 2)))
        assert ds.num_rows == 50
        assert ds.dim == 2

    def test_rejects_out_of_range_rows(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.array([[1.5, 0.0]]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.empty((0, 3)))

    def test_rejects_nan_rows(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.array([[0.5, np.nan]]))

    def test_rejects_metadata_mismatch(self, rng):
        with pytest.raises(ValueError):
            Dataset("bad", rng.random((5, 2)), kinds=[AttributeType.NUMERIC])

    def test_categorical_requires_cardinality(self, rng):
        with pytest.raises(ValueError):
            Dataset(
                "bad",
                rng.random((5, 1)),
                kinds=[AttributeType.CATEGORICAL],
                cardinalities=[None],
            )


class TestProjection:
    def test_project_keeps_metadata(self, mixed_dataset):
        proj = mixed_dataset.project([2, 0])
        assert proj.dim == 2
        assert proj.kinds == [AttributeType.CATEGORICAL, AttributeType.NUMERIC]
        assert proj.cardinalities == [4, None]

    def test_project_rows(self, mixed_dataset):
        proj = mixed_dataset.project([1])
        np.testing.assert_array_equal(proj.rows[:, 0], mixed_dataset.rows[:, 1])

    def test_random_projection_dimension(self, mixed_dataset, rng):
        proj = mixed_dataset.random_projection(2, rng)
        assert proj.dim == 2

    def test_numeric_projection_excludes_categorical(self, mixed_dataset, rng):
        proj = mixed_dataset.numeric_projection(2, rng)
        assert all(k is AttributeType.NUMERIC for k in proj.kinds)

    def test_numeric_projection_too_large_rejected(self, mixed_dataset, rng):
        with pytest.raises(ValueError):
            mixed_dataset.numeric_projection(3, rng)

    def test_empty_projection_rejected(self, mixed_dataset):
        with pytest.raises(ValueError):
            mixed_dataset.project([])


class TestCategoricalCells:
    def test_cell_bounds(self, mixed_dataset):
        lo, hi = mixed_dataset.categorical_cell(2, 0.125)  # category 0 of 4
        assert (lo, hi) == (0.0, 0.25)
        lo, hi = mixed_dataset.categorical_cell(2, 0.875)  # category 3
        assert (lo, hi) == (0.75, 1.0)

    def test_value_one_maps_to_last_cell(self, mixed_dataset):
        lo, hi = mixed_dataset.categorical_cell(2, 1.0)
        assert (lo, hi) == (0.75, 1.0)

    def test_numeric_attribute_rejected(self, mixed_dataset):
        with pytest.raises(ValueError):
            mixed_dataset.categorical_cell(0, 0.5)


class TestSampling:
    def test_sample_rows_are_dataset_rows(self, mixed_dataset, rng):
        sample = mixed_dataset.sample_rows(30, rng)
        assert sample.shape == (30, 3)
        row_set = {tuple(np.round(r, 12)) for r in mixed_dataset.rows}
        assert all(tuple(np.round(r, 12)) in row_set for r in sample)
