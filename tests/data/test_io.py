"""Workload serialization round-trips."""

import json

import numpy as np
import pytest

from repro.data import load_workload, range_from_dict, range_to_dict, save_workload
from repro.geometry import Ball, Box, DiscIntersectionRange, Halfspace
from repro.geometry.ranges import SemiAlgebraicRange


class TestRangeDicts:
    @pytest.mark.parametrize(
        "range_",
        [
            Box([0.1, 0.2], [0.5, 0.9]),
            Halfspace([0.6, -0.8], 0.25),
            Ball([0.3, 0.7], 0.15),
            DiscIntersectionRange([0.4, 0.4], 0.2, max_data_radius=0.5),
        ],
        ids=["box", "halfspace", "ball", "disc-intersection"],
    )
    def test_roundtrip_preserves_membership(self, range_, rng):
        restored = range_from_dict(range_to_dict(range_))
        points = rng.random((300, range_.dim))
        np.testing.assert_array_equal(
            np.asarray(range_.contains(points)), np.asarray(restored.contains(points))
        )

    def test_dicts_are_json_serialisable(self):
        encoded = json.dumps(range_to_dict(Box([0.0], [1.0])))
        assert "box" in encoded

    def test_semialgebraic_rejected(self):
        r = SemiAlgebraicRange(dim=1, predicates=[lambda p: p[:, 0] - 0.5])
        with pytest.raises(TypeError):
            range_to_dict(r)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            range_from_dict({"type": "triangle"})


class TestWorkloadFiles:
    def test_roundtrip(self, tmp_path, rng):
        queries = [
            Box([0.1, 0.1], [0.4, 0.6]),
            Ball([0.5, 0.5], 0.2),
            Halfspace([1.0, 0.0], 0.3),
        ]
        labels = np.array([0.25, 0.1, 0.7])
        path = tmp_path / "workload.json"
        save_workload(path, queries, labels)
        loaded_queries, loaded_labels = load_workload(path)
        np.testing.assert_allclose(loaded_labels, labels)
        points = rng.random((200, 2))
        for original, restored in zip(queries, loaded_queries):
            np.testing.assert_array_equal(
                np.asarray(original.contains(points)),
                np.asarray(restored.contains(points)),
            )

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_workload(tmp_path / "w.json", [Box([0.0], [1.0])], [0.5, 0.6])

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text(json.dumps({"version": 99, "queries": [], "selectivities": []}))
        with pytest.raises(ValueError):
            load_workload(path)

    def test_trained_model_from_loaded_workload(self, tmp_path, power2d_box_workload):
        """The round-tripped workload trains to identical predictions."""
        from repro.core import QuadHist

        train_q, train_s, test_q, _ = power2d_box_workload
        path = tmp_path / "power.json"
        save_workload(path, train_q, train_s)
        loaded_q, loaded_s = load_workload(path)
        direct = QuadHist(tau=0.02).fit(train_q, train_s).predict_many(test_q)
        via_file = QuadHist(tau=0.02).fit(loaded_q, loaded_s).predict_many(test_q)
        np.testing.assert_allclose(direct, via_file, atol=1e-12)
