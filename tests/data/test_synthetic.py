"""Synthetic dataset generators: shape, determinism, and skew sanity."""

import numpy as np
import pytest

from repro.data import (
    AttributeType,
    census_like,
    dmv_like,
    forest_like,
    load_dataset,
    power_like,
)


class TestShapes:
    def test_power_shape(self):
        ds = power_like(rows=2000)
        assert ds.num_rows == 2000
        assert ds.dim == 7
        assert all(k is AttributeType.NUMERIC for k in ds.kinds)

    def test_forest_shape(self):
        ds = forest_like(rows=2000)
        assert ds.dim == 10
        assert all(k is AttributeType.NUMERIC for k in ds.kinds)

    def test_census_shape(self):
        ds = census_like(rows=2000)
        assert ds.dim == 13
        assert sum(k is AttributeType.CATEGORICAL for k in ds.kinds) == 8

    def test_dmv_shape(self):
        ds = dmv_like(rows=2000)
        assert ds.dim == 11
        assert sum(k is AttributeType.CATEGORICAL for k in ds.kinds) == 10

    def test_rows_normalised(self):
        for loader in (power_like, forest_like, census_like, dmv_like):
            ds = loader(rows=500)
            assert np.all(ds.rows >= 0.0) and np.all(ds.rows <= 1.0)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = power_like(rows=1000, seed=7)
        b = power_like(rows=1000, seed=7)
        np.testing.assert_array_equal(a.rows, b.rows)

    def test_different_seed_different_data(self):
        a = power_like(rows=1000, seed=7)
        b = power_like(rows=1000, seed=8)
        assert not np.array_equal(a.rows, b.rows)


class TestSkewStructure:
    def test_power_is_skewed(self):
        """The experiments rely on skew: mean far from median on the
        power-draw attribute (lognormal-like tail)."""
        ds = power_like(rows=20_000)
        col = ds.rows[:, 0]
        assert np.mean(col) > np.median(col) * 1.1

    def test_power_submetering_mass_near_zero(self):
        ds = power_like(rows=20_000)
        sub1 = ds.rows[:, 4]
        assert np.mean(sub1 < 0.1) > 0.4

    def test_power_attributes_correlated(self):
        ds = power_like(rows=20_000)
        corr = np.corrcoef(ds.rows[:, 0], ds.rows[:, 3])[0, 1]
        assert corr > 0.8  # active power vs intensity

    def test_forest_terrain_correlation(self):
        ds = forest_like(rows=20_000)
        # Hydrology distance shrinks with elevation by construction.
        corr = np.corrcoef(ds.rows[:, 0], ds.rows[:, 3])[0, 1]
        assert corr < -0.1

    def test_categorical_columns_are_zipf_skewed(self):
        ds = dmv_like(rows=20_000)
        col = ds.rows[:, 2]  # categorical with few categories
        values, counts = np.unique(col, return_counts=True)
        assert counts.max() > 2 * counts.min()

    def test_categorical_values_on_cell_centers(self):
        ds = census_like(rows=5000)
        for axis, attr in enumerate(ds.attributes):
            if attr.kind is AttributeType.CATEGORICAL:
                centers = (np.arange(attr.cardinality) + 0.5) / attr.cardinality
                assert np.all(np.isin(np.round(ds.rows[:, axis], 9), np.round(centers, 9)))


class TestLoader:
    def test_load_by_name(self):
        ds = load_dataset("forest", rows=500)
        assert ds.name == "forest"

    def test_load_with_seed(self):
        a = load_dataset("power", rows=500, seed=1)
        b = load_dataset("power", rows=500, seed=1)
        np.testing.assert_array_equal(a.rows, b.rows)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("tpch")
