"""Exact selectivity oracle."""

import numpy as np
import pytest

from repro.data import Dataset, true_selectivity, label_queries
from repro.geometry import Ball, Box, Halfspace


@pytest.fixture
def grid_dataset():
    """A 10x10 grid of points in [0.05, 0.95]^2 — selectivities are exact."""
    xs = np.linspace(0.05, 0.95, 10)
    rows = np.array([[x, y] for x in xs for y in xs])
    return Dataset("grid", rows)


class TestTrueSelectivity:
    def test_whole_domain(self, grid_dataset):
        assert true_selectivity(grid_dataset, Box([0.0, 0.0], [1.0, 1.0])) == 1.0

    def test_exact_fraction(self, grid_dataset):
        # x in [0, 0.5] covers columns 0.05..0.45: 5 of 10.
        q = Box([0.0, 0.0], [0.5, 1.0])
        assert true_selectivity(grid_dataset, q) == pytest.approx(0.5)

    def test_empty_query(self, grid_dataset):
        assert true_selectivity(grid_dataset, Box([0.96, 0.96], [1.0, 1.0])) == 0.0

    def test_halfspace(self, grid_dataset):
        half = Halfspace([1.0, 0.0], 0.5)  # x >= 0.5
        assert true_selectivity(grid_dataset, half) == pytest.approx(0.5)

    def test_ball(self, grid_dataset):
        ball = Ball([0.05, 0.05], 0.01)  # exactly the corner point
        assert true_selectivity(grid_dataset, ball) == pytest.approx(0.01)

    def test_dimension_mismatch(self, grid_dataset):
        with pytest.raises(ValueError):
            true_selectivity(grid_dataset, Box([0.0], [1.0]))


class TestLabelQueries:
    def test_batch_matches_single(self, grid_dataset):
        queries = [
            Box([0.0, 0.0], [0.5, 1.0]),
            Box([0.0, 0.0], [1.0, 0.5]),
            Ball([0.5, 0.5], 0.3),
        ]
        labels = label_queries(grid_dataset, queries)
        singles = [true_selectivity(grid_dataset, q) for q in queries]
        np.testing.assert_allclose(labels, singles)

    def test_labels_in_unit_interval(self, grid_dataset, rng):
        queries = [
            Box.from_center(rng.random(2), rng.random(2), clip_to=Box([0, 0], [1, 1]))
            for _ in range(20)
        ]
        labels = label_queries(grid_dataset, queries)
        assert np.all(labels >= 0.0) and np.all(labels <= 1.0)


class TestLabelQueriesBatching:
    """The chunked containment-matrix path is a pure optimisation."""

    def test_mixed_workload_matches_loop(self, grid_dataset):
        queries = [
            Box([0.1, 0.1], [0.7, 0.6]),
            Halfspace([1.0, -1.0], 0.0),
            Ball([0.45, 0.45], 0.25),
            Box([0.5, 0.0], [0.5, 1.0]),  # zero-width
            Halfspace([0.0, 1.0], 0.35),
        ]
        labels = label_queries(grid_dataset, queries)
        singles = np.array([true_selectivity(grid_dataset, q) for q in queries])
        np.testing.assert_array_equal(labels, singles)

    def test_chunked_equals_unchunked(self, grid_dataset, monkeypatch):
        import repro.data.selectivity as selectivity_mod

        queries = [Box([0.05 * i, 0.0], [0.05 * i + 0.3, 0.8]) for i in range(12)]
        baseline = label_queries(grid_dataset, queries)
        # Budget of 64 elements => a handful of queries per containment pass.
        monkeypatch.setattr(selectivity_mod, "CHUNK_ELEMENTS", 64)
        np.testing.assert_array_equal(label_queries(grid_dataset, queries), baseline)

    def test_empty_workload(self, grid_dataset):
        labels = label_queries(grid_dataset, [])
        assert labels.shape == (0,)

    def test_dimension_mismatch_rejected_up_front(self, grid_dataset):
        queries = [Box([0.0, 0.0], [1.0, 1.0]), Box([0.0], [1.0])]
        with pytest.raises(ValueError):
            label_queries(grid_dataset, queries)
