"""CSV / record loading into the normalised Dataset format."""

import numpy as np
import pytest

from repro.data.datasets import AttributeType
from repro.data.loaders import dataset_from_csv, dataset_from_records


class TestFromRecords:
    def test_numeric_columns_normalised(self):
        ds = dataset_from_records("t", [[10.0, 20.0, 30.0], [1.0, 1.0, 1.0]])
        np.testing.assert_allclose(ds.rows[:, 0], [0.0, 0.5, 1.0])
        np.testing.assert_allclose(ds.rows[:, 1], 0.0)  # constant column
        assert ds.kinds == [AttributeType.NUMERIC, AttributeType.NUMERIC]

    def test_string_columns_become_categorical(self):
        ds = dataset_from_records("t", [["red", "blue", "red", "green"]])
        assert ds.kinds == [AttributeType.CATEGORICAL]
        assert ds.cardinalities == [3]
        # Same string -> same cell center.
        assert ds.rows[0, 0] == ds.rows[2, 0]

    def test_mixed_columns(self):
        ds = dataset_from_records("t", [[1, 2, 3], ["a", "b", "a"]])
        assert ds.kinds == [AttributeType.NUMERIC, AttributeType.CATEGORICAL]

    def test_unparseable_numeric_falls_back_to_categorical(self):
        ds = dataset_from_records("t", [[1.0, "n/a", 3.0]])
        assert ds.kinds == [AttributeType.CATEGORICAL]

    def test_validation(self):
        with pytest.raises(ValueError):
            dataset_from_records("t", [])
        with pytest.raises(ValueError):
            dataset_from_records("t", [[]])
        with pytest.raises(ValueError):
            dataset_from_records("t", [[1, 2], [1]])


class TestFromCSV:
    @pytest.fixture
    def csv_file(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text(
            "power,voltage,room\n"
            "1.2,230,kitchen\n"
            "0.4,231,kitchen\n"
            "2.8,229,garage\n"
            "bad,row\n"  # wrong field count: skipped
            "0.9,232,attic\n"
        )
        return path

    def test_loads_with_header(self, csv_file):
        ds = dataset_from_csv(csv_file)
        assert ds.num_rows == 4
        assert ds.dim == 3
        assert [a.name for a in ds.attributes] == ["power", "voltage", "room"]
        assert ds.kinds[2] is AttributeType.CATEGORICAL

    def test_max_rows(self, csv_file):
        ds = dataset_from_csv(csv_file, max_rows=2)
        assert ds.num_rows == 2

    def test_headerless(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("1,2\n3,4\n")
        ds = dataset_from_csv(path, has_header=False)
        assert ds.num_rows == 2
        assert ds.dim == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError):
            dataset_from_csv(path)

    def test_loaded_dataset_runs_the_pipeline(self, csv_file, rng):
        """End-to-end: a CSV table trains an estimator."""
        from repro.core import QuadHist
        from repro.data import WorkloadSpec, generate_workload, label_queries

        ds = dataset_from_csv(csv_file).project([0, 1])
        queries = generate_workload(
            10, 2, rng, WorkloadSpec("box", "data"), dataset=ds
        )
        labels = label_queries(ds, queries)
        model = QuadHist(tau=0.05).fit(queries, labels)
        assert 0.0 <= model.predict(queries[0]) <= 1.0
