"""Registry-wide property: sparse and dense predict paths agree.

Every estimator that threads the spatial bucket index through
``predict_many`` must produce the same predictions (to ``<= 1e-12``) with
the index attached and with it stripped (pure dense kernels).  The test
runs registry-wide so a newly added estimator is covered automatically;
estimators without an index compare dense-to-dense and pass trivially.

PtsHist and the discrete arrangement ERM exercise the zero-volume-bucket
edge case for free: their support is a point set, i.e. every "bucket" has
zero extent.  Queries placed outside the data region exercise the
empty-candidate-set path.
"""

import numpy as np
import pytest

from repro.core.registry import estimator_factories
from repro.geometry import sparse as sparse_mod
from repro.geometry.ranges import Ball, Box, Halfspace

TOL = 1e-12
N_TRAIN = 60


@pytest.fixture(autouse=True)
def force_sparse():
    """Small test models would short-circuit to dense without this."""
    prev_min = sparse_mod.set_min_sparse_buckets(0)
    prev_cross = sparse_mod.set_crossover_threshold(1.0)
    yield
    sparse_mod.set_min_sparse_buckets(prev_min)
    sparse_mod.set_crossover_threshold(prev_cross)


def _box_training(rng, n=N_TRAIN, d=2):
    queries, labels = [], []
    for _ in range(n):
        lo = rng.uniform(0, 0.7, size=d)
        hi = lo + rng.uniform(0.05, 0.3, size=d)
        queries.append(Box(lo, np.minimum(hi, 1.0)))
        labels.append(float(np.prod(np.minimum(hi, 1.0) - lo)))
    return queries, labels


def _mixed_predict_queries(rng, d=2):
    queries = [
        Box([0.92, 0.92], [0.99, 0.99]),  # empty-candidate-set corner
        Ball([0.95, 0.95], 0.03),
    ]
    for i in range(18):
        kind = i % 3
        if kind == 0:
            lo = rng.uniform(0, 0.7, size=d)
            queries.append(Box(lo, np.minimum(lo + rng.uniform(0.05, 0.4, size=d), 1.0)))
        elif kind == 1:
            queries.append(Halfspace(rng.normal(size=d), float(rng.uniform(-0.2, 0.8))))
        else:
            queries.append(Ball(rng.uniform(0.2, 0.8, size=d), float(rng.uniform(0.05, 0.3))))
    return queries


def _strip_indexes(est) -> bool:
    """Null out every attached bucket index; return True if any was found."""
    stripped = False
    for obj in (est, getattr(est, "_distribution", None), getattr(est, "_discrete", None)):
        if obj is not None and getattr(obj, "_index", None) is not None:
            obj._index = None
            stripped = True
    return stripped


@pytest.mark.parametrize("name", sorted(estimator_factories()))
def test_sparse_and_dense_predictions_agree(name):
    factory = estimator_factories()[name]
    rng = np.random.default_rng(42)
    queries, labels = _box_training(rng)
    est = factory(N_TRAIN)
    est.fit(queries, labels)
    predict_queries = _mixed_predict_queries(rng)
    with_index = np.asarray(est.predict_many(predict_queries), dtype=float)
    _strip_indexes(est)
    dense = np.asarray(est.predict_many(predict_queries), dtype=float)
    diff = np.max(np.abs(with_index - dense))
    assert diff <= TOL, f"{name}: sparse/dense predictions differ by {diff:.3e}"


@pytest.mark.parametrize("name", ["quadhist", "kdhist", "ptshist", "isomer", "stholes"])
def test_indexed_estimators_actually_carry_an_index(name):
    # Guards against the equivalence test passing vacuously because a fit
    # path silently stopped building its index.
    factory = estimator_factories()[name]
    rng = np.random.default_rng(7)
    queries, labels = _box_training(rng)
    est = factory(N_TRAIN)
    est.fit(queries, labels)
    assert _strip_indexes(est), f"{name} no longer builds a bucket index at fit time"
