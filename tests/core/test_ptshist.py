"""PtsHist — bucket sampling, determinism, and fit quality."""

import numpy as np
import pytest

from repro.core import PtsHist
from repro.distributions import DiscreteDistribution
from repro.geometry import Ball, Box, Halfspace, unit_box
from repro.geometry.volume import range_volume


class TestBucketSampling:
    def test_model_size_matches_request(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = PtsHist(size=150).fit(train_q, train_s)
        assert est.model_size == 150

    def test_interior_points_follow_selectivity_shares(self, rng):
        """A high-selectivity query receives proportionally more bucket
        points than a low-selectivity one."""
        heavy = Box([0.0, 0.0], [0.5, 0.5])
        light = Box([0.6, 0.6], [0.9, 0.9])
        est = PtsHist(size=400, seed=3).fit([heavy, light], [0.8, 0.1])
        pts = est.distribution.points
        in_heavy = int(np.sum(heavy.contains(pts)))
        in_light = int(np.sum(light.contains(pts)))
        assert in_heavy > 2 * in_light

    def test_uniform_share_covers_uncovered_space(self):
        """~10% of points land outside all training queries."""
        q = Box([0.0, 0.0], [0.3, 0.3])
        est = PtsHist(size=500, seed=1).fit([q], [1.0])
        pts = est.distribution.points
        outside = ~np.asarray(q.contains(pts))
        assert 0.02 <= outside.mean() <= 0.25

    def test_interior_fraction_zero_is_all_uniform(self):
        q = Box([0.0, 0.0], [0.1, 0.1])
        est = PtsHist(size=300, interior_fraction=0.0, seed=2).fit([q], [1.0])
        pts = est.distribution.points
        # Uniform points fall in the tiny query only ~1% of the time.
        assert np.mean(q.contains(pts)) < 0.1

    def test_all_zero_selectivities_fall_back_to_uniform(self):
        q = Box([0.0, 0.0], [0.5, 0.5])
        est = PtsHist(size=100, seed=4).fit([q], [0.0])
        assert est.model_size == 100

    def test_deterministic_given_seed(self, power2d_box_workload):
        train_q, train_s, test_q, _ = power2d_box_workload
        a = PtsHist(size=200, seed=7).fit(train_q, train_s).predict_many(test_q)
        b = PtsHist(size=200, seed=7).fit(train_q, train_s).predict_many(test_q)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, power2d_box_workload):
        train_q, train_s, test_q, _ = power2d_box_workload
        a = PtsHist(size=200, seed=1).fit(train_q, train_s).predict_many(test_q)
        b = PtsHist(size=200, seed=2).fit(train_q, train_s).predict_many(test_q)
        assert not np.array_equal(a, b)


class TestFitQuality:
    def test_accuracy_on_power_data(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        est = PtsHist(size=400, seed=0).fit(train_q, train_s)
        rms = np.sqrt(np.mean((est.predict_many(test_q) - test_s) ** 2))
        assert rms < 0.08

    def test_halfspace_queries(self, rng):
        queries = [
            Halfspace.through_point(rng.random(3), rng.normal(size=3))
            for _ in range(40)
        ]
        labels = np.array([range_volume(q, unit_box(3)) for q in queries])
        est = PtsHist(size=300, seed=0).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.08

    def test_ball_queries(self, rng):
        queries = [Ball(rng.random(3), 0.3 + 0.5 * rng.random()) for _ in range(40)]
        labels = np.array([range_volume(q, unit_box(3)) for q in queries])
        est = PtsHist(size=300, seed=0).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.08

    def test_high_dimensional_fit(self, rng):
        """PtsHist is the high-dimension method: it must stay usable at d=8."""
        queries = [
            Box.from_center(rng.random(8), rng.random(8), clip_to=unit_box(8))
            for _ in range(50)
        ]
        labels = np.array([q.volume() for q in queries])
        est = PtsHist(size=200, seed=0).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.15

    def test_linf_objective(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        inf_est = PtsHist(size=200, seed=0, objective="linf").fit(train_q, train_s)
        l2_est = PtsHist(size=200, seed=0).fit(train_q, train_s)
        inf_train = np.max(np.abs(inf_est.predict_many(train_q) - train_s))
        l2_train = np.max(np.abs(l2_est.predict_many(train_q) - train_s))
        assert inf_train <= l2_train + 1e-6

    def test_distribution_is_valid(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = PtsHist(size=100, seed=0).fit(train_q, train_s)
        dist = est.distribution
        assert isinstance(dist, DiscreteDistribution)
        assert np.sum(dist.weights) == pytest.approx(1.0)


class TestValidation:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PtsHist(size=0)

    def test_invalid_interior_fraction(self):
        with pytest.raises(ValueError):
            PtsHist(interior_fraction=1.5)

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            PtsHist(objective="l1")

    def test_domain_mismatch(self):
        est = PtsHist(domain=unit_box(3))
        with pytest.raises(ValueError):
            est.fit([Box([0.0, 0.0], [1.0, 1.0])], [0.5])
