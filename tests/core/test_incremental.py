"""Incremental retrain across the estimator registry.

The contract under test: after K feedback batches, an incrementally
maintained model matches a full refit on the union workload — bitwise
(well, to 1e-9) for the order-invariant tree histograms with a cold
solve, and within a stated accuracy tolerance for the estimators whose
incremental path is *structurally* different from a refit (PtsHist
freezes its point support; STHoles merges at different moments) or when
the solve is warm-started.
"""

import numpy as np
import pytest

from repro.baselines.stholes import STHoles
from repro.core import KdHist, PtsHist, QuadHist
from repro.core.incremental import assemble_design, split_warm_start

K_BATCHES = 3

#: Estimators whose partial_fit(warm_start=False) is numerically
#: equivalent to a refit on the union workload (order-invariant
#: partition + bitwise-identical design rows + the same cold solve).
EXACT = {
    "quadhist": lambda: QuadHist(tau=0.02),
    "kdhist": lambda: KdHist(tau=0.02),
}

#: Estimators where incremental ≠ refit by construction; these must stay
#: within an accuracy tolerance of the refit instead.
APPROXIMATE = {
    "ptshist": lambda: PtsHist(size=200, seed=3),
    "stholes": lambda: STHoles(max_buckets=200),
}

ALL = {**EXACT, **APPROXIMATE}


def _batches(queries, labels, k=K_BATCHES):
    size = (len(queries) + k - 1) // k
    for start in range(0, len(queries), size):
        yield queries[start : start + size], labels[start : start + size]


def _rms(est, queries, labels):
    return float(np.sqrt(np.mean((est.predict_many(queries) - labels) ** 2)))


class TestRegistryWideEquivalence:
    @pytest.mark.parametrize("name", sorted(EXACT))
    def test_cold_incremental_equals_refit(self, name, power2d_box_workload):
        train_q, train_s, test_q, _ = power2d_box_workload
        incremental = ALL[name]()
        for batch_q, batch_s in _batches(train_q, train_s):
            incremental.partial_fit(batch_q, batch_s, warm_start=False)
        refit = ALL[name]().fit(train_q, train_s)
        np.testing.assert_allclose(
            incremental.predict_many(test_q), refit.predict_many(test_q), atol=1e-9
        )
        assert incremental.model_size == refit.model_size

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_incremental_accuracy_tracks_refit(self, name, power2d_box_workload):
        """Warm-started incremental after K batches stays within tolerance
        of the union refit on held-out queries — for every registry
        estimator with a partial_fit (QuadHist, KdHist, PtsHist, STHoles).
        """
        train_q, train_s, test_q, test_s = power2d_box_workload
        incremental = ALL[name]()
        for batch_q, batch_s in _batches(train_q, train_s):
            incremental.partial_fit(batch_q, batch_s, warm_start=True)
        refit = ALL[name]().fit(train_q, train_s)
        assert _rms(incremental, test_q, test_s) <= _rms(refit, test_q, test_s) + 0.03

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_update_report_populated(self, name, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = ALL[name]()
        est.fit(train_q[:60], train_s[:60])
        assert est.update_report_ is None
        est.partial_fit(train_q[60:], train_s[60:], warm_start=True)
        report = est.update_report_
        assert report is not None
        assert report.rows_appended == len(train_q) - 60
        assert report.rows_total == len(train_q)
        assert report.warm_started is True
        assert report.seconds >= 0.0
        as_dict = report.to_dict()
        for key in ("rows_appended", "leaves_split", "columns_reused", "rung"):
            assert key in as_dict

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_warm_solve_reported(self, name, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = ALL[name]()
        est.fit(train_q[:60], train_s[:60])
        est.partial_fit(train_q[60:], train_s[60:], warm_start=True)
        assert est.solve_report_ is not None
        assert est.solve_report_.warm_started is True

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_restored_model_cannot_partial_fit(
        self, name, power2d_box_workload, tmp_path
    ):
        """Persisted artifacts drop the fit-time state (tree, history,
        design cache); partial_fit on a restored model must say so."""
        from repro.persistence import load_model, save_model

        train_q, train_s, _, _ = power2d_box_workload
        est = ALL[name]().fit(train_q[:60], train_s[:60])
        path = save_model(est, tmp_path / f"{name}.rma")
        restored = load_model(path)
        with pytest.raises(RuntimeError):
            restored.partial_fit(train_q[60:80], train_s[60:80])


class TestIncrementalHelpers:
    def test_assemble_design_reuses_and_appends(self):
        cached = np.arange(12, dtype=float).reshape(3, 4)
        # New column order: [old2, fresh, old0]; old1/old3 dropped.
        reused = np.array([True, False, True])
        origin = np.array([2, -1, 0])
        fresh_block = np.array([[10.0], [11.0], [12.0]])
        new_rows = np.array([[0.5, 0.6, 0.7]])
        out = assemble_design(cached, reused, origin, fresh_block, new_rows)
        expected = np.array(
            [
                [2.0, 10.0, 0.0],
                [6.0, 11.0, 4.0],
                [10.0, 12.0, 8.0],
                [0.5, 0.6, 0.7],
            ]
        )
        np.testing.assert_array_equal(out, expected)

    def test_split_warm_start_preserves_mass_by_volume(self):
        old = np.array([0.6, 0.4])
        # Old bucket 0 split into two equal halves; bucket 1 survives.
        reused = np.array([False, False, True])
        origin = np.array([0, 0, 1])
        new_volumes = np.array([0.5, 0.5, 1.0])
        old_volumes = np.array([1.0, 1.0])
        w0 = split_warm_start(old, reused, origin, new_volumes, old_volumes)
        assert w0.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(w0, [0.3, 0.3, 0.4])

    def test_split_warm_start_degenerate_falls_back_to_uniform(self):
        old = np.zeros(2)
        reused = np.array([True, True])
        origin = np.array([0, 1])
        volumes = np.ones(2)
        w0 = split_warm_start(old, reused, origin, volumes, volumes)
        np.testing.assert_allclose(w0, [0.5, 0.5])
