"""``predict_many`` is the scalar ``predict`` loop, only faster.

The batch prediction path (``_predict_batch`` + the base-class
``predict_many`` wrapper) must be observationally equivalent to calling
``predict`` once per query — for every registered estimator, every query
class, and the base class's NaN/clamp semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.stholes import STHoles
from repro.core.arrangement_erm import ArrangementERM
from repro.core.estimator import SelectivityEstimator
from repro.core.quadhist import QuadHist
from repro.core.registry import estimator_factories, make_estimator
from repro.geometry import Ball, Box, Halfspace

from tests.core.test_estimator_properties import box_workloads

ATOL = 1e-12

_TRAIN_RNG = np.random.default_rng(2022)
TRAIN_QUERIES = [
    Box(lo, lo + w)
    for lo, w in zip(
        _TRAIN_RNG.random((24, 2)) * 0.6, 0.05 + _TRAIN_RNG.random((24, 2)) * 0.35
    )
]
TRAIN_LABELS = [q.volume() for q in TRAIN_QUERIES]  # uniform-consistent

BOX_PROBES = [
    Box([0.2, 0.3], [0.6, 0.8]),
    Box([0.0, 0.0], [1.0, 1.0]),  # full domain
    Box([0.45, 0.1], [0.45, 0.9]),  # zero-width
    Box([0.8, 0.8], [0.99, 0.99]),
    Box([0.0, 0.4], [0.3, 0.5]),
]
HALFSPACE_PROBES = [
    Halfspace([1.0, 0.0], 0.5),
    Halfspace([-0.3, 1.0], 0.4),
    Halfspace([1.0, 1.0], 1.6),
]
BALL_PROBES = [
    Ball([0.5, 0.5], 0.3),
    Ball([0.1, 0.9], 0.15),
]
MIXED_PROBES = BOX_PROBES + HALFSPACE_PROBES + BALL_PROBES


def _extra_estimators():
    return {
        "stholes": lambda: STHoles(max_buckets=200),
        "arrangement-histogram": lambda: ArrangementERM(mode="histogram"),
        "arrangement-discrete": lambda: ArrangementERM(
            mode="discrete", samples=512, seed=3
        ),
    }


@pytest.fixture(scope="module")
def fitted():
    """Every registered estimator plus the non-registry ones, fitted once."""
    estimators = {}
    for name in sorted(estimator_factories()):
        estimators[name] = make_estimator(name, train_size=len(TRAIN_QUERIES))
    for name, factory in _extra_estimators().items():
        estimators[name] = factory()
    for est in estimators.values():
        est.fit(TRAIN_QUERIES, TRAIN_LABELS)
    return estimators


ALL_NAMES = sorted(estimator_factories()) + sorted(_extra_estimators())


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize(
        "probes",
        [BOX_PROBES, HALFSPACE_PROBES, BALL_PROBES, MIXED_PROBES],
        ids=["boxes", "halfspaces", "balls", "mixed"],
    )
    def test_predict_many_matches_scalar_loop(self, fitted, name, probes):
        est = fitted[name]
        expected = np.array([est.predict(q) for q in probes])
        got = est.predict_many(probes)
        assert got.shape == (len(probes),)
        np.testing.assert_allclose(got, expected, atol=ATOL, rtol=0)
        assert np.all((got >= 0.0) & (got <= 1.0))

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_empty_workload(self, fitted, name):
        result = fitted[name].predict_many([])
        assert result.shape == (0,)

    @settings(max_examples=25, deadline=None)
    @given(workload=box_workloads())
    def test_quadhist_property(self, workload):
        queries, labels = workload
        est = QuadHist(tau=0.05).fit(queries, labels)
        expected = np.array([est.predict(q) for q in queries])
        np.testing.assert_allclose(
            est.predict_many(queries), expected, atol=ATOL, rtol=0
        )


class _ScriptedEstimator(SelectivityEstimator):
    """Replays a fixed raw-output script through both prediction paths."""

    def __init__(self, raw, batch_shape=None):
        super().__init__()
        self._raw = [float(v) for v in raw]
        self._batch_shape = batch_shape
        self._cursor = 0

    def _fit(self, training):
        pass

    def _predict_one(self, query):
        value = self._raw[self._cursor % len(self._raw)]
        self._cursor += 1
        return value

    def _predict_batch(self, queries):
        if self._batch_shape is not None:
            return np.zeros(self._batch_shape)
        return np.array([self._raw[i % len(self._raw)] for i in range(len(queries))])

    @property
    def model_size(self):
        return 1


class TestBaseClassSemantics:
    RAW = [np.nan, np.inf, -np.inf, -0.25, 1.75, 0.3]
    EXPECTED = [0.5, 0.5, 0.5, 0.0, 1.0, 0.3]

    def _fitted(self, **kwargs):
        est = _ScriptedEstimator(self.RAW, **kwargs)
        return est.fit([Box([0.0, 0.0], [1.0, 1.0])], [0.5])

    def test_non_finite_maps_to_half_and_finite_clamps(self):
        est = self._fitted()
        got = est.predict_many(BOX_PROBES + [BOX_PROBES[0]])  # 6 probes
        np.testing.assert_array_equal(got, self.EXPECTED)

    def test_scalar_loop_applies_identical_semantics(self):
        est = self._fitted()
        scalar = [est.predict(BOX_PROBES[0]) for _ in self.RAW]
        assert scalar == self.EXPECTED

    def test_wrong_batch_shape_raises(self):
        est = self._fitted(batch_shape=(2,))
        with pytest.raises(ValueError, match="shape"):
            est.predict_many(BOX_PROBES)
