"""Hypothesis property tests on estimator invariants.

These go beyond example-based tests: for *arbitrary* small workloads the
learners must produce valid distributions (weights on the simplex, buckets
partitioning the domain) and predictions consistent with distribution
semantics (monotone in query growth, bounded by 0/1).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PtsHist, QuadHist
from repro.core.registry import estimator_factories
from repro.geometry import Box, unit_box


@st.composite
def box_workloads(draw):
    """A small arbitrary 2-D box workload with labels in [0, 1]."""
    n = draw(st.integers(3, 10))
    queries = []
    labels = []
    for _ in range(n):
        cx = draw(st.floats(0.05, 0.95, allow_nan=False))
        cy = draw(st.floats(0.05, 0.95, allow_nan=False))
        wx = draw(st.floats(0.05, 0.9, allow_nan=False))
        wy = draw(st.floats(0.05, 0.9, allow_nan=False))
        queries.append(Box.from_center([cx, cy], [wx, wy], clip_to=unit_box(2)))
        labels.append(draw(st.floats(0.0, 1.0, allow_nan=False)))
    return queries, labels


class TestQuadHistProperties:
    @settings(max_examples=25, deadline=None)
    @given(box_workloads())
    def test_leaves_always_partition_domain(self, workload):
        queries, labels = workload
        est = QuadHist(tau=0.05).fit(queries, labels)
        assert sum(b.volume() for b in est.leaf_boxes()) == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(box_workloads())
    def test_weights_always_on_simplex(self, workload):
        queries, labels = workload
        est = QuadHist(tau=0.05).fit(queries, labels)
        weights = est.distribution.weights
        assert np.all(weights >= -1e-12)
        assert np.sum(weights) == pytest.approx(1.0, abs=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(box_workloads())
    def test_monotone_under_query_growth(self, workload):
        queries, labels = workload
        est = QuadHist(tau=0.05).fit(queries, labels)
        inner = Box([0.3, 0.3], [0.6, 0.6])
        outer = Box([0.2, 0.2], [0.8, 0.8])
        assert est.predict(inner) <= est.predict(outer) + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(box_workloads())
    def test_domain_query_predicts_one(self, workload):
        queries, labels = workload
        est = QuadHist(tau=0.05).fit(queries, labels)
        assert est.predict(unit_box(2)) == pytest.approx(1.0, abs=1e-6)


class TestPtsHistProperties:
    @settings(max_examples=25, deadline=None)
    @given(box_workloads(), st.integers(10, 80))
    def test_support_size_and_simplex(self, workload, size):
        queries, labels = workload
        est = PtsHist(size=size, seed=0).fit(queries, labels)
        assert est.model_size == size
        weights = est.distribution.weights
        assert np.all(weights >= -1e-12)
        assert np.sum(weights) == pytest.approx(1.0, abs=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(box_workloads())
    def test_support_inside_domain(self, workload):
        queries, labels = workload
        est = PtsHist(size=60, seed=0).fit(queries, labels)
        assert np.all(unit_box(2).contains(est.distribution.points))

    @settings(max_examples=15, deadline=None)
    @given(box_workloads())
    def test_monotone_under_query_growth(self, workload):
        queries, labels = workload
        est = PtsHist(size=60, seed=0).fit(queries, labels)
        inner = Box([0.25, 0.25], [0.55, 0.55])
        outer = Box([0.1, 0.1], [0.9, 0.9])
        assert est.predict(inner) <= est.predict(outer) + 1e-9


class TestRegistryWidePredictionBounds:
    """Every registered estimator returns a selectivity in [0, 1] for any
    workload — the base-class clamp makes this an unconditional invariant,
    and registration alone is enough to be covered here."""

    @pytest.mark.parametrize("name", sorted(estimator_factories()))
    @settings(max_examples=5, deadline=None)
    @given(box_workloads())
    def test_predictions_always_in_unit_interval(self, name, workload):
        queries, labels = workload
        est = estimator_factories()[name](len(queries))
        est.fit(queries, labels)
        probes = [
            Box([0.3, 0.3], [0.6, 0.6]),
            Box([0.01, 0.01], [0.99, 0.99]),
            Box([0.5, 0.5], [0.500001, 0.500001]),
            unit_box(2),
            *queries[:3],
        ]
        for probe in probes:
            prediction = est.predict(probe)
            assert np.isfinite(prediction)
            assert 0.0 <= prediction <= 1.0
