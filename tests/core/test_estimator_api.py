"""Shared estimator API contracts across all implementations."""

import numpy as np
import pytest

from repro.baselines import Isomer, MeanEstimator, QuickSel, STHoles, UniformEstimator
from repro.core import ArrangementERM, GaussianMixtureHist, KdHist, PtsHist, QuadHist
from repro.core.estimator import NotFittedError
from repro.geometry import Box

ALL_ESTIMATORS = [
    lambda: QuadHist(tau=0.05),
    lambda: PtsHist(size=50),
    lambda: ArrangementERM(mode="discrete", samples=500),
    lambda: ArrangementERM(mode="histogram"),
    lambda: GaussianMixtureHist(components=40),
    lambda: KdHist(tau=0.05),
    lambda: Isomer(max_buckets=500),
    lambda: STHoles(max_buckets=60),
    lambda: QuickSel(),
    lambda: UniformEstimator(),
    lambda: MeanEstimator(),
]


@pytest.fixture
def tiny_workload(rng):
    queries = [
        Box.from_center(rng.random(2), rng.random(2), clip_to=Box([0, 0], [1, 1]))
        for _ in range(12)
    ]
    queries = [q for q in queries if q.volume() > 0][:10]
    labels = np.clip([q.volume() * 0.8 for q in queries], 0, 1)
    return queries, labels


@pytest.mark.parametrize("factory", ALL_ESTIMATORS)
class TestAPIContracts:
    def test_predict_before_fit_raises(self, factory):
        with pytest.raises(NotFittedError):
            factory().predict(Box([0.0, 0.0], [0.5, 0.5]))

    def test_fit_returns_self(self, factory, tiny_workload):
        est = factory()
        assert est.fit(*tiny_workload) is est

    def test_predictions_in_unit_interval(self, factory, tiny_workload, rng):
        est = factory().fit(*tiny_workload)
        for _ in range(10):
            q = Box.from_center(rng.random(2), rng.random(2), clip_to=Box([0, 0], [1, 1]))
            assert 0.0 <= est.predict(q) <= 1.0

    def test_predict_many_matches_predict(self, factory, tiny_workload):
        queries, labels = tiny_workload
        est = factory().fit(queries, labels)
        batch = est.predict_many(queries[:3])
        singles = [est.predict(q) for q in queries[:3]]
        np.testing.assert_allclose(batch, singles)

    def test_model_size_positive(self, factory, tiny_workload):
        est = factory().fit(*tiny_workload)
        assert est.model_size >= 1

    def test_repr_shows_fitted_state(self, factory, tiny_workload):
        est = factory()
        assert "unfitted" in repr(est)
        est.fit(*tiny_workload)
        assert "fitted" in repr(est)
