"""GaussianMixtureHist — the future-work extension (Section 6)."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core import GaussianMixtureHist
from repro.geometry import Ball, Box, Halfspace, unit_box
from repro.geometry.volume import range_volume


class TestComponentMasses:
    @pytest.fixture
    def single_component(self):
        est = GaussianMixtureHist(components=1, bandwidths=(0.1,), seed=0)
        est._means = np.array([[0.5, 0.5]])
        est._sigmas = np.array([[0.1, 0.1]])
        est._weights = np.array([1.0])
        est._fitted = True
        from scipy.stats import qmc

        sampler = qmc.Sobol(d=2, scramble=True, seed=1)
        est._qmc_normal = norm.ppf(np.clip(sampler.random(2048), 1e-9, 1 - 1e-9))
        return est

    def test_box_mass_is_cdf_product(self, single_component):
        box = Box([0.4, 0.4], [0.6, 0.6])
        expected = (norm.cdf(1.0) - norm.cdf(-1.0)) ** 2
        assert single_component.predict(box) == pytest.approx(expected, abs=1e-9)

    def test_halfspace_mass_via_projection(self, single_component):
        half = Halfspace([1.0, 0.0], 0.5)  # x >= mean -> mass 1/2
        assert single_component.predict(half) == pytest.approx(0.5, abs=1e-9)

    def test_diagonal_halfspace(self, single_component):
        # a=(1,1), b=1.0: a.X ~ N(1.0, 0.02) -> P = 1/2.
        half = Halfspace([1.0, 1.0], 1.0)
        assert single_component.predict(half) == pytest.approx(0.5, abs=1e-9)

    def test_ball_mass_via_qmc(self, single_component):
        ball = Ball([0.5, 0.5], 0.2)  # 2 sigma: P(chi2_2 <= 4) ~ 0.8647
        expected = 1.0 - np.exp(-2.0)
        assert single_component.predict(ball) == pytest.approx(expected, abs=0.02)


class TestFitting:
    def test_fits_uniform_labels(self, rng):
        queries = [
            Box.from_center(rng.random(2), rng.random(2), clip_to=unit_box(2))
            for _ in range(40)
        ]
        labels = np.array([q.volume() for q in queries])
        est = GaussianMixtureHist(components=150, seed=0).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.03

    def test_accuracy_on_power_data(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        est = GaussianMixtureHist(components=300, seed=0).fit(train_q, train_s)
        rms = np.sqrt(np.mean((est.predict_many(test_q) - test_s) ** 2))
        assert rms < 0.08

    def test_halfspace_workload(self, rng):
        queries = [
            Halfspace.through_point(rng.random(3), rng.normal(size=3))
            for _ in range(40)
        ]
        labels = np.array([range_volume(q, unit_box(3)) for q in queries])
        est = GaussianMixtureHist(components=200, seed=0).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.08

    def test_deterministic_given_seed(self, power2d_box_workload):
        train_q, train_s, test_q, _ = power2d_box_workload
        a = GaussianMixtureHist(components=100, seed=3).fit(train_q, train_s)
        b = GaussianMixtureHist(components=100, seed=3).fit(train_q, train_s)
        np.testing.assert_array_equal(a.predict_many(test_q), b.predict_many(test_q))

    def test_weights_on_simplex(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = GaussianMixtureHist(components=100, seed=0).fit(train_q, train_s)
        assert np.all(est._weights >= -1e-12)
        assert np.sum(est._weights) == pytest.approx(1.0, abs=1e-8)

    def test_linf_objective(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        inf_est = GaussianMixtureHist(components=100, seed=0, objective="linf").fit(
            train_q, train_s
        )
        l2_est = GaussianMixtureHist(components=100, seed=0).fit(train_q, train_s)
        inf_train = np.max(np.abs(inf_est.predict_many(train_q) - train_s))
        l2_train = np.max(np.abs(l2_est.predict_many(train_q) - train_s))
        assert inf_train <= l2_train + 1e-6


class TestDistributionSemantics:
    def test_density_integrates_to_one(self, power2d_box_workload, rng):
        train_q, train_s, _, _ = power2d_box_workload
        est = GaussianMixtureHist(components=80, seed=0).fit(train_q, train_s)
        # MC integral over a generous bounding region (mixtures have
        # unbounded support but the mass far outside [0,1]^2 is tiny).
        pts = rng.uniform(-0.5, 1.5, size=(60_000, 2))
        integral = float(np.mean(est.density(pts)) * 4.0)
        assert integral == pytest.approx(1.0, abs=0.1)

    def test_sampling_matches_predictions(self, power2d_box_workload, rng):
        train_q, train_s, _, _ = power2d_box_workload
        est = GaussianMixtureHist(components=80, seed=0).fit(train_q, train_s)
        sample = est.sample(10_000, rng)
        for q in train_q[:5]:
            empirical = float(np.mean(q.contains(sample)))
            assert empirical == pytest.approx(est.predict(q), abs=0.03)

    def test_unbounded_support(self, power2d_box_workload, rng):
        """Unlike histograms, the mixture assigns (tiny) density outside
        the unit domain — the Gaussian-mixture feature the paper calls out."""
        train_q, train_s, _, _ = power2d_box_workload
        est = GaussianMixtureHist(components=80, seed=0).fit(train_q, train_s)
        assert est.density(np.array([1.2, 1.2])) > 0.0


class TestValidation:
    def test_invalid_components(self):
        with pytest.raises(ValueError):
            GaussianMixtureHist(components=0)

    def test_invalid_bandwidths(self):
        with pytest.raises(ValueError):
            GaussianMixtureHist(bandwidths=())
        with pytest.raises(ValueError):
            GaussianMixtureHist(bandwidths=(0.1, -0.2))

    def test_invalid_interior_fraction(self):
        with pytest.raises(ValueError):
            GaussianMixtureHist(interior_fraction=2.0)

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            GaussianMixtureHist(objective="l0")
