"""TrainingSet / LabeledQuery containers."""

import numpy as np
import pytest

from repro.core import LabeledQuery, TrainingSet
from repro.geometry import Box, Halfspace


class TestLabeledQuery:
    def test_valid(self):
        lq = LabeledQuery(Box([0.0], [0.5]), 0.3)
        assert lq.selectivity == 0.3

    def test_rejects_out_of_range_selectivity(self):
        with pytest.raises(ValueError):
            LabeledQuery(Box([0.0], [0.5]), 1.5)

    def test_rejects_non_range(self):
        with pytest.raises(TypeError):
            LabeledQuery("not a range", 0.5)


class TestTrainingSet:
    def test_construction_and_iteration(self):
        queries = [Box([0.0], [0.5]), Box([0.2], [0.9])]
        ts = TrainingSet(queries, [0.5, 0.7])
        assert len(ts) == 2
        assert ts.dim == 1
        samples = list(ts)
        assert samples[0].selectivity == 0.5
        assert samples[1].query is queries[1]

    def test_getitem(self):
        ts = TrainingSet([Box([0.0], [1.0])], [1.0])
        assert ts[0].selectivity == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TrainingSet([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            TrainingSet([Box([0.0], [1.0])], [0.5, 0.6])

    def test_rejects_mixed_dimensions(self):
        with pytest.raises(ValueError):
            TrainingSet([Box([0.0], [1.0]), Box([0.0, 0.0], [1.0, 1.0])], [0.5, 0.5])

    def test_rejects_invalid_selectivity(self):
        with pytest.raises(ValueError):
            TrainingSet([Box([0.0], [1.0])], [1.2])

    def test_mixed_range_types_allowed(self):
        ts = TrainingSet(
            [Box([0.0, 0.0], [1.0, 1.0]), Halfspace([1.0, 0.0], 0.5)], [1.0, 0.5]
        )
        assert ts.dim == 2

    def test_subset(self):
        queries = [Box([0.0], [w]) for w in (0.2, 0.5, 0.8)]
        ts = TrainingSet(queries, [0.2, 0.5, 0.8])
        sub = ts.subset([0, 2])
        assert len(sub) == 2
        np.testing.assert_allclose(sub.selectivities, [0.2, 0.8])

    def test_clips_tiny_float_noise(self):
        ts = TrainingSet([Box([0.0], [1.0])], [1.0 + 1e-13])
        assert ts.selectivities[0] == 1.0

    def test_rejects_nan_selectivity(self):
        """NaN passes both < and > comparisons, so it needs its own check."""
        with pytest.raises(ValueError):
            TrainingSet([Box([0.0], [1.0])], [float("nan")])

    def test_rejects_infinite_selectivity(self):
        with pytest.raises(ValueError):
            TrainingSet([Box([0.0], [1.0])], [float("inf")])
