"""Typed estimator configs: round-tripping, registry factories, deprecation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    ArrangementERMConfig,
    GaussianMixtureConfig,
    PtsHistConfig,
    QuadHist,
    QuadHistConfig,
    available_estimators,
    default_config,
    estimator_class,
    make_estimator,
)
from repro.core.config import CONFIG_TYPES, config_from_dict
from repro.geometry.ranges import Box


def test_available_estimators_lists_registry():
    names = available_estimators()
    assert names == sorted(names)
    for expected in ("quadhist", "kdhist", "ptshist", "gmm", "arrangement",
                     "isomer", "quicksel", "stholes", "uniform", "mean"):
        assert expected in names


@pytest.mark.parametrize("name", sorted(CONFIG_TYPES))
def test_config_dict_roundtrip(name):
    config = default_config(name, train_size=120)
    rebuilt = config_from_dict(name, config.to_dict())
    assert rebuilt == config


def test_config_roundtrip_with_domain():
    domain = Box([0.0, 0.0], [1.0, 2.0])
    config = QuadHistConfig(tau=0.02, domain=domain)
    data = config.to_dict()
    assert data["domain"] == {"lows": [0.0, 0.0], "highs": [1.0, 2.0]}
    rebuilt = config_from_dict("quadhist", data)
    assert rebuilt.domain.lows.tolist() == [0.0, 0.0]
    assert rebuilt.tau == 0.02


def test_config_rejects_unknown_keys():
    with pytest.raises((TypeError, ValueError)):
        config_from_dict("quadhist", {"tau": 0.1, "bogus": 1})


def test_config_from_dict_unknown_estimator():
    with pytest.raises(KeyError, match="quadhist"):
        config_from_dict("no-such", {})


def test_estimator_config_property_roundtrips():
    """from_config(est.config) rebuilds an equivalent estimator."""
    config = PtsHistConfig(size=64, interior_fraction=0.5, seed=3)
    estimator = estimator_class("ptshist").from_config(config)
    assert estimator.config == config
    clone = type(estimator).from_config(estimator.config)
    assert clone.config == config


def test_bandwidths_restore_as_tuple():
    config = GaussianMixtureConfig(bandwidths=(0.1, 0.2))
    rebuilt = config_from_dict("gmm", config.to_dict())
    assert rebuilt.bandwidths == (0.1, 0.2)
    assert isinstance(rebuilt.bandwidths, tuple)


def test_make_estimator_unknown_name_lists_choices():
    with pytest.raises(KeyError) as excinfo:
        make_estimator("nope")
    assert "quadhist" in str(excinfo.value)


def test_make_estimator_overrides():
    estimator = make_estimator("quadhist", train_size=100, tau=0.5)
    assert estimator.tau == 0.5
    with pytest.raises(TypeError):
        make_estimator("quadhist", bogus_knob=1)


def test_make_estimator_explicit_config():
    config = ArrangementERMConfig(mode="histogram", samples=256)
    estimator = make_estimator("arrangement", config=config)
    assert estimator.mode == "histogram"


def test_default_config_scales_with_train_size():
    small = default_config("quadhist", train_size=50)
    large = default_config("quadhist", train_size=500)
    assert large.max_leaves > small.max_leaves


def test_kwargs_construction_warns_deprecation():
    with pytest.deprecated_call():
        QuadHist(tau=0.02)


def test_from_config_does_not_warn(recwarn):
    QuadHist.from_config(QuadHistConfig(tau=0.02))
    assert not [w for w in recwarn.list if w.category is DeprecationWarning]


def test_from_config_type_checked():
    with pytest.raises(TypeError, match="QuadHistConfig"):
        QuadHist.from_config(PtsHistConfig())


def test_config_fields_are_frozen():
    config = QuadHistConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.tau = 0.5
