"""QuadHist.partial_fit — incremental feedback absorption."""

import numpy as np
import pytest

from repro.core import QuadHist


class TestPartialFit:
    def test_unfitted_partial_fit_equals_fit(self, power2d_box_workload):
        train_q, train_s, test_q, _ = power2d_box_workload
        a = QuadHist(tau=0.02)
        a.partial_fit(train_q, train_s)
        b = QuadHist(tau=0.02).fit(train_q, train_s)
        np.testing.assert_array_equal(a.predict_many(test_q), b.predict_many(test_q))

    def test_incremental_equals_batch(self, power2d_box_workload):
        """Lemma A.4 in action: feeding feedback in two batches yields the
        same model as one batch (no leaf cap)."""
        train_q, train_s, test_q, _ = power2d_box_workload
        half = len(train_q) // 2
        incremental = QuadHist(tau=0.02).fit(train_q[:half], train_s[:half])
        incremental.partial_fit(train_q[half:], train_s[half:])
        batch = QuadHist(tau=0.02).fit(train_q, train_s)
        np.testing.assert_allclose(
            incremental.predict_many(test_q), batch.predict_many(test_q), atol=1e-9
        )
        assert incremental.model_size == batch.model_size

    def test_returns_self(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = QuadHist(tau=0.05)
        assert est.partial_fit(train_q[:10], train_s[:10]) is est

    def test_error_improves_with_more_feedback(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        est = QuadHist(tau=0.005)
        est.partial_fit(train_q[:20], train_s[:20])
        early = np.sqrt(np.mean((est.predict_many(test_q) - test_s) ** 2))
        est.partial_fit(train_q[20:], train_s[20:])
        late = np.sqrt(np.mean((est.predict_many(test_q) - test_s) ** 2))
        assert late <= early

    def test_dimension_mismatch_rejected(self, power2d_box_workload):
        from repro.geometry import Box

        train_q, train_s, _, _ = power2d_box_workload
        est = QuadHist(tau=0.05).fit(train_q, train_s)
        with pytest.raises(ValueError):
            est.partial_fit([Box([0.0], [0.5])], [0.2])

    def test_many_small_batches(self, power2d_box_workload):
        train_q, train_s, test_q, _ = power2d_box_workload
        est = QuadHist(tau=0.02)
        for i in range(0, len(train_q), 10):
            est.partial_fit(train_q[i : i + 10], train_s[i : i + 10])
        batch = QuadHist(tau=0.02).fit(train_q, train_s)
        np.testing.assert_allclose(
            est.predict_many(test_q), batch.predict_many(test_q), atol=1e-9
        )
