"""QuadHist — Algorithms 1 & 2, the stability lemma, and fit quality."""

import numpy as np
import pytest

from repro.core import QuadHist
from repro.distributions import HistogramDistribution
from repro.geometry import Ball, Box, Halfspace, unit_box


def _leaf_set(est: QuadHist) -> set:
    return {b for b in est.leaf_boxes()}


class TestBucketDesign:
    def test_no_split_below_threshold(self):
        """A query whose density share never exceeds tau leaves one bucket."""
        q = Box([0.0, 0.0], [1.0, 1.0])
        est = QuadHist(tau=0.5).fit([q], [0.3])
        assert est.model_size == 1

    def test_dense_query_splits(self):
        q = Box([0.0, 0.0], [0.25, 0.25])
        est = QuadHist(tau=0.05).fit([q], [0.9])
        assert est.model_size > 1

    def test_splitting_is_local_to_query(self):
        """Leaves far from a small dense query stay coarse."""
        q = Box([0.0, 0.0], [0.25, 0.25])
        est = QuadHist(tau=0.05).fit([q], [0.9])
        leaves = est.leaf_boxes()
        far = [b for b in leaves if b.lows[0] >= 0.5 and b.lows[1] >= 0.5]
        assert len(far) == 1  # the whole upper-right quadrant stayed intact

    def test_smaller_tau_gives_more_buckets(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        coarse = QuadHist(tau=0.05).fit(train_q, train_s)
        fine = QuadHist(tau=0.005).fit(train_q, train_s)
        assert fine.model_size > coarse.model_size

    def test_max_leaves_cap(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = QuadHist(tau=0.001, max_leaves=60).fit(train_q, train_s)
        assert est.model_size <= 60

    def test_max_depth_cap(self):
        q = Box([0.0, 0.0], [1e-4, 1e-4])
        est = QuadHist(tau=1e-6, max_depth=3).fit([q], [1.0])
        # Depth 3 in 2-D allows at most 4^3 = 64 leaves.
        assert est.model_size <= 64

    def test_degenerate_query_is_skipped(self):
        q = Box([0.5, 0.0], [0.5, 1.0])  # zero volume
        est = QuadHist(tau=0.01).fit([q], [0.4])
        assert est.model_size == 1

    def test_zero_selectivity_query_never_splits(self):
        q = Box([0.0, 0.0], [0.5, 0.5])
        est = QuadHist(tau=0.001).fit([q], [0.0])
        assert est.model_size == 1

    def test_leaves_partition_domain(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = QuadHist(tau=0.01).fit(train_q, train_s)
        assert sum(b.volume() for b in est.leaf_boxes()) == pytest.approx(1.0)


class TestStabilityLemmaA4:
    def test_order_invariance(self, rng, power2d_box_workload):
        """Lemma A.4: bucket design is independent of query order."""
        train_q, train_s, _, _ = power2d_box_workload
        est1 = QuadHist(tau=0.02).fit(train_q, train_s)
        order = rng.permutation(len(train_q))
        est2 = QuadHist(tau=0.02).fit(
            [train_q[i] for i in order], train_s[order]
        )
        assert _leaf_set(est1) == _leaf_set(est2)

    def test_full_model_determinism(self, power2d_box_workload):
        """Same workload -> identical predictions (bucket design + weights
        are both deterministic)."""
        train_q, train_s, test_q, _ = power2d_box_workload
        a = QuadHist(tau=0.02).fit(train_q, train_s).predict_many(test_q)
        b = QuadHist(tau=0.02).fit(train_q, train_s).predict_many(test_q)
        np.testing.assert_array_equal(a, b)


class TestFitQuality:
    def test_perfect_on_uniform_labels(self, rng):
        """Labels = volumes (the uniform distribution's selectivities) are
        fit exactly by some histogram, so training error ~ 0."""
        queries = [
            Box.from_center(rng.random(2), rng.random(2), clip_to=unit_box(2))
            for _ in range(30)
        ]
        labels = np.array([q.volume() for q in queries])
        est = QuadHist(tau=0.05).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.max(np.abs(preds - labels)) < 0.02

    def test_learns_point_mass_region(self):
        """All mass in the lower-left quadrant is identified."""
        lower = Box([0.0, 0.0], [0.5, 0.5])
        upper = Box([0.5, 0.5], [1.0, 1.0])
        est = QuadHist(tau=0.3).fit([lower, upper], [1.0, 0.0])
        assert est.predict(lower) > 0.9
        assert est.predict(upper) < 0.1

    def test_accuracy_on_power_data(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        est = QuadHist(tau=0.005).fit(train_q, train_s)
        rms = np.sqrt(np.mean((est.predict_many(test_q) - test_s) ** 2))
        assert rms < 0.05

    def test_halfspace_queries_2d(self, rng):
        """Generic splitting rule works on halfspace training queries."""
        queries = [
            Halfspace.through_point(rng.random(2), rng.normal(size=2))
            for _ in range(25)
        ]
        # Uniform data: label = clipped volume.
        from repro.geometry.volume import range_volume

        labels = np.array([range_volume(q, unit_box(2)) for q in queries])
        est = QuadHist(tau=0.05).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.05

    def test_ball_queries_2d(self, rng):
        queries = [Ball(rng.random(2), 0.2 + 0.5 * rng.random()) for _ in range(25)]
        from repro.geometry.volume import range_volume

        labels = np.array([range_volume(q, unit_box(2)) for q in queries])
        est = QuadHist(tau=0.05).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.05

    def test_linf_objective_trains(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = QuadHist(tau=0.02, objective="linf").fit(train_q, train_s)
        train_linf = np.max(np.abs(est.predict_many(train_q) - train_s))
        l2_est = QuadHist(tau=0.02).fit(train_q, train_s)
        l2_linf = np.max(np.abs(l2_est.predict_many(train_q) - train_s))
        assert train_linf <= l2_linf + 1e-6

    def test_distribution_property_is_valid(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = QuadHist(tau=0.02).fit(train_q, train_s)
        dist = est.distribution
        assert isinstance(dist, HistogramDistribution)
        assert np.sum(dist.weights) == pytest.approx(1.0)
        dist.validate()  # buckets must be disjoint


class TestValidation:
    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            QuadHist(tau=0.0)
        with pytest.raises(ValueError):
            QuadHist(tau=1.0)

    def test_invalid_caps(self):
        with pytest.raises(ValueError):
            QuadHist(max_leaves=0)
        with pytest.raises(ValueError):
            QuadHist(max_depth=0)

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            QuadHist(objective="l7")

    def test_domain_mismatch(self):
        est = QuadHist(domain=unit_box(3))
        with pytest.raises(ValueError):
            est.fit([Box([0.0, 0.0], [1.0, 1.0])], [0.5])
