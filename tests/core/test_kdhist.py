"""KdHist — binary-split histogram for higher dimensions."""

import numpy as np
import pytest

from repro.core import KdHist, QuadHist
from repro.geometry import Ball, Box, Halfspace, unit_box
from repro.geometry.volume import range_volume


class TestBucketDesign:
    def test_no_split_below_threshold(self):
        est = KdHist(tau=0.5).fit([Box([0.0, 0.0], [1.0, 1.0])], [0.3])
        assert est.model_size == 1

    def test_dense_query_splits(self):
        est = KdHist(tau=0.05).fit([Box([0.0, 0.0], [0.25, 0.25])], [0.9])
        assert est.model_size > 1

    def test_leaves_partition_domain(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = KdHist(tau=0.01).fit(train_q, train_s)
        assert sum(b.volume() for b in est.leaf_boxes()) == pytest.approx(1.0)

    def test_binary_splits_respect_leaf_cap_exactly(self, power2d_box_workload):
        """Unlike QuadHist's 2^d-way splits, the binary split can honour
        a tight bucket budget in any dimension."""
        train_q, train_s, _, _ = power2d_box_workload
        est = KdHist(tau=0.001, max_leaves=37).fit(train_q, train_s)
        assert est.model_size <= 37

    def test_high_dimension_still_refines(self, rng):
        """The motivating case: at d = 10 QuadHist cannot split under a
        4n bucket cap (2^10 children), KdHist can."""
        d = 10
        queries = [
            Box.from_center(rng.random(d), rng.random(d), clip_to=unit_box(d))
            for _ in range(30)
        ]
        # High selectivity in small boxes = high density -> splits demanded.
        labels = np.full(len(queries), 0.5)
        cap = 120
        kd = KdHist(tau=0.01, max_leaves=cap).fit(queries, labels)
        quad = QuadHist(tau=0.01, max_leaves=cap).fit(queries, labels)
        assert quad.model_size == 1  # cannot split: 2^10 > cap
        assert kd.model_size > 1

    def test_order_invariance(self, rng, power2d_box_workload):
        """Same argument as Lemma A.4 applies to binary midpoint splits."""
        train_q, train_s, _, _ = power2d_box_workload
        a = KdHist(tau=0.02).fit(train_q, train_s)
        order = rng.permutation(len(train_q))
        b = KdHist(tau=0.02).fit([train_q[i] for i in order], train_s[order])
        assert {bx for bx in a.leaf_boxes()} == {bx for bx in b.leaf_boxes()}


class TestFitQuality:
    def test_accuracy_on_power_data(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        est = KdHist(tau=0.005).fit(train_q, train_s)
        rms = np.sqrt(np.mean((est.predict_many(test_q) - test_s) ** 2))
        assert rms < 0.05

    def test_comparable_to_quadhist_in_2d(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        kd = KdHist(tau=0.005).fit(train_q, train_s)
        quad = QuadHist(tau=0.005).fit(train_q, train_s)
        rms_kd = np.sqrt(np.mean((kd.predict_many(test_q) - test_s) ** 2))
        rms_quad = np.sqrt(np.mean((quad.predict_many(test_q) - test_s) ** 2))
        assert rms_kd <= rms_quad * 3

    def test_beats_quadhist_in_high_dimension_under_cap(self, rng):
        d = 8
        from repro.data import forest_like, WorkloadSpec, generate_workload, label_queries

        data = forest_like(rows=8_000).numeric_projection(d, rng)
        spec = WorkloadSpec(query_kind="box", center_kind="data")
        train = generate_workload(80, d, rng, spec=spec, dataset=data)
        test = generate_workload(60, d, rng, spec=spec, dataset=data)
        train_s = label_queries(data, train)
        test_s = label_queries(data, test)
        cap = 200
        kd = KdHist(tau=0.01, max_leaves=cap).fit(train, train_s)
        quad = QuadHist(tau=0.01, max_leaves=cap, max_depth=10).fit(train, train_s)
        rms_kd = np.sqrt(np.mean((kd.predict_many(test) - test_s) ** 2))
        rms_quad = np.sqrt(np.mean((quad.predict_many(test) - test_s) ** 2))
        assert rms_kd <= rms_quad + 0.01

    def test_halfspace_queries(self, rng):
        queries = [
            Halfspace.through_point(rng.random(2), rng.normal(size=2))
            for _ in range(25)
        ]
        labels = np.array([range_volume(q, unit_box(2)) for q in queries])
        est = KdHist(tau=0.02).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.05

    def test_ball_queries(self, rng):
        queries = [Ball(rng.random(2), 0.2 + 0.5 * rng.random()) for _ in range(25)]
        labels = np.array([range_volume(q, unit_box(2)) for q in queries])
        est = KdHist(tau=0.02).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.05

    def test_distribution_is_valid(self, power2d_box_workload):
        train_q, train_s, _, _ = power2d_box_workload
        est = KdHist(tau=0.02).fit(train_q, train_s)
        est.distribution.validate()
        assert np.sum(est.distribution.weights) == pytest.approx(1.0)


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KdHist(tau=0.0)
        with pytest.raises(ValueError):
            KdHist(max_leaves=0)
        with pytest.raises(ValueError):
            KdHist(max_depth=0)
        with pytest.raises(ValueError):
            KdHist(objective="huber")
