"""Training-set sanitization policies and quarantine accounting
(acceptance criterion c: ≥10% corrupted pairs fit under ``drop`` with the
exact quarantine count reported)."""

import numpy as np
import pytest

from repro.core import QuadHist, TrainingSet
from repro.geometry import Ball, Box
from repro.robustness import ChaosConfig, ChaosMonkey, sanitize_training_data
from repro.robustness.errors import DataValidationError


def _clean_workload(rng, n=50):
    queries, labels = [], []
    for _ in range(n):
        center = rng.random(2) * 0.6 + 0.2
        q = Box(center - 0.1, center + 0.1)
        queries.append(q)
        labels.append(float(np.clip(q.volume() * 4, 0, 1)))
    return queries, labels


class TestPolicies:
    def test_raise_policy_rejects_first_anomaly(self, rng):
        queries, labels = _clean_workload(rng)
        labels[3] = float("nan")
        with pytest.raises(DataValidationError):
            sanitize_training_data(queries, labels, policy="raise")

    def test_drop_policy_quarantines_each_kind(self, rng):
        queries, labels = _clean_workload(rng, n=40)
        labels[0] = float("nan")
        labels[1] = float("inf")
        labels[2] = 1.7
        labels[3] = -0.4
        queries[4] = Box([0.5, 0.5], [0.5, 0.9])  # zero-volume side
        queries[5] = Ball([0.5, 0.5], 0.0)  # degenerate ball
        q2, l2, report = sanitize_training_data(queries, labels, policy="drop")
        assert len(q2) == 34
        assert report.quarantined == 6
        assert report.reasons == {
            "nan_label": 2,
            "out_of_range_label": 2,
            "degenerate_range": 2,
        }
        assert np.all((l2 >= 0) & (l2 <= 1))

    def test_clamp_policy_repairs_out_of_range(self, rng):
        queries, labels = _clean_workload(rng, n=10)
        labels[0] = 1.8
        labels[1] = -0.3
        labels[2] = float("nan")  # unrepairable even under clamp
        q2, l2, report = sanitize_training_data(queries, labels, policy="clamp")
        assert len(q2) == 9
        assert report.clamped == 2
        assert report.quarantined == 1
        assert l2[0] == 1.0 and l2[1] == 0.0

    def test_conflicting_duplicates_drop(self, rng):
        queries, labels = _clean_workload(rng, n=5)
        queries.append(queries[0])
        labels.append(min(1.0, labels[0] + 0.5))  # contradicts pair 0
        q2, _, report = sanitize_training_data(queries, labels, policy="drop")
        assert report.reasons.get("conflicting_duplicate") == 2
        assert len(q2) == 4

    def test_conflicting_duplicates_clamp_keeps_median(self, rng):
        queries, _ = _clean_workload(rng, n=3)
        qs = [queries[0]] * 3 + queries[1:]
        labels = [0.1, 0.5, 0.9, 0.2, 0.2]
        q2, l2, report = sanitize_training_data(qs, labels, policy="clamp")
        assert len(q2) == 3
        assert 0.5 in l2  # median survives
        assert report.reasons.get("conflicting_duplicate") == 2

    def test_agreeing_duplicates_kept(self, rng):
        queries, labels = _clean_workload(rng, n=5)
        queries.append(queries[0])
        labels.append(labels[0] + 0.01)
        q2, _, report = sanitize_training_data(queries, labels, policy="drop")
        assert len(q2) == 6
        assert report.quarantined == 0

    def test_non_range_objects_quarantined(self, rng):
        queries, labels = _clean_workload(rng, n=3)
        queries.append("not a range")
        labels.append(0.5)
        q2, _, report = sanitize_training_data(queries, labels, policy="drop")
        assert report.reasons == {"not_a_range": 1}
        assert len(q2) == 3

    def test_all_quarantined_raises_with_report(self):
        with pytest.raises(DataValidationError) as excinfo:
            sanitize_training_data([Box([0.1], [0.1])], [0.5], policy="drop")
        assert excinfo.value.report.quarantined == 1

    def test_unknown_policy_rejected(self, rng):
        queries, labels = _clean_workload(rng, n=3)
        with pytest.raises(ValueError):
            sanitize_training_data(queries, labels, policy="ignore")


class TestAcceptanceTenPercentCorruption:
    """A ≥10% corrupted training set fits under ``drop`` and reports the
    exact quarantine count."""

    def test_fit_with_drop_policy(self, rng):
        queries, labels = _clean_workload(rng, n=60)
        monkey = ChaosMonkey(
            ChaosConfig(feedback_corruption_rate=0.15, seed=7)
        )
        dirty_q, dirty_s, corrupted = monkey.corrupt_workload(queries, labels)
        assert len(corrupted) == 9  # 15% of 60

        model = QuadHist(tau=0.05).fit(dirty_q, dirty_s, policy="drop")
        report = model.sanitization_
        assert report.quarantined == len(corrupted)
        assert report.kept == 60 - len(corrupted)
        # The model is still a valid distribution and predicts sanely.
        weights = model.distribution.weights
        assert np.sum(weights) == pytest.approx(1.0, abs=1e-8)
        assert 0.0 <= model.predict(Box([0.2, 0.2], [0.8, 0.8])) <= 1.0

    def test_training_set_surfaces_quarantine(self, rng):
        queries, labels = _clean_workload(rng, n=30)
        monkey = ChaosMonkey(ChaosConfig(feedback_corruption_rate=0.2, seed=3))
        dirty_q, dirty_s, corrupted = monkey.corrupt_workload(queries, labels)
        ts = TrainingSet(dirty_q, dirty_s, policy="drop")
        assert ts.quarantined == len(corrupted)
        assert len(ts) == 30 - len(corrupted)

    def test_strict_fit_still_raises_on_dirty_data(self, rng):
        queries, labels = _clean_workload(rng, n=30)
        labels[0] = float("nan")
        with pytest.raises(DataValidationError):
            QuadHist(tau=0.05).fit(queries, labels)  # legacy strict default
