"""Solver fallback ladder: every rung is exercised and always yields a
valid simplex vector (acceptance criterion a)."""

import numpy as np
import pytest

from repro.core import PtsHist, QuadHist
from repro.geometry import Box
from repro.robustness import ChaosConfig, chaos
from repro.robustness.errors import DataValidationError
from repro.solvers import fit_simplex_weights_robust


@pytest.fixture
def system(rng):
    a = rng.random((30, 12))
    s = np.clip(rng.random(30) * 0.6, 0.0, 1.0)
    return a, s


def _assert_valid_simplex(w, n):
    assert w.shape == (n,)
    assert np.all(np.isfinite(w))
    assert np.all(w >= 0.0)
    assert np.sum(w) == pytest.approx(1.0, abs=1e-9)


class TestLadderRungs:
    def test_primary_rung_wins_when_healthy(self, system):
        a, s = system
        w, report = fit_simplex_weights_robust(a, s)
        _assert_valid_simplex(w, a.shape[1])
        assert report.rung == "penalty"
        assert report.fallback is False

    def test_pgd_rung(self, system):
        a, s = system
        with chaos(ChaosConfig(solver_fail_rungs=("penalty",))):
            w, report = fit_simplex_weights_robust(a, s)
        _assert_valid_simplex(w, a.shape[1])
        assert report.rung == "pgd"
        assert report.fallback is True

    def test_lstsq_project_rung(self, system):
        a, s = system
        with chaos(ChaosConfig(solver_fail_rungs=("penalty", "pgd"))):
            w, report = fit_simplex_weights_robust(a, s)
        _assert_valid_simplex(w, a.shape[1])
        assert report.rung == "lstsq-project"

    def test_uniform_rung_is_unconditional(self, system):
        a, s = system
        with chaos(ChaosConfig(solver_fail_rungs=("penalty", "pgd", "lstsq-project"))):
            w, report = fit_simplex_weights_robust(a, s)
        _assert_valid_simplex(w, a.shape[1])
        assert report.rung == "uniform"
        np.testing.assert_allclose(w, np.full(a.shape[1], 1.0 / a.shape[1]))

    def test_report_records_failed_attempts(self, system):
        a, s = system
        with chaos(ChaosConfig(solver_fail_rungs=("penalty",))):
            _, report = fit_simplex_weights_robust(a, s, retries=1)
        failed = [x for x in report.attempts if not x.ok]
        assert len(failed) == 2  # primary attempt + one retry
        assert all(x.rung == "penalty" for x in failed)
        assert "chaos" in failed[0].error

    def test_deadline_skips_to_uniform(self, system):
        a, s = system
        w, report = fit_simplex_weights_robust(a, s, deadline_seconds=0.0)
        _assert_valid_simplex(w, a.shape[1])
        assert report.rung == "uniform"
        assert report.deadline_exceeded is True

    def test_nonfinite_inputs_are_cleaned_not_fatal(self, system):
        a, s = system
        a = a.copy()
        a[0, 0] = np.nan
        a[1, 1] = np.inf
        w, report = fit_simplex_weights_robust(a, s)
        _assert_valid_simplex(w, a.shape[1])
        assert report.inputs_cleaned is True

    def test_structural_errors_still_raise(self):
        with pytest.raises(DataValidationError):
            fit_simplex_weights_robust(np.zeros((3, 0)), np.zeros(3))
        with pytest.raises(DataValidationError):
            fit_simplex_weights_robust(np.zeros((3, 2)), np.zeros(5))

    def test_report_serialises(self, system):
        a, s = system
        _, report = fit_simplex_weights_robust(a, s)
        d = report.to_dict()
        assert d["rung"] == "penalty"
        assert isinstance(d["attempts"], list)


class TestLearnersSurviveSolverFailure:
    """Fitting still returns a valid model when the primary solver fails."""

    @pytest.fixture
    def workload(self, rng):
        queries = []
        for _ in range(20):
            center = rng.random(2) * 0.6 + 0.2
            queries.append(Box(center - 0.1, center + 0.1))
        labels = np.clip([q.volume() * 3 for q in queries], 0, 1)
        return queries, labels

    @pytest.mark.parametrize("fail", [("penalty",), ("penalty", "pgd", "lstsq-project")])
    def test_quadhist(self, workload, fail):
        queries, labels = workload
        with chaos(ChaosConfig(solver_fail_rungs=fail)):
            model = QuadHist(tau=0.05).fit(queries, labels)
        weights = model.distribution.weights
        assert np.all(weights >= -1e-12)
        assert np.sum(weights) == pytest.approx(1.0, abs=1e-8)
        assert model.solve_report_.fallback is True
        assert 0.0 <= model.predict(Box([0.2, 0.2], [0.7, 0.7])) <= 1.0

    def test_ptshist(self, workload):
        queries, labels = workload
        with chaos(ChaosConfig(solver_fail_rungs=("penalty", "pgd"))):
            model = PtsHist(size=40, seed=0).fit(queries, labels)
        assert model.solve_report_.rung == "lstsq-project"
        weights = model.distribution.weights
        assert np.all(weights >= -1e-12)
        assert np.sum(weights) == pytest.approx(1.0, abs=1e-8)
