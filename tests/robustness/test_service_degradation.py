"""Graceful degradation of the estimation service (acceptance criterion
b: with retraining forced to fail, ``estimate`` keeps serving the last
good model and ``/status`` reports the breaker open)."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import QuadHist
from repro.data.io import range_to_dict
from repro.geometry import Box
from repro.robustness import ChaosConfig, chaos
from repro.robustness.errors import (
    ModelUnavailableError,
    SolverConvergenceError,
    TrainingTimeoutError,
)
from repro.server import EstimatorService, serve


def _pairs(rng, n=30):
    pairs = []
    for _ in range(n):
        center = rng.random(2) * 0.6 + 0.2
        low, high = center - 0.1, center + 0.1
        q = Box(low, high)
        pairs.append((q, float(np.clip(q.volume() * 4.0, 0.0, 1.0))))
    return pairs


def _service(**kwargs):
    kwargs.setdefault("min_feedback", 10)
    return EstimatorService(lambda: QuadHist(tau=0.02), **kwargs)


def _trained_service(rng, **kwargs):
    service = _service(**kwargs)
    for query, label in _pairs(rng):
        service.feedback(query, label)
    service.retrain()
    return service


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLastGoodModelServing:
    def test_estimate_survives_retrain_failures(self, rng):
        service = _trained_service(rng, breaker_threshold=2)
        probe = Box([0.2, 0.2], [0.7, 0.7])
        baseline = service.estimate(probe)

        with chaos(ChaosConfig(fit_fail_next=2)):
            for _ in range(2):
                with pytest.raises(SolverConvergenceError):
                    service.retrain()
            # Breaker is now open: further attempts are refused fast.
            with pytest.raises(ModelUnavailableError) as excinfo:
                service.retrain()
            assert "circuit breaker" in str(excinfo.value)
            # The last good generation keeps answering throughout.
            assert service.estimate(probe) == pytest.approx(baseline)

        status = service.status()
        assert status["trained"] is True
        assert status["generation"] == 1
        assert status["breaker"]["state"] == "open"
        assert status["breaker"]["consecutive_failures"] == 2
        assert "chaos" in status["last_error"]

    def test_failed_retrain_leaves_model_object_untouched(self, rng):
        service = _trained_service(rng)
        model_before = service._model
        generation_before = service.status()["generation"]
        with chaos(ChaosConfig(fit_fail_next=1)):
            with pytest.raises(SolverConvergenceError):
                service.retrain()
        assert service._model is model_before  # atomic swap never started
        assert service.status()["generation"] == generation_before

    def test_successful_retrain_bumps_generation(self, rng):
        service = _trained_service(rng)
        assert service.status()["generation"] == 1
        info = service.retrain()
        assert info["generation"] == 2
        assert service.status()["breaker"]["state"] == "closed"

    def test_estimate_before_first_train_still_unavailable(self):
        service = _service()
        with pytest.raises(ModelUnavailableError):
            service.estimate(Box([0.1, 0.1], [0.5, 0.5]))


class TestBreakerLifecycleInService:
    def test_half_open_probe_recovers(self, rng):
        clock = FakeClock()
        service = _trained_service(
            rng, breaker_threshold=1, breaker_cooldown=10.0, _clock=clock
        )
        with chaos(ChaosConfig(fit_fail_next=1)):
            with pytest.raises(SolverConvergenceError):
                service.retrain()
        assert service.status()["breaker"]["state"] == "open"
        with pytest.raises(ModelUnavailableError):
            service.retrain()

        clock.advance(10.0)  # cooldown elapses -> half-open probe allowed
        info = service.retrain()  # healthy again: probe succeeds
        assert info["generation"] == 2
        assert service.status()["breaker"]["state"] == "closed"

    def test_failed_probe_reopens(self, rng):
        clock = FakeClock()
        service = _trained_service(
            rng, breaker_threshold=1, breaker_cooldown=10.0, _clock=clock
        )
        with chaos(ChaosConfig(fit_fail_next=3)):
            with pytest.raises(SolverConvergenceError):
                service.retrain()
            clock.advance(10.0)
            with pytest.raises(SolverConvergenceError):
                service.retrain()  # probe itself fails
        assert service.status()["breaker"]["state"] == "open"

    def test_auto_retrain_failures_never_reach_feedback(self, rng):
        service = _trained_service(rng, retrain_every=5, breaker_threshold=2)
        generation_before = service.status()["generation"]
        with chaos(ChaosConfig(fit_failure_rate=1.0)):
            for query, label in _pairs(rng, n=15):
                result = service.feedback(query, label)  # must not raise
                assert result["accepted"] is True
        status = service.status()
        assert status["generation"] == generation_before  # every auto-retrain failed
        assert status["breaker"]["state"] == "open"


class TestRetrainTimeout:
    def test_slow_fit_times_out_and_counts_as_failure(self, rng):
        service = _trained_service(rng)  # first train under no budget
        service.retrain_timeout = 0.05
        with chaos(ChaosConfig(fit_delay_seconds=0.2)):
            with pytest.raises(TrainingTimeoutError):
                service.retrain()
        status = service.status()
        assert status["generation"] == 1
        assert "TrainingTimeoutError" in status["last_error"]
        assert status["breaker"]["consecutive_failures"] == 1


class TestFeedbackQuarantine:
    def test_drop_policy_quarantines_instead_of_raising(self, rng):
        service = _trained_service(rng, sanitize_policy="drop")
        result = service.feedback(Box([0.1, 0.1], [0.5, 0.5]), float("nan"))
        assert result["accepted"] is False
        result = service.feedback(Box([0.3, 0.3], [0.3, 0.8]), 0.2)  # zero-volume
        assert result["accepted"] is False
        status = service.status()
        assert status["quarantine"]["quarantined"] == 2
        assert status["quarantine"]["reasons"] == {
            "nan_label": 1,
            "degenerate_range": 1,
        }

    def test_clamp_policy_repairs_out_of_range_feedback(self, rng):
        service = _trained_service(rng, sanitize_policy="clamp")
        result = service.feedback(Box([0.1, 0.1], [0.5, 0.5]), 1.4)
        assert result["accepted"] is True
        assert service.status()["quarantine"]["clamped"] == 1

    def test_bounded_buffer_reported_in_status(self, rng):
        service = _service(feedback_capacity=20, min_feedback=10)
        for query, label in _pairs(rng, n=50):
            service.feedback(query, label)
        status = service.status()
        assert status["buffer"]["size"] <= 20
        assert status["buffer"]["total_seen"] == 50
        assert status["buffer"]["downsampled"] is True
        service.retrain()  # retrain still works from the bounded snapshot
        assert status["feedback_total"] == 50


class TestDegradationOverHTTP:
    """Acceptance (b), end to end: breaker state is visible on /status and
    estimates keep flowing while retraining is broken."""

    @pytest.fixture
    def server(self, rng):
        service = _trained_service(rng, breaker_threshold=1)
        server = serve(service, port=0)
        yield server
        server.shutdown()

    def _url(self, server, path):
        host, port = server.server_address
        return f"http://{host}:{port}{path}"

    def _post(self, server, path, payload):
        request = urllib.request.Request(
            self._url(server, path),
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def _get(self, server, path):
        with urllib.request.urlopen(self._url(server, path)) as response:
            return json.loads(response.read())

    def test_breaker_open_visible_on_status(self, server):
        with chaos(ChaosConfig(fit_fail_next=1)):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(server, "/retrain", {})
            assert excinfo.value.code == 500
            body = json.loads(excinfo.value.read())
            assert body["type"] == "SolverConvergenceError"

        status = self._get(server, "/status")
        assert status["breaker"]["state"] == "open"
        assert status["generation"] == 1

        # Estimates still served from the last good generation.
        query = Box([0.2, 0.2], [0.7, 0.7])
        estimate = self._post(server, "/estimate", {"query": range_to_dict(query)})
        assert 0.0 <= estimate["selectivity"] <= 1.0

        # A retrain attempt while open is a structured 409, not a hang.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/retrain", {})
        assert excinfo.value.code == 409
        body = json.loads(excinfo.value.read())
        assert body["type"] == "ModelUnavailableError"
