"""The fault-injection harness itself: config validation, determinism,
and the install/uninstall hook registry."""

import numpy as np
import pytest

from repro.geometry import Box
from repro.robustness import ChaosConfig, ChaosMonkey, chaos
from repro.robustness.chaos import active, install, uninstall


def _workload(rng, n=40):
    queries, labels = [], []
    for _ in range(n):
        center = rng.random(2) * 0.6 + 0.2
        q = Box(center - 0.1, center + 0.1)
        queries.append(q)
        labels.append(float(np.clip(q.volume() * 4, 0, 1)))
    return queries, labels


class TestConfigValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            ChaosConfig(solver_failure_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(fit_failure_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(feedback_corruption_rate=2.0)

    def test_unknown_corruption_kind_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(corruption_kinds=("nan", "gremlins"))


class TestMonkeyHooks:
    def test_fit_fail_next_counts_down(self):
        monkey = ChaosMonkey(ChaosConfig(fit_fail_next=2))
        assert monkey.should_fail_fit() is True
        assert monkey.should_fail_fit() is True
        assert monkey.should_fail_fit() is False
        assert monkey.injected["fit"] == 2

    def test_solver_rung_targeting(self):
        monkey = ChaosMonkey(ChaosConfig(solver_fail_rungs=("penalty", "pgd")))
        assert monkey.should_fail_solver("penalty") is True
        assert monkey.should_fail_solver("pgd") is True
        assert monkey.should_fail_solver("lstsq-project") is False
        assert monkey.injected["solver"] == 2

    def test_healthy_monkey_is_a_noop(self):
        monkey = ChaosMonkey(ChaosConfig())
        assert monkey.should_fail_solver("penalty") is False
        assert monkey.should_fail_fit() is False
        monkey.delay_fit()  # no configured delay: returns immediately
        assert monkey.injected == {"solver": 0, "fit": 0, "delay": 0, "corrupt": 0}


class TestCorruptWorkload:
    def test_corruption_count_matches_rate(self, rng):
        queries, labels = _workload(rng, n=40)
        monkey = ChaosMonkey(ChaosConfig(feedback_corruption_rate=0.25, seed=1))
        dirty_q, dirty_s, corrupted = monkey.corrupt_workload(queries, labels)
        assert len(corrupted) == 10  # 25% of 40
        assert len(dirty_q) == 40 and len(dirty_s) == 40
        assert monkey.injected["corrupt"] == 10

    def test_same_seed_replays_identically(self, rng):
        queries, labels = _workload(rng, n=30)
        run1 = ChaosMonkey(
            ChaosConfig(feedback_corruption_rate=0.2, seed=5)
        ).corrupt_workload(queries, labels)
        run2 = ChaosMonkey(
            ChaosConfig(feedback_corruption_rate=0.2, seed=5)
        ).corrupt_workload(queries, labels)
        assert run1[2] == run2[2]
        np.testing.assert_array_equal(
            np.asarray(run1[1]), np.asarray(run2[1])
        )

    def test_corruptions_are_actually_dirty(self, rng):
        queries, labels = _workload(rng, n=30)
        monkey = ChaosMonkey(
            ChaosConfig(feedback_corruption_rate=0.3, seed=2)
        )
        dirty_q, dirty_s, corrupted = monkey.corrupt_workload(queries, labels)
        for i in corrupted:
            nan = not np.isfinite(dirty_s[i])
            out_of_range = np.isfinite(dirty_s[i]) and dirty_s[i] > 1.0
            degenerate = (
                isinstance(dirty_q[i], Box)
                and np.any(dirty_q[i].highs - dirty_q[i].lows <= 0)
            )
            assert nan or out_of_range or degenerate
        # Untouched pairs stay clean.
        untouched = set(range(30)) - set(corrupted)
        for i in untouched:
            assert 0.0 <= dirty_s[i] <= 1.0

    def test_zero_rate_leaves_workload_alone(self, rng):
        queries, labels = _workload(rng, n=10)
        monkey = ChaosMonkey(ChaosConfig())
        dirty_q, dirty_s, corrupted = monkey.corrupt_workload(queries, labels)
        assert corrupted == []
        assert dirty_q == queries
        np.testing.assert_array_equal(dirty_s, labels)


class TestHookRegistry:
    def test_no_monkey_by_default(self):
        assert active() is None

    def test_install_uninstall(self):
        monkey = ChaosMonkey(ChaosConfig())
        install(monkey)
        try:
            assert active() is monkey
        finally:
            uninstall()
        assert active() is None

    def test_context_manager_restores_previous(self):
        outer = ChaosMonkey(ChaosConfig(seed=1))
        with chaos(outer):
            assert active() is outer
            with chaos(ChaosConfig(seed=2)) as inner:
                assert active() is inner
            assert active() is outer  # nesting restores, not clears
        assert active() is None

    def test_context_manager_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with chaos(ChaosConfig()):
                raise RuntimeError("boom")
        assert active() is None
