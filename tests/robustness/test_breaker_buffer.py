"""Unit tests for the circuit breaker and the bounded feedback buffer."""

import numpy as np
import pytest

from repro.robustness import CircuitBreaker, FeedbackBuffer


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow() is True
        assert breaker.consecutive_failures == 2

    def test_success_resets_failure_count(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_opens_at_threshold_and_refuses(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=30.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False
        assert breaker.cooldown_remaining() == pytest.approx(30.0)
        clock.advance(12.0)
        assert breaker.cooldown_remaining() == pytest.approx(18.0)

    def test_half_open_allows_exactly_one_probe(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.allow() is False
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow() is True  # the probe slot
        assert breaker.allow() is False  # claimed: no second concurrent probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() is True

    def test_failed_probe_reopens_and_restarts_cooldown(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow() is True
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.cooldown_remaining() == pytest.approx(10.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1.0)

    def test_to_dict(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        d = breaker.to_dict()
        assert d == {
            "state": "closed",
            "consecutive_failures": 1,
            "failure_threshold": 2,
            "cooldown_remaining": 0.0,
        }


class TestFeedbackBuffer:
    def test_unbounded_by_default(self):
        buffer = FeedbackBuffer()
        for i in range(500):
            buffer.append(f"q{i}", 0.5)
        assert len(buffer) == 500
        assert buffer.dropped == 0
        assert buffer.downsampled is False

    def test_capacity_is_a_hard_bound(self):
        buffer = FeedbackBuffer(capacity=20)
        for i in range(200):
            buffer.append(f"q{i}", i / 200)
        assert len(buffer) <= 20
        assert buffer.total_seen == 200
        assert buffer.dropped == 200 - len(buffer)
        assert buffer.downsampled is True

    def test_recency_ring_keeps_newest_exactly(self):
        buffer = FeedbackBuffer(capacity=10, recent_fraction=0.5)
        for i in range(50):
            buffer.append(f"q{i}", 0.1)
        queries, _ = buffer.snapshot()
        # The last ring_cap=5 arrivals are present verbatim, in order.
        assert queries[-5:] == ["q45", "q46", "q47", "q48", "q49"]

    def test_reservoir_samples_evicted_history(self):
        buffer = FeedbackBuffer(capacity=10, recent_fraction=0.5, seed=0)
        for i in range(100):
            buffer.append(i, 0.1)
        queries, _ = buffer.snapshot()
        history = queries[:-5]
        assert len(history) == 5  # reservoir portion is full
        assert all(q < 95 for q in history)  # drawn from evictions only

    def test_snapshot_is_deterministic_for_a_seed(self):
        def run(seed):
            buffer = FeedbackBuffer(capacity=16, seed=seed)
            for i in range(300):
                buffer.append(i, i / 300)
            return buffer.snapshot()

        q1, s1 = run(7)
        q2, s2 = run(7)
        q3, _ = run(8)
        assert q1 == q2
        np.testing.assert_array_equal(s1, s2)
        assert q1 != q3  # different seed, different reservoir

    def test_pure_ring_when_recent_fraction_one(self):
        buffer = FeedbackBuffer(capacity=8, recent_fraction=1.0)
        for i in range(30):
            buffer.append(i, 0.2)
        queries, _ = buffer.snapshot()
        assert queries == list(range(22, 30))
        assert buffer.dropped == 22

    def test_extend_and_labels_dtype(self):
        buffer = FeedbackBuffer()
        buffer.extend([("a", 0.1), ("b", 0.9)])
        queries, labels = buffer.snapshot()
        assert queries == ["a", "b"]
        assert labels.dtype == float
        np.testing.assert_allclose(labels, [0.1, 0.9])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FeedbackBuffer(capacity=1)
        with pytest.raises(ValueError):
            FeedbackBuffer(recent_fraction=0.0)
        with pytest.raises(ValueError):
            FeedbackBuffer(recent_fraction=1.5)

    def test_to_dict(self):
        buffer = FeedbackBuffer(capacity=4)
        for i in range(10):
            buffer.append(i, 0.3)
        d = buffer.to_dict()
        assert d["capacity"] == 4
        assert d["total_seen"] == 10
        assert d["size"] == len(buffer)
        assert d["downsampled"] is True
