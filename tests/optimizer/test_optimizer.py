"""Mini cost-based optimizer: cost model, plan choice, regret."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuadHist
from repro.baselines import MeanEstimator, UniformEstimator
from repro.optimizer import (
    AccessPath,
    TableStats,
    choose_plan,
    crossover_selectivity,
    evaluate_plan_quality,
    index_scan_cost,
    plan_cost,
    plan_regret,
    seq_scan_cost,
)

STATS = TableStats(rows=100_000)


class TestCostModel:
    def test_seq_scan_flat_in_selectivity(self):
        assert seq_scan_cost(STATS, 0.01) == seq_scan_cost(STATS, 0.99)

    def test_index_scan_linear_in_selectivity(self):
        low = index_scan_cost(STATS, 0.01)
        high = index_scan_cost(STATS, 0.02)
        descent = 2.0 * STATS.random_page_cost
        assert (high - descent) == pytest.approx(2 * (low - descent))

    def test_index_wins_when_selective(self):
        assert index_scan_cost(STATS, 0.0001) < seq_scan_cost(STATS, 0.0001)

    def test_seq_wins_when_unselective(self):
        assert seq_scan_cost(STATS, 0.5) < index_scan_cost(STATS, 0.5)

    def test_stats_validation(self):
        with pytest.raises(ValueError):
            TableStats(rows=0)
        with pytest.raises(ValueError):
            TableStats(rows=10, seq_page_cost=0.0)
        with pytest.raises(ValueError):
            TableStats(rows=10, index_cpu_cost=-1.0)

    def test_selectivity_validation(self):
        with pytest.raises(ValueError):
            seq_scan_cost(STATS, 1.5)
        with pytest.raises(ValueError):
            index_scan_cost(STATS, -0.1)


class TestPlanner:
    def test_crossover_separates_choices(self):
        s_star = crossover_selectivity(STATS)
        assert 0.0 < s_star < 1.0
        assert choose_plan(STATS, s_star * 0.5) is AccessPath.INDEX_SCAN
        assert choose_plan(STATS, min(1.0, s_star * 2)) is AccessPath.SEQ_SCAN

    def test_costs_equal_at_crossover(self):
        s_star = crossover_selectivity(STATS)
        assert seq_scan_cost(STATS, s_star) == pytest.approx(
            index_scan_cost(STATS, s_star), rel=1e-9
        )

    def test_tiny_table_always_seq(self):
        tiny = TableStats(rows=10, tuples_per_page=100)
        assert crossover_selectivity(tiny) == 0.0

    def test_regret_one_for_perfect_estimate(self):
        for truth in (0.001, 0.1, 0.9):
            assert plan_regret(STATS, truth, truth) == pytest.approx(1.0)

    def test_regret_one_for_decision_equivalent_estimate(self):
        s_star = crossover_selectivity(STATS)
        # Wildly wrong magnitude but same side of the crossover.
        assert plan_regret(STATS, s_star / 100, s_star / 2) == pytest.approx(1.0)

    def test_regret_above_one_for_crossover_flip(self):
        s_star = crossover_selectivity(STATS)
        # Truth is unselective (seq optimal) but the estimate says index.
        regret = plan_regret(STATS, s_star / 10, 0.8)
        assert regret > 5.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)
    )
    def test_regret_at_least_one(self, estimate, truth):
        assert plan_regret(STATS, estimate, truth) >= 1.0 - 1e-12

    def test_plan_cost_rejects_junk(self):
        with pytest.raises(ValueError):
            plan_cost("hash join", STATS, 0.5)


class TestWorkloadEvaluation:
    def test_learned_estimator_beats_mean_on_plan_quality(self, power2d_box_workload):
        train_q, train_s, test_q, test_s = power2d_box_workload
        learned = QuadHist(tau=0.01).fit(train_q, train_s)
        mean = MeanEstimator().fit(train_q, train_s)
        q_learned = evaluate_plan_quality(learned, test_q, test_s, STATS)
        q_mean = evaluate_plan_quality(mean, test_q, test_s, STATS)
        assert q_learned.correct_choice_rate >= q_mean.correct_choice_rate
        assert q_learned.mean_regret <= q_mean.mean_regret

    def test_perfect_oracle_has_unit_regret(self, power2d_box_workload):
        _, _, test_q, test_s = power2d_box_workload

        class Oracle(UniformEstimator):
            def __init__(self, answers):
                super().__init__()
                self._answers = {id(q): s for q, s in answers}

            def _predict_one(self, query):
                return self._answers[id(query)]

        oracle = Oracle(list(zip(test_q, test_s)))
        oracle._fitted = True
        quality = evaluate_plan_quality(oracle, test_q, test_s, STATS)
        assert quality.correct_choice_rate == 1.0
        assert quality.mean_regret == pytest.approx(1.0)

    def test_validation(self, power2d_box_workload):
        _, _, test_q, test_s = power2d_box_workload
        est = MeanEstimator().fit(test_q, test_s)
        with pytest.raises(ValueError):
            evaluate_plan_quality(est, test_q, test_s[:-1], STATS)
        with pytest.raises(ValueError):
            evaluate_plan_quality(est, [], np.array([]), STATS)

    def test_row_output(self, power2d_box_workload):
        _, _, test_q, test_s = power2d_box_workload
        est = MeanEstimator().fit(test_q, test_s)
        quality = evaluate_plan_quality(est, test_q, test_s, STATS)
        row = quality.row()
        assert set(row) == {"correct_plans", "mean_regret", "max_regret", "queries"}
