"""UnionRange — IN-list and disjunctive predicates."""

import numpy as np
import pytest

from repro.core import PtsHist
from repro.geometry import Ball, Box, UnionRange, unit_box


class TestUnionRange:
    def test_membership_is_union(self):
        union = UnionRange([Box([0.0, 0.0], [0.2, 1.0]), Box([0.8, 0.0], [1.0, 1.0])])
        pts = np.array([[0.1, 0.5], [0.5, 0.5], [0.9, 0.5]])
        np.testing.assert_array_equal(union.contains(pts), [True, False, True])

    def test_mixed_member_types(self):
        union = UnionRange([Ball([0.2, 0.2], 0.1), Box([0.7, 0.7], [0.9, 0.9])])
        assert [0.2, 0.2] in union
        assert [0.8, 0.8] in union
        assert [0.5, 0.5] not in union

    def test_bounding_box_covers_members(self):
        union = UnionRange([Box([0.1, 0.1], [0.2, 0.2]), Box([0.7, 0.8], [0.9, 0.95])])
        bbox = union.bounding_box()
        np.testing.assert_allclose(bbox.lows, [0.1, 0.1])
        np.testing.assert_allclose(bbox.highs, [0.9, 0.95])

    def test_validation(self):
        with pytest.raises(ValueError):
            UnionRange([])
        with pytest.raises(ValueError):
            UnionRange([Box([0.0], [1.0]), Box([0.0, 0.0], [1.0, 1.0])])

    def test_in_list_construction(self):
        # Attribute 0 categorical with 4 categories; IN (cells of 0.1, 0.6).
        union = UnionRange.in_list(0, [0.1, 0.6], cardinality=4, dim=2)
        assert [0.1, 0.5] in union  # category 0
        assert [0.6, 0.5] in union  # category 2
        assert [0.3, 0.5] not in union  # category 1

    def test_in_list_validation(self):
        with pytest.raises(ValueError):
            UnionRange.in_list(0, [], cardinality=4, dim=2)
        with pytest.raises(ValueError):
            UnionRange.in_list(5, [0.1], cardinality=4, dim=2)
        with pytest.raises(ValueError):
            UnionRange.in_list(0, [0.1], cardinality=0, dim=2)


class TestInListLearnability:
    def test_ptshist_learns_in_list_workload(self, rng):
        """IN-list selectivities are learnable with the standard machinery
        (finite VC dimension of bounded unions)."""
        from repro.data import census_like, label_queries

        data = census_like(rows=8_000).project([5, 0])  # categorical + numeric
        card = data.cardinalities[0]
        queries = []
        for _ in range(60):
            n_values = int(rng.integers(1, 4))
            values = rng.random(n_values)
            queries.append(UnionRange.in_list(0, values, cardinality=card, dim=2))
        labels = label_queries(data, queries)
        est = PtsHist(size=300, seed=0).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.1

    def test_quadhist_handles_union_queries_via_mc(self, rng):
        """QuadHist's generic volume dispatch covers unions (quasi-MC)."""
        from repro.core import QuadHist

        queries = [
            UnionRange(
                [
                    Box.from_center(rng.random(2), rng.random(2) * 0.3, clip_to=unit_box(2)),
                    Box.from_center(rng.random(2), rng.random(2) * 0.3, clip_to=unit_box(2)),
                ]
            )
            for _ in range(15)
        ]
        # Uniform-data labels via MC membership.
        probe = rng.random((20_000, 2))
        labels = np.array([float(np.mean(q.contains(probe))) for q in queries])
        est = QuadHist(tau=0.05).fit(queries, labels)
        preds = est.predict_many(queries)
        assert np.sqrt(np.mean((preds - labels) ** 2)) < 0.06
