"""Volume formulas: exact closed forms validated against quasi-MC and
brute-force counting, plus invariance/monotonicity property tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Ball, Box, Halfspace, unit_box
from repro.geometry.ranges import SemiAlgebraicRange
from repro.geometry.volume import (
    ball_volume,
    batch_box_box_volumes,
    batch_box_halfspace_volumes,
    batch_box_ball_volumes,
    batch_intersection_volumes,
    box_ball_intersection_volume,
    box_box_intersection_volume,
    box_halfspace_intersection_volume,
    intersection_volume,
    monte_carlo_intersection_volume,
    range_volume,
    unit_ball_volume,
)

MC_TOL = 0.02  # quasi-MC precision used as the reference tolerance


class TestUnitBallVolume:
    def test_known_values(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(math.pi)
        assert unit_ball_volume(3) == pytest.approx(4.0 / 3.0 * math.pi)

    def test_scaling(self):
        assert ball_volume(0.5, 2) == pytest.approx(math.pi * 0.25)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            ball_volume(-1.0, 2)


class TestBoxBox:
    def test_exact_overlap(self):
        a = Box([0.0, 0.0], [0.6, 0.6])
        b = Box([0.3, 0.3], [1.0, 1.0])
        assert box_box_intersection_volume(a, b) == pytest.approx(0.09)

    def test_disjoint(self):
        a = Box([0.0], [0.2])
        b = Box([0.5], [0.9])
        assert box_box_intersection_volume(a, b) == 0.0

    def test_nested(self):
        outer = Box([0.0, 0.0], [1.0, 1.0])
        inner = Box([0.2, 0.2], [0.4, 0.4])
        assert box_box_intersection_volume(outer, inner) == pytest.approx(inner.volume())


class TestBoxHalfspace:
    def test_axis_aligned_halfspace(self):
        dom = unit_box(2)
        half = Halfspace([1.0, 0.0], 0.3)  # x >= 0.3
        assert box_halfspace_intersection_volume(dom, half) == pytest.approx(0.7)

    def test_diagonal_halfspace_halves_square(self):
        dom = unit_box(2)
        half = Halfspace([1.0, 1.0], 1.0)  # x + y >= 1
        assert box_halfspace_intersection_volume(dom, half) == pytest.approx(0.5)

    def test_simplex_corner(self):
        dom = unit_box(3)
        half = Halfspace([-1.0, -1.0, -1.0], -0.5)  # x+y+z <= 0.5
        assert box_halfspace_intersection_volume(dom, half) == pytest.approx(
            0.5**3 / 6.0
        )

    def test_empty_and_full(self):
        dom = unit_box(2)
        assert box_halfspace_intersection_volume(dom, Halfspace([1.0, 0.0], 2.0)) == 0.0
        assert box_halfspace_intersection_volume(
            dom, Halfspace([1.0, 0.0], -1.0)
        ) == pytest.approx(1.0)

    def test_zero_coefficient_dimension(self):
        dom = unit_box(3)
        half = Halfspace([1.0, 0.0, 0.0], 0.25)
        assert box_halfspace_intersection_volume(dom, half) == pytest.approx(0.75)

    def test_matches_monte_carlo_random_cases(self, rng):
        dom = unit_box(4)
        for _ in range(10):
            half = Halfspace(rng.normal(size=4), rng.normal() * 0.5)
            exact = box_halfspace_intersection_volume(dom, half)
            approx = monte_carlo_intersection_volume(dom, half)
            assert exact == pytest.approx(approx, abs=MC_TOL)

    def test_shifted_box(self):
        box = Box([0.5, 0.5], [1.0, 1.0])
        half = Halfspace([1.0, 0.0], 0.75)
        assert box_halfspace_intersection_volume(box, half) == pytest.approx(0.125)

    def test_degenerate_box(self):
        box = Box([0.5, 0.0], [0.5, 1.0])
        assert box_halfspace_intersection_volume(box, Halfspace([1.0, 0.0], 0.2)) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(-2, 2, allow_nan=False))
    def test_monotone_in_offset(self, offset):
        dom = unit_box(2)
        lower = box_halfspace_intersection_volume(dom, Halfspace([1.0, 1.0], offset))
        higher = box_halfspace_intersection_volume(
            dom, Halfspace([1.0, 1.0], offset + 0.1)
        )
        assert higher <= lower + 1e-12


class TestBoxBall:
    def test_ball_inside_box(self):
        dom = unit_box(2)
        ball = Ball([0.5, 0.5], 0.25)
        assert box_ball_intersection_volume(dom, ball) == pytest.approx(
            math.pi * 0.25**2
        )

    def test_box_inside_ball(self):
        box = Box([0.4, 0.4], [0.6, 0.6])
        ball = Ball([0.5, 0.5], 1.0)
        assert box_ball_intersection_volume(box, ball) == pytest.approx(box.volume())

    def test_disjoint(self):
        box = Box([0.0, 0.0], [0.1, 0.1])
        ball = Ball([0.9, 0.9], 0.2)
        assert box_ball_intersection_volume(box, ball) == 0.0

    def test_half_disc(self):
        ball = Ball([0.0, 0.5], 0.3)  # center on the left edge of the unit box
        exact = box_ball_intersection_volume(unit_box(2), ball)
        assert exact == pytest.approx(math.pi * 0.09 / 2.0, rel=1e-6)

    def test_quarter_disc(self):
        ball = Ball([0.0, 0.0], 0.4)
        exact = box_ball_intersection_volume(unit_box(2), ball)
        assert exact == pytest.approx(math.pi * 0.16 / 4.0, rel=1e-6)

    def test_1d_interval(self):
        box = Box([0.0], [1.0])
        ball = Ball([0.5], 0.2)
        assert box_ball_intersection_volume(box, ball) == pytest.approx(0.4)

    def test_matches_monte_carlo_random_2d(self, rng):
        dom = unit_box(2)
        for _ in range(15):
            ball = Ball(rng.uniform(-0.2, 1.2, 2), rng.random())
            exact = box_ball_intersection_volume(dom, ball)
            approx = monte_carlo_intersection_volume(dom, ball)
            assert exact == pytest.approx(approx, abs=MC_TOL)

    def test_3d_uses_quasi_mc(self):
        dom = unit_box(3)
        ball = Ball([0.5, 0.5, 0.5], 0.3)
        value = box_ball_intersection_volume(dom, ball)
        assert value == pytest.approx(ball_volume(0.3, 3), rel=0.05)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(0.05, 1.0, allow_nan=False),
        st.floats(-0.3, 1.3, allow_nan=False),
        st.floats(-0.3, 1.3, allow_nan=False),
    )
    def test_monotone_in_radius(self, radius, cx, cy):
        dom = unit_box(2)
        smaller = box_ball_intersection_volume(dom, Ball([cx, cy], radius))
        larger = box_ball_intersection_volume(dom, Ball([cx, cy], radius + 0.05))
        assert larger >= smaller - 1e-9


class TestDispatchAndRangeVolume:
    def test_dispatch_box(self):
        assert intersection_volume(unit_box(2), Box([0.0, 0.0], [0.5, 0.5])) == 0.25

    def test_dispatch_semialgebraic_uses_mc(self):
        annulus = SemiAlgebraicRange(
            dim=2,
            predicates=[
                lambda p: (p[:, 0] - 0.5) ** 2 + (p[:, 1] - 0.5) ** 2 - 0.16,
                lambda p: 0.04 - ((p[:, 0] - 0.5) ** 2 + (p[:, 1] - 0.5) ** 2),
            ],
            bounding_box=Box([0.1, 0.1], [0.9, 0.9]),
        )
        expected = math.pi * (0.16 - 0.04)
        assert intersection_volume(unit_box(2), annulus) == pytest.approx(
            expected, abs=MC_TOL
        )

    def test_range_volume_is_domain_clipped(self):
        half = Halfspace([1.0, 0.0], 0.5)
        assert range_volume(half, unit_box(2)) == pytest.approx(0.5)

    def test_mc_determinism(self):
        ball = Ball([0.4, 0.6, 0.5], 0.3)
        dom = unit_box(3)
        a = monte_carlo_intersection_volume(dom, ball)
        b = monte_carlo_intersection_volume(dom, ball)
        assert a == b


class TestBatchVolumes:
    @pytest.fixture
    def random_boxes(self, rng):
        lows = rng.random((60, 2)) * 0.8
        highs = lows + rng.random((60, 2)) * 0.2
        return lows, highs

    def test_batch_box_matches_scalar(self, random_boxes, rng):
        lows, highs = random_boxes
        query = Box.from_center(rng.random(2), rng.random(2), clip_to=unit_box(2))
        batch = batch_box_box_volumes(lows, highs, query)
        scalar = [
            box_box_intersection_volume(Box(lo, hi), query)
            for lo, hi in zip(lows, highs)
        ]
        np.testing.assert_allclose(batch, scalar, atol=1e-12)

    def test_batch_halfspace_matches_scalar(self, random_boxes, rng):
        lows, highs = random_boxes
        half = Halfspace(rng.normal(size=2), 0.3)
        batch = batch_box_halfspace_volumes(lows, highs, half)
        scalar = [
            box_halfspace_intersection_volume(Box(lo, hi), half)
            for lo, hi in zip(lows, highs)
        ]
        np.testing.assert_allclose(batch, scalar, atol=1e-10)

    def test_batch_halfspace_matches_scalar_5d(self, rng):
        lows = rng.random((30, 5)) * 0.7
        highs = lows + rng.random((30, 5)) * 0.3
        half = Halfspace(rng.normal(size=5), 0.2)
        batch = batch_box_halfspace_volumes(lows, highs, half)
        scalar = [
            box_halfspace_intersection_volume(Box(lo, hi), half)
            for lo, hi in zip(lows, highs)
        ]
        np.testing.assert_allclose(batch, scalar, atol=1e-10)

    def test_batch_ball_matches_scalar(self, random_boxes, rng):
        lows, highs = random_boxes
        ball = Ball(rng.random(2), 0.4)
        batch = batch_box_ball_volumes(lows, highs, ball)
        scalar = [
            box_ball_intersection_volume(Box(lo, hi), ball)
            for lo, hi in zip(lows, highs)
        ]
        np.testing.assert_allclose(batch, scalar, atol=1e-10)

    def test_batch_ball_1d(self, rng):
        lows = rng.random((20, 1)) * 0.8
        highs = lows + 0.1
        ball = Ball([0.5], 0.2)
        batch = batch_box_ball_volumes(lows, highs, ball)
        scalar = [
            box_ball_intersection_volume(Box(lo, hi), ball)
            for lo, hi in zip(lows, highs)
        ]
        np.testing.assert_allclose(batch, scalar, atol=1e-12)

    def test_batch_dispatch(self, random_boxes):
        lows, highs = random_boxes
        query = Box([0.1, 0.1], [0.7, 0.7])
        np.testing.assert_allclose(
            batch_intersection_volumes(lows, highs, query),
            batch_box_box_volumes(lows, highs, query),
        )

    def test_batch_nonnegative_and_bounded(self, random_boxes, rng):
        lows, highs = random_boxes
        box_volumes = np.prod(highs - lows, axis=1)
        for query in [
            Halfspace(rng.normal(size=2), 0.1),
            Ball(rng.random(2), 0.5),
            Box([0.2, 0.2], [0.9, 0.9]),
        ]:
            vols = batch_intersection_volumes(lows, highs, query)
            assert np.all(vols >= 0.0)
            assert np.all(vols <= box_volumes + 1e-9)
