"""Batch volume-matrix kernels agree with the per-query kernels.

Every matrix row must reproduce :func:`repro.geometry.volume
.batch_intersection_volumes` (one query × many boxes) to floating-point
noise, for every query class, under any chunking configuration.
"""

import numpy as np
import pytest

import repro.geometry.batch as batch
from repro.geometry import Ball, Box, Halfspace, unit_box
from repro.geometry.batch import (
    box_ball_volume_matrix,
    box_box_volume_matrix,
    box_halfspace_volume_matrix,
    boxes_to_arrays,
    containment_matrix,
    coverage_dot,
    coverage_matrix,
    intersection_volume_matrix,
)
from repro.geometry.volume import (
    batch_intersection_volumes,
    box_halfspace_intersection_volume,
)


def _random_buckets(rng, m, d):
    lows = rng.random((m, d)) * 0.85
    highs = lows + rng.random((m, d)) * 0.15 + 1e-3
    return lows, highs


def _assert_rows_match(queries, b_lows, b_highs, matrix, atol=1e-12):
    for i, query in enumerate(queries):
        expected = batch_intersection_volumes(b_lows, b_highs, query)
        np.testing.assert_allclose(matrix[i], expected, atol=atol, rtol=0)


class TestBoxKernel:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_matches_scalar_rows(self, rng, d):
        b_lows, b_highs = _random_buckets(rng, 40, d)
        queries = [
            Box(lo, lo + w)
            for lo, w in zip(rng.random((25, d)) * 0.7, rng.random((25, d)) * 0.3)
        ]
        q_lows, q_highs = boxes_to_arrays(queries)
        matrix = box_box_volume_matrix(q_lows, q_highs, b_lows, b_highs)
        _assert_rows_match(queries, b_lows, b_highs, matrix, atol=0)

    def test_disjoint_pairs_are_zero(self):
        b_lows, b_highs = boxes_to_arrays([Box([0.0, 0.0], [0.2, 0.2])])
        q_lows, q_highs = boxes_to_arrays([Box([0.5, 0.5], [0.9, 0.9])])
        matrix = box_box_volume_matrix(q_lows, q_highs, b_lows, b_highs)
        assert matrix[0, 0] == 0.0


class TestHalfspaceKernel:
    def test_matches_scalar_rows(self, rng):
        b_lows, b_highs = _random_buckets(rng, 30, 2)
        queries = [
            Halfspace(normal, float(rng.normal()))
            for normal in rng.normal(size=(20, 2))
        ]
        normals = np.stack([q.normal for q in queries])
        offsets = np.array([q.offset for q in queries])
        matrix = box_halfspace_volume_matrix(normals, offsets, b_lows, b_highs)
        _assert_rows_match(queries, b_lows, b_highs, matrix)

    def test_axis_aligned_zero_components(self, rng):
        """Mixed active patterns: the per-pattern grouping must stitch the
        rows back into workload order."""
        b_lows, b_highs = _random_buckets(rng, 25, 3)
        queries = [
            Halfspace([1.0, 0.0, 0.0], 0.5),
            Halfspace([0.0, -1.0, 0.0], -0.4),
            Halfspace([1.0, 1.0, 1.0], 1.2),
            Halfspace([1.0, 0.0, 0.0], 5.0),  # all-space: every box fully in
            Halfspace([0.5, 0.0, -0.5], 0.1),
        ]
        normals = np.stack([q.normal for q in queries])
        offsets = np.array([q.offset for q in queries])
        matrix = box_halfspace_volume_matrix(normals, offsets, b_lows, b_highs)
        _assert_rows_match(queries, b_lows, b_highs, matrix)

    def test_tiny_normal_component_is_well_conditioned(self):
        """A near-zero (but non-zero) component must not blow up the 2-D
        closed form: the halfspace and its complement partition the box."""
        dom = unit_box(2)
        half = Halfspace([5.3e-11, -1.0], 0.0)
        flipped = Halfspace([-5.3e-11, 1.0], 0.0)
        pos = box_halfspace_intersection_volume(dom, half)
        neg = box_halfspace_intersection_volume(dom, flipped)
        assert pos + neg == pytest.approx(1.0, abs=1e-12)
        # Batch kernels agree with the scalar kernel bitwise.
        b_lows, b_highs = boxes_to_arrays([dom])
        for query in (half, flipped):
            scalar = box_halfspace_intersection_volume(dom, query)
            row = box_halfspace_volume_matrix(
                query.normal[None, :], np.array([query.offset]), b_lows, b_highs
            )
            assert row[0, 0] == scalar


class TestBallKernel:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_matches_scalar_rows(self, rng, d):
        """Exact in d <= 2; in d = 3 the QMC path must reuse the scalar
        kernel's fixed Sobol point set, so rows still agree exactly."""
        b_lows, b_highs = _random_buckets(rng, 15, d)
        queries = [
            Ball(center, float(radius))
            for center, radius in zip(
                rng.random((10, d)), 0.05 + rng.random(10) * 0.4
            )
        ]
        centers = np.stack([q.ball_center for q in queries])
        radii = np.array([q.radius for q in queries])
        matrix = box_ball_volume_matrix(centers, radii, b_lows, b_highs)
        _assert_rows_match(queries, b_lows, b_highs, matrix)


class TestDispatcherAndChunking:
    def _mixed_workload(self, rng):
        return [
            Box([0.1, 0.1], [0.6, 0.5]),
            Halfspace([1.0, -0.5], 0.2),
            Ball([0.4, 0.6], 0.3),
            Box([0.0, 0.0], [1.0, 1.0]),
            Halfspace([0.0, 1.0], 0.7),
            Ball([0.9, 0.1], 0.05),
        ]

    def test_mixed_workload_rows_in_order(self, rng):
        b_lows, b_highs = _random_buckets(rng, 35, 2)
        queries = self._mixed_workload(rng)
        matrix = intersection_volume_matrix(queries, b_lows, b_highs)
        _assert_rows_match(queries, b_lows, b_highs, matrix)

    def test_results_invariant_to_chunk_size(self, rng, monkeypatch):
        """Tiny memory budgets only change the blocking, never the values."""
        b_lows, b_highs = _random_buckets(rng, 30, 2)
        queries = self._mixed_workload(rng) * 5
        weights = rng.normal(size=30)
        volumes = np.prod(b_highs - b_lows, axis=1)
        baseline_matrix = intersection_volume_matrix(queries, b_lows, b_highs)
        baseline_dot = coverage_dot(queries, b_lows, b_highs, volumes, weights)
        monkeypatch.setattr(batch, "CHUNK_ELEMENTS", 64)
        monkeypatch.setattr(batch, "CACHE_ELEMENTS", 16)
        np.testing.assert_array_equal(
            intersection_volume_matrix(queries, b_lows, b_highs), baseline_matrix
        )
        np.testing.assert_allclose(
            coverage_dot(queries, b_lows, b_highs, volumes, weights),
            baseline_dot,
            atol=1e-12,
            rtol=0,
        )


class TestCoverage:
    def test_zero_volume_bucket_contributes_zero(self):
        buckets = [Box([0.0, 0.0], [0.5, 1.0]), Box([0.5, 0.2], [0.5, 0.8])]
        b_lows, b_highs = boxes_to_arrays(buckets)
        fractions = coverage_matrix([unit_box(2)], b_lows, b_highs)
        np.testing.assert_allclose(fractions, [[1.0, 0.0]])

    def test_coverage_dot_matches_matrix_product(self, rng):
        """The fused path (folded weights, no materialised matrix) equals
        coverage_matrix @ weights — including negative weights and a
        degenerate bucket."""
        b_lows, b_highs = _random_buckets(rng, 40, 2)
        b_lows[7] = b_highs[7]  # degenerate bucket
        volumes = np.prod(b_highs - b_lows, axis=1)
        weights = rng.normal(size=40)
        for queries in (
            [Box(lo, lo + w) for lo, w in zip(rng.random((30, 2)) * 0.6, rng.random((30, 2)) * 0.4)],
            [Halfspace([1.0, 0.3], 0.4), Ball([0.5, 0.5], 0.3), Box([0.1, 0.1], [0.9, 0.9])],
        ):
            expected = coverage_matrix(queries, b_lows, b_highs, volumes) @ weights
            got = coverage_dot(queries, b_lows, b_highs, volumes, weights)
            np.testing.assert_allclose(got, expected, atol=1e-12, rtol=0)

    @pytest.mark.parametrize("d", [1, 3])
    def test_coverage_dot_box_path_other_dims(self, rng, d):
        b_lows, b_highs = _random_buckets(rng, 20, d)
        volumes = np.prod(b_highs - b_lows, axis=1)
        weights = rng.random(20)
        queries = [
            Box(lo, lo + w)
            for lo, w in zip(rng.random((15, d)) * 0.6, rng.random((15, d)) * 0.4)
        ]
        expected = coverage_matrix(queries, b_lows, b_highs, volumes) @ weights
        got = coverage_dot(queries, b_lows, b_highs, volumes, weights)
        np.testing.assert_allclose(got, expected, atol=1e-12, rtol=0)


class TestContainmentMatrix:
    def test_matches_per_query_contains(self, rng):
        pts = rng.random((200, 2))
        queries = [
            Box([0.2, 0.1], [0.7, 0.8]),
            Halfspace([1.0, -1.0], 0.0),
            Ball([0.5, 0.5], 0.35),
            Box([0.4, 0.4], [0.4, 0.9]),  # zero-width box
        ]
        matrix = containment_matrix(queries, pts)
        assert matrix.shape == (len(queries), 200)
        for i, query in enumerate(queries):
            np.testing.assert_array_equal(
                matrix[i], np.asarray(query.contains(pts), dtype=float)
            )
