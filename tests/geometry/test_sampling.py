"""Rejection sampling and bounding boxes (Appendix A.2)."""

import numpy as np
import pytest

from repro.geometry import (
    Ball,
    Box,
    Halfspace,
    halfspace_bounding_box,
    rejection_sample,
    sample_in_box,
    smallest_bounding_box,
    unit_box,
)
from repro.geometry.ranges import SemiAlgebraicRange


class TestSampleInBox:
    def test_points_inside(self, rng):
        box = Box([0.2, 0.4], [0.6, 0.9])
        pts = sample_in_box(box, 500, rng)
        assert pts.shape == (500, 2)
        assert np.all(box.contains(pts))

    def test_zero_count(self, rng):
        assert sample_in_box(unit_box(2), 0, rng).shape == (0, 2)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_in_box(unit_box(2), -1, rng)

    def test_deterministic_given_seed(self):
        a = sample_in_box(unit_box(3), 50, np.random.default_rng(9))
        b = sample_in_box(unit_box(3), 50, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_roughly_uniform(self, rng):
        pts = sample_in_box(unit_box(1), 8000, rng)
        assert np.mean(pts < 0.5) == pytest.approx(0.5, abs=0.03)


class TestHalfspaceBoundingBox:
    def test_axis_aligned(self):
        half = Halfspace([1.0, 0.0], 0.4)  # x >= 0.4
        bbox = halfspace_bounding_box(half, unit_box(2))
        assert bbox.lows[0] == pytest.approx(0.4)
        assert bbox.highs[0] == pytest.approx(1.0)
        assert bbox.lows[1] == pytest.approx(0.0)

    def test_negative_coefficient(self):
        half = Halfspace([-1.0, 0.0], -0.3)  # x <= 0.3
        bbox = halfspace_bounding_box(half, unit_box(2))
        assert bbox.highs[0] == pytest.approx(0.3)

    def test_diagonal_constraint_tightens_both(self):
        half = Halfspace([1.0, 1.0], 1.5)  # x + y >= 1.5 in the unit square
        bbox = halfspace_bounding_box(half, unit_box(2))
        assert bbox.lows[0] == pytest.approx(0.5)
        assert bbox.lows[1] == pytest.approx(0.5)

    def test_bbox_contains_feasible_region(self, rng):
        for _ in range(20):
            half = Halfspace(rng.normal(size=3), rng.normal() * 0.4)
            bbox = halfspace_bounding_box(half, unit_box(3))
            pts = sample_in_box(unit_box(3), 2000, rng)
            feasible = pts[np.asarray(half.contains(pts))]
            if feasible.size:
                assert np.all(bbox.contains(feasible))

    def test_empty_intersection_collapses(self):
        half = Halfspace([1.0, 0.0], 5.0)
        bbox = halfspace_bounding_box(half, unit_box(2))
        assert bbox.volume() == 0.0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            halfspace_bounding_box(Halfspace([1.0], 0.0), unit_box(2))


class TestSmallestBoundingBox:
    def test_ball(self):
        bbox = smallest_bounding_box(Ball([0.5, 0.5], 0.2))
        assert np.allclose(bbox.lows, [0.3, 0.3])

    def test_box_clipped(self):
        bbox = smallest_bounding_box(Box([-0.5, 0.2], [0.5, 0.8]))
        assert bbox.lows[0] == pytest.approx(0.0)

    def test_disjoint_box_collapses(self):
        bbox = smallest_bounding_box(Box([2.0, 2.0], [3.0, 3.0]))
        assert bbox.volume() == 0.0


class TestRejectionSample:
    def test_box_samples_inside(self, rng):
        box = Box([0.1, 0.1], [0.4, 0.4])
        pts = rejection_sample(box, 200, rng)
        assert pts.shape == (200, 2)
        assert np.all(box.contains(pts))

    def test_ball_samples_inside(self, rng):
        ball = Ball([0.5, 0.5], 0.3)
        pts = rejection_sample(ball, 300, rng)
        assert np.all(ball.contains(pts))

    def test_halfspace_samples_inside(self, rng):
        half = Halfspace([1.0, 1.0], 1.2)
        pts = rejection_sample(half, 300, rng)
        assert np.all(half.contains(pts))
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_semialgebraic_samples_inside(self, rng):
        ring = SemiAlgebraicRange(
            dim=2,
            predicates=[
                lambda p: (p[:, 0] - 0.5) ** 2 + (p[:, 1] - 0.5) ** 2 - 0.2,
                lambda p: 0.05 - ((p[:, 0] - 0.5) ** 2 + (p[:, 1] - 0.5) ** 2),
            ],
            bounding_box=Box([0.0, 0.0], [1.0, 1.0]),
        )
        pts = rejection_sample(ring, 100, rng)
        assert np.all(ring.contains(pts))

    def test_zero_count(self, rng):
        assert rejection_sample(Ball([0.5, 0.5], 0.2), 0, rng).shape == (0, 2)

    def test_tiny_range_degrades_gracefully(self, rng):
        # Acceptance probability ~ 0: must still return the right shape.
        ball = Ball([0.5, 0.5], 1e-9)
        pts = rejection_sample(ball, 10, rng)
        assert pts.shape == (10, 2)

    def test_roughly_uniform_within_ball(self, rng):
        ball = Ball([0.5, 0.5], 0.4)
        pts = rejection_sample(ball, 6000, rng)
        # Left/right symmetry of a uniform sample from a disc.
        assert np.mean(pts[:, 0] < 0.5) == pytest.approx(0.5, abs=0.04)
