"""Cross-cutting volume invariants (complement, additivity, containment)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Ball, Box, Halfspace, unit_box
from repro.geometry.volume import (
    box_ball_intersection_volume,
    box_box_intersection_volume,
    box_halfspace_intersection_volume,
)

normals = st.tuples(
    st.floats(-2, 2, allow_nan=False), st.floats(-2, 2, allow_nan=False)
).filter(lambda t: abs(t[0]) + abs(t[1]) > 1e-3)


class TestComplement:
    @settings(max_examples=60, deadline=None)
    @given(normals, st.floats(-2, 2, allow_nan=False))
    def test_halfspace_complement_partitions_domain(self, normal, offset):
        """vol(a.x >= b) + vol(a.x <= b) = vol(domain) (boundary has
        measure zero)."""
        dom = unit_box(2)
        pos = box_halfspace_intersection_volume(dom, Halfspace(list(normal), offset))
        neg = box_halfspace_intersection_volume(
            dom, Halfspace([-normal[0], -normal[1]], -offset)
        )
        assert pos + neg == pytest.approx(1.0, abs=1e-9)

    def test_halfspace_complement_in_shifted_box(self):
        box = Box([0.25, 0.5], [0.75, 1.0])
        half = Halfspace([1.0, -1.0], 0.1)
        pos = box_halfspace_intersection_volume(box, half)
        neg = box_halfspace_intersection_volume(box, Halfspace([-1.0, 1.0], -0.1))
        assert pos + neg == pytest.approx(box.volume(), abs=1e-12)


class TestAdditivity:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(0.05, 0.95, allow_nan=False),
        st.floats(-0.2, 1.2, allow_nan=False),
        st.floats(-0.2, 1.2, allow_nan=False),
        st.floats(0.05, 0.8, allow_nan=False),
    )
    def test_ball_volume_additive_over_box_split(self, cut, cx, cy, radius):
        """Splitting the domain at x = cut: the two halves' ball overlaps
        sum to the whole domain's."""
        ball = Ball([cx, cy], radius)
        whole = box_ball_intersection_volume(unit_box(2), ball)
        left = box_ball_intersection_volume(Box([0.0, 0.0], [cut, 1.0]), ball)
        right = box_ball_intersection_volume(Box([cut, 0.0], [1.0, 1.0]), ball)
        assert left + right == pytest.approx(whole, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(0.05, 0.95, allow_nan=False),
        normals,
        st.floats(-1, 2, allow_nan=False),
    )
    def test_halfspace_volume_additive_over_box_split(self, cut, normal, offset):
        half = Halfspace(list(normal), offset)
        whole = box_halfspace_intersection_volume(unit_box(2), half)
        left = box_halfspace_intersection_volume(Box([0.0, 0.0], [cut, 1.0]), half)
        right = box_halfspace_intersection_volume(Box([cut, 0.0], [1.0, 1.0]), half)
        assert left + right == pytest.approx(whole, abs=1e-9)


class TestContainmentMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(0.0, 0.4, allow_nan=False),
        st.floats(0.0, 0.4, allow_nan=False),
        st.floats(0.1, 0.5, allow_nan=False),
    )
    def test_smaller_box_has_smaller_overlap(self, lo0, lo1, shrink):
        """A sub-box can never overlap a range by more than its super-box."""
        outer = Box([lo0, lo1], [lo0 + 0.5, lo1 + 0.5])
        inner = Box([lo0 + shrink / 4, lo1 + shrink / 4], [lo0 + 0.5 - shrink / 4, lo1 + 0.5 - shrink / 4])
        for range_ in (
            Box([0.2, 0.2], [0.8, 0.8]),
            Halfspace([1.0, 1.0], 0.8),
            Ball([0.5, 0.5], 0.3),
        ):
            if isinstance(range_, Box):
                outer_vol = box_box_intersection_volume(outer, range_)
                inner_vol = box_box_intersection_volume(inner, range_)
            elif isinstance(range_, Halfspace):
                outer_vol = box_halfspace_intersection_volume(outer, range_)
                inner_vol = box_halfspace_intersection_volume(inner, range_)
            else:
                outer_vol = box_ball_intersection_volume(outer, range_)
                inner_vol = box_ball_intersection_volume(inner, range_)
            assert inner_vol <= outer_vol + 1e-9
