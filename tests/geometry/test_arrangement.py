"""Arrangement cell construction (Section 3.1 bucket design)."""

import numpy as np
import pytest

from repro.geometry import (
    Ball,
    Box,
    Halfspace,
    box_arrangement_cells,
    sign_vector_cells,
    unit_box,
)


class TestBoxArrangement:
    def test_single_box_makes_grid(self):
        cells = box_arrangement_cells([Box([0.25, 0.25], [0.75, 0.75])])
        # 3 cuts per dimension -> 3x3 grid.
        assert len(cells) == 9
        assert sum(c.volume() for c in cells) == pytest.approx(1.0)

    def test_cells_partition_domain(self, rng):
        boxes = [
            Box.from_center(rng.random(2), rng.random(2), clip_to=unit_box(2))
            for _ in range(5)
        ]
        cells = box_arrangement_cells(boxes)
        assert sum(c.volume() for c in cells) == pytest.approx(1.0)

    def test_cells_are_sign_invariant(self, rng):
        """Every cell lies entirely inside or outside each input box."""
        boxes = [
            Box.from_center(rng.random(2), rng.random(2) * 0.6, clip_to=unit_box(2))
            for _ in range(4)
        ]
        cells = box_arrangement_cells(boxes)
        for cell in cells:
            if cell.volume() <= 0:
                continue
            probe = cell.lows + rng.random((20, 2)) * cell.widths
            for box in boxes:
                inside = np.asarray(box.contains(probe))
                assert inside.all() or not inside.any()

    def test_empty_input_returns_domain(self):
        cells = box_arrangement_cells([], domain=unit_box(2))
        assert cells == [unit_box(2)]

    def test_max_cells_guard(self):
        boxes = [Box([i / 30, 0.0], [i / 30 + 0.01, 1.0]) for i in range(30)]
        with pytest.raises(ValueError):
            box_arrangement_cells(boxes, max_cells=10)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            box_arrangement_cells([Box([0.0], [1.0]), Box([0.0, 0.0], [1.0, 1.0])])

    def test_1d_intervals(self):
        cells = box_arrangement_cells([Box([0.3], [0.7])], domain=unit_box(1))
        lows = sorted(float(c.lows[0]) for c in cells)
        assert lows == pytest.approx([0.0, 0.3, 0.7])


class TestSignVectorCells:
    def test_one_point_per_distinct_cell(self, rng):
        ranges = [Box([0.0, 0.0], [0.5, 1.0]), Box([0.0, 0.0], [1.0, 0.5])]
        points = sign_vector_cells(ranges, rng, samples=4000)
        membership = np.stack([np.asarray(r.contains(points)) for r in ranges], axis=1)
        keys = {tuple(row) for row in membership}
        # 4 sign vectors exist: in-both, in-first-only, in-second-only, in-neither.
        assert len(points) == len(keys) == 4

    def test_works_for_mixed_range_types(self, rng):
        ranges = [Ball([0.5, 0.5], 0.3), Halfspace([1.0, 0.0], 0.5)]
        points = sign_vector_cells(ranges, rng, samples=3000)
        membership = np.stack([np.asarray(r.contains(points)) for r in ranges], axis=1)
        assert len({tuple(row) for row in membership}) == len(points)

    def test_empty_ranges_returns_center(self, rng):
        points = sign_vector_cells([], rng, domain=unit_box(2))
        np.testing.assert_allclose(points, [[0.5, 0.5]])

    def test_deterministic_given_generator_seed(self):
        ranges = [Ball([0.4, 0.4], 0.2)]
        a = sign_vector_cells(ranges, np.random.default_rng(3))
        b = sign_vector_cells(ranges, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
