"""Sparse coverage kernels agree with the dense oracle (repro.geometry.sparse).

The dense kernels in :mod:`repro.geometry.batch` are the correctness
oracle; every sparse entry point must reproduce them to ``<= 1e-12`` on
mixed box/halfspace/ball workloads, including the edge cases the index
can manufacture: zero-volume buckets, queries with empty candidate sets,
and both index implementations.  The module-level knobs are forced so the
tests exercise the sparse path even at test-sized bucket counts.
"""

import numpy as np
import pytest

from repro.geometry import sparse as sparse_mod
from repro.geometry.batch import (
    containment_matrix,
    coverage_dot,
    coverage_matrix,
    intersection_volume_matrix,
)
from repro.geometry.index import PackedRTreeIndex, UniformGridIndex
from repro.geometry.ranges import Ball, Box, Halfspace
from repro.geometry.sparse import (
    coverage_matrix_csr,
    intersection_volume_matrix_csr,
    sparse_containment_dot,
    sparse_containment_matrix,
    sparse_coverage_dot,
    sparse_coverage_matrix,
    sparse_intersection_volume_matrix,
)

TOL = 1e-12


@pytest.fixture(autouse=True)
def force_sparse():
    """Exercise the sparse path regardless of bucket count or density."""
    prev_min = sparse_mod.set_min_sparse_buckets(0)
    prev_cross = sparse_mod.set_crossover_threshold(1.0)
    yield
    sparse_mod.set_min_sparse_buckets(prev_min)
    sparse_mod.set_crossover_threshold(prev_cross)


def _buckets(rng, m=120, d=2):
    lows = rng.uniform(0, 0.9, size=(m, d))
    widths = rng.uniform(0.02, 0.12, size=(m, d))
    highs = np.minimum(lows + widths, 1.0)
    return lows, highs


def _mixed_queries(rng, n=40, d=2):
    queries = []
    for i in range(n):
        kind = i % 3
        if kind == 0:
            lo = rng.uniform(0, 0.7, size=d)
            queries.append(Box(lo, lo + rng.uniform(0.05, 0.3, size=d)))
        elif kind == 1:
            queries.append(
                Halfspace(rng.normal(size=d), float(rng.uniform(-0.2, 0.8)))
            )
        else:
            queries.append(
                Ball(rng.uniform(0.2, 0.8, size=d), float(rng.uniform(0.05, 0.3)))
            )
    return queries


@pytest.mark.parametrize("cls", [UniformGridIndex, PackedRTreeIndex])
def test_intersection_volumes_match_dense(cls):
    rng = np.random.default_rng(0)
    b_lows, b_highs = _buckets(rng)
    queries = _mixed_queries(rng)
    index = cls(b_lows, b_highs)
    dense = intersection_volume_matrix(queries, b_lows, b_highs)
    got = sparse_intersection_volume_matrix(queries, index)
    assert np.max(np.abs(got - dense)) <= TOL


@pytest.mark.parametrize("cls", [UniformGridIndex, PackedRTreeIndex])
def test_coverage_matrix_matches_dense(cls):
    rng = np.random.default_rng(1)
    b_lows, b_highs = _buckets(rng)
    b_volumes = np.prod(b_highs - b_lows, axis=1)
    queries = _mixed_queries(rng)
    index = cls(b_lows, b_highs)
    dense = coverage_matrix(queries, b_lows, b_highs, b_volumes)
    got = sparse_coverage_matrix(queries, index, b_volumes)
    assert np.max(np.abs(got - dense)) <= TOL


@pytest.mark.parametrize("cls", [UniformGridIndex, PackedRTreeIndex])
def test_coverage_dot_matches_dense(cls):
    rng = np.random.default_rng(2)
    b_lows, b_highs = _buckets(rng)
    b_volumes = np.prod(b_highs - b_lows, axis=1)
    weights = rng.dirichlet(np.ones(b_lows.shape[0]))
    queries = _mixed_queries(rng)
    index = cls(b_lows, b_highs)
    dense = coverage_dot(queries, b_lows, b_highs, b_volumes, weights)
    got = sparse_coverage_dot(queries, index, b_volumes, weights)
    assert np.max(np.abs(got - dense)) <= TOL


def test_csr_variants_match_dense():
    rng = np.random.default_rng(3)
    b_lows, b_highs = _buckets(rng)
    b_volumes = np.prod(b_highs - b_lows, axis=1)
    queries = _mixed_queries(rng)
    index = UniformGridIndex(b_lows, b_highs)
    ivm = intersection_volume_matrix_csr(queries, index).toarray()
    assert np.max(np.abs(ivm - intersection_volume_matrix(queries, b_lows, b_highs))) <= TOL
    cov = coverage_matrix_csr(queries, index, b_volumes).toarray()
    assert np.max(np.abs(cov - coverage_matrix(queries, b_lows, b_highs, b_volumes))) <= TOL


def test_zero_volume_buckets_contribute_zero():
    # Degenerate (point) buckets have Vol(B) = 0: coverage is defined as 0
    # in both paths, never NaN/inf.
    rng = np.random.default_rng(4)
    b_lows, b_highs = _buckets(rng, m=60)
    b_lows[:10] = b_highs[:10]  # ten zero-volume buckets
    b_volumes = np.prod(b_highs - b_lows, axis=1)
    weights = rng.dirichlet(np.ones(60))
    queries = _mixed_queries(rng, n=24)
    index = UniformGridIndex(b_lows, b_highs)
    dense = coverage_matrix(queries, b_lows, b_highs, b_volumes)
    got = sparse_coverage_matrix(queries, index, b_volumes)
    assert np.isfinite(got).all()
    assert np.max(np.abs(got - dense)) <= TOL
    assert np.all(got[:, :10] == 0.0)
    dot = sparse_coverage_dot(queries, index, b_volumes, weights)
    assert np.max(np.abs(dot - dense @ weights)) <= TOL


def test_empty_candidate_sets_give_zero_rows():
    # Queries disjoint from every bucket must produce exactly-zero rows.
    rng = np.random.default_rng(5)
    b_lows, b_highs = _buckets(rng, m=80)
    b_lows *= 0.45
    b_highs = b_lows + 0.02  # confined to the lower-left corner
    index = UniformGridIndex(b_lows, b_highs)
    queries = [Box([0.9, 0.9], [0.99, 0.99]), Ball([0.95, 0.95], 0.02)]
    got = sparse_intersection_volume_matrix(queries, index)
    assert np.all(got == 0.0)
    dot = sparse_coverage_dot(queries, index, None, np.ones(80) / 80)
    assert np.all(dot == 0.0)


@pytest.mark.parametrize("cls", [UniformGridIndex, PackedRTreeIndex])
def test_containment_matches_dense(cls):
    rng = np.random.default_rng(6)
    points = rng.uniform(0, 1, size=(200, 2))
    weights = rng.dirichlet(np.ones(200))
    queries = _mixed_queries(rng, n=30)
    index = cls(points, points)
    dense = containment_matrix(queries, points)
    got = sparse_containment_matrix(queries, index)
    assert np.array_equal(got, dense)
    dot = sparse_containment_dot(queries, index, weights)
    assert np.max(np.abs(dot - dense @ weights)) <= TOL


def test_min_buckets_short_circuit_is_bitwise():
    # Below the floor the sparse entry points delegate to the dense
    # kernels on the identical arrays — results are bitwise equal.
    sparse_mod.set_min_sparse_buckets(10**6)
    rng = np.random.default_rng(7)
    b_lows, b_highs = _buckets(rng, m=50)
    queries = _mixed_queries(rng, n=15)
    index = UniformGridIndex(b_lows, b_highs)
    dense = intersection_volume_matrix(queries, b_lows, b_highs)
    got = sparse_intersection_volume_matrix(queries, index)
    assert np.array_equal(got, dense)


def test_knob_validation_and_restore():
    with pytest.raises(ValueError):
        sparse_mod.set_crossover_threshold(-0.1)
    with pytest.raises(ValueError):
        sparse_mod.set_crossover_threshold(1.5)
    with pytest.raises(ValueError):
        sparse_mod.set_min_sparse_buckets(-1)
    prev = sparse_mod.set_crossover_threshold(0.5)
    assert sparse_mod.get_crossover_threshold() == 0.5
    sparse_mod.set_crossover_threshold(prev)
    assert sparse_mod.get_crossover_threshold() == prev
