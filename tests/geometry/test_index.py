"""Spatial bucket-index invariants (repro.geometry.index).

The index is a *pruning* structure: its only correctness obligation is that
``candidates_for_boxes`` returns a **superset** of the truly intersecting
buckets (false positives are fine — the exact kernels zero them out; false
negatives would silently drop probability mass).  Both implementations
(uniform grid, packed R-tree) must satisfy the same contract, including on
degenerate inputs: point buckets, empty candidate sets, and the
``max_pairs`` early-abort used by the density crossover.
"""

import numpy as np
import pytest

from repro.geometry.index import (
    PackedRTreeIndex,
    UniformGridIndex,
    build_bucket_index,
)


def _random_buckets(rng, m, d):
    lows = rng.uniform(0, 0.9, size=(m, d))
    widths = rng.uniform(0.01, 0.1, size=(m, d))
    return lows, np.minimum(lows + widths, 1.0)


def _random_queries(rng, n, d, extent=0.2):
    lows = rng.uniform(0, 1 - extent, size=(n, d))
    widths = rng.uniform(0.01, extent, size=(n, d))
    return lows, np.minimum(lows + widths, 1.0)


def _true_pairs(q_lows, q_highs, b_lows, b_highs):
    """Boolean (n, m) closed-box intersection oracle."""
    return np.all(
        (q_lows[:, None, :] <= b_highs[None, :, :])
        & (q_highs[:, None, :] >= b_lows[None, :, :]),
        axis=2,
    )


INDEX_CLASSES = [UniformGridIndex, PackedRTreeIndex]


@pytest.mark.parametrize("cls", INDEX_CLASSES)
@pytest.mark.parametrize("d", [1, 2, 3])
def test_candidates_are_a_superset(cls, d):
    rng = np.random.default_rng(7 * d)
    b_lows, b_highs = _random_buckets(rng, 200, d)
    q_lows, q_highs = _random_queries(rng, 50, d)
    index = cls(b_lows, b_highs)
    indptr, ids = index.candidates_for_boxes(q_lows, q_highs)
    truth = _true_pairs(q_lows, q_highs, b_lows, b_highs)
    for i in range(q_lows.shape[0]):
        got = set(ids[indptr[i] : indptr[i + 1]].tolist())
        need = set(np.nonzero(truth[i])[0].tolist())
        assert need <= got, f"query {i} lost buckets {need - got}"


@pytest.mark.parametrize("cls", INDEX_CLASSES)
def test_candidate_ids_sorted_and_unique(cls):
    rng = np.random.default_rng(3)
    b_lows, b_highs = _random_buckets(rng, 150, 2)
    q_lows, q_highs = _random_queries(rng, 30, 2)
    index = cls(b_lows, b_highs)
    indptr, ids = index.candidates_for_boxes(q_lows, q_highs)
    for i in range(q_lows.shape[0]):
        chunk = ids[indptr[i] : indptr[i + 1]]
        assert np.all(np.diff(chunk) > 0), "ids must be strictly ascending"


@pytest.mark.parametrize("cls", INDEX_CLASSES)
def test_point_buckets_supported(cls):
    # Point-support models (PtsHist, discrete ERM) index zero-extent boxes.
    rng = np.random.default_rng(11)
    points = rng.uniform(0, 1, size=(300, 2))
    index = cls(points, points)
    q_lows = np.array([[0.2, 0.2]])
    q_highs = np.array([[0.6, 0.6]])
    indptr, ids = index.candidates_for_boxes(q_lows, q_highs)
    inside = np.all((points >= q_lows[0]) & (points <= q_highs[0]), axis=1)
    assert set(np.nonzero(inside)[0].tolist()) <= set(ids.tolist())


@pytest.mark.parametrize("cls", INDEX_CLASSES)
def test_extreme_point_bucket_is_never_lost(cls):
    # Regression: a zero-extent bucket at the grid's max corner floors
    # past the last cell (f0 == res) and was dropped as "outside".
    points = np.array([[0.1, 0.2], [0.5, 0.5], [0.97, 0.67], [0.3, 0.97]])
    index = cls(points, points)
    indptr, ids = index.candidates_for_boxes(
        np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
    )
    assert set(ids.tolist()) == {0, 1, 2, 3}


@pytest.mark.parametrize("cls", INDEX_CLASSES)
def test_disjoint_query_yields_empty_candidates(cls):
    rng = np.random.default_rng(5)
    b_lows, b_highs = _random_buckets(rng, 100, 2)
    b_lows = b_lows * 0.4  # buckets confined to [0, 0.5)^2
    b_highs = b_highs * 0.4 + 0.05
    index = cls(b_lows, b_highs)
    indptr, ids = index.candidates_for_boxes(
        np.array([[0.8, 0.8]]), np.array([[0.95, 0.95]])
    )
    assert indptr[-1] == 0 and ids.size == 0


@pytest.mark.parametrize("cls", INDEX_CLASSES)
def test_max_pairs_abort(cls):
    rng = np.random.default_rng(9)
    b_lows, b_highs = _random_buckets(rng, 200, 2)
    index = cls(b_lows, b_highs)
    # The whole-domain query hits every bucket: a tiny cap must abort...
    whole = (np.zeros((1, 2)), np.ones((1, 2)))
    assert index.candidates_for_boxes(*whole, max_pairs=5) is None
    # ...while a generous cap returns the complete candidate set.
    found = index.candidates_for_boxes(*whole, max_pairs=10**9)
    assert found is not None
    indptr, ids = found
    assert indptr[-1] == 200 and ids.size == 200


def test_build_selects_grid_for_uniform_buckets():
    rng = np.random.default_rng(1)
    b_lows, b_highs = _random_buckets(rng, 256, 2)
    index = build_bucket_index(b_lows, b_highs)
    assert isinstance(index, UniformGridIndex)
    assert index.kind == "grid"


def test_build_falls_back_to_rtree_on_skew():
    # A few domain-spanning buckets explode grid occupancy (each incident
    # to every cell), which must trip the packed R-tree fallback.
    rng = np.random.default_rng(2)
    b_lows, b_highs = _random_buckets(rng, 256, 2)
    b_lows[:16] = 0.0
    b_highs[:16] = 1.0
    index = build_bucket_index(b_lows, b_highs)
    assert isinstance(index, PackedRTreeIndex)
    assert index.kind == "rtree"


def test_halfspace_candidates_superset():
    rng = np.random.default_rng(13)
    b_lows, b_highs = _random_buckets(rng, 150, 2)
    index = build_bucket_index(b_lows, b_highs)
    normals = rng.normal(size=(20, 2))
    offsets = rng.uniform(-0.5, 1.2, size=20)
    keep = index.halfspace_candidates(normals, offsets)
    # Oracle: a bucket meets {a.x >= b} iff its best corner does.
    centers = 0.5 * (b_lows + b_highs)
    half = 0.5 * (b_highs - b_lows)
    support = normals @ centers.T + np.abs(normals) @ half.T
    truly = support >= offsets[:, None]
    assert np.all(keep[truly]), "halfspace prune dropped an intersecting bucket"


def test_index_rejects_bad_shapes():
    with pytest.raises(ValueError):
        build_bucket_index(np.zeros((0, 2)), np.zeros((0, 2)))
    with pytest.raises(ValueError):
        build_bucket_index(np.zeros((3, 2)), np.zeros((3, 3)))
