"""Exact 2-D halfspace arrangement enumeration."""

import numpy as np
import pytest

from repro.geometry import Halfspace, unit_box
from repro.geometry.arrangement import halfspace_arrangement_points


def _cells(halfspaces, points):
    membership = np.stack([np.asarray(h.contains(points)) for h in halfspaces], axis=1)
    return {tuple(row) for row in membership}


class TestHalfspaceArrangement:
    def test_one_line_two_cells(self):
        hs = [Halfspace([1.0, 0.0], 0.5)]
        points = halfspace_arrangement_points(hs)
        assert len(_cells(hs, points)) == 2

    def test_two_crossing_lines_four_cells(self):
        hs = [Halfspace([1.0, 0.0], 0.5), Halfspace([0.0, 1.0], 0.5)]
        points = halfspace_arrangement_points(hs)
        assert len(_cells(hs, points)) == 4

    def test_matches_monte_carlo_discovery(self, rng):
        """Exact enumeration finds every cell a dense MC sample finds."""
        for trial in range(5):
            hs = [
                Halfspace.through_point(rng.random(2), rng.normal(size=2))
                for _ in range(8)
            ]
            exact = _cells(hs, halfspace_arrangement_points(hs))
            mc = _cells(hs, rng.random((100_000, 2)))
            assert mc.issubset(exact)

    def test_representatives_inside_domain(self, rng):
        hs = [
            Halfspace.through_point(rng.random(2), rng.normal(size=2))
            for _ in range(6)
        ]
        points = halfspace_arrangement_points(hs)
        assert np.all(unit_box(2).contains(points))

    def test_cell_count_within_arrangement_bound(self, rng):
        """n lines in general position partition the plane into at most
        1 + n + C(n, 2) cells; clipping to the box only removes cells."""
        n = 10
        hs = [
            Halfspace.through_point(rng.random(2), rng.normal(size=2))
            for _ in range(n)
        ]
        points = halfspace_arrangement_points(hs)
        assert len(points) <= 1 + n + n * (n - 1) // 2

    def test_empty_input(self):
        points = halfspace_arrangement_points([])
        assert points.shape == (1, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            halfspace_arrangement_points([Halfspace([1.0, 0.0, 0.0], 0.2)])
        with pytest.raises(ValueError):
            halfspace_arrangement_points([Halfspace([1.0, 0.0], 0.5)], epsilon=0.5)

    def test_exact_erm_for_halfspaces(self, rng):
        """The exact buckets support a perfect fit of consistent labels."""
        from repro.distributions import DiscreteDistribution
        from repro.solvers import fit_simplex_weights

        hs = [
            Halfspace.through_point(rng.random(2), rng.normal(size=2))
            for _ in range(10)
        ]
        from repro.geometry.volume import range_volume

        labels = np.array([range_volume(h, unit_box(2)) for h in hs])
        points = halfspace_arrangement_points(hs)
        design = np.stack([np.asarray(h.contains(points), dtype=float) for h in hs])
        weights = fit_simplex_weights(design, labels, method="pgd")
        model = DiscreteDistribution(points, weights)
        preds = np.array([model.selectivity(h) for h in hs])
        assert np.max(np.abs(preds - labels)) < 0.02
