"""Unit tests for the range classes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Ball,
    Box,
    DiscIntersectionRange,
    Halfspace,
    SemiAlgebraicRange,
    unit_box,
)


def boxes_2d(draw):
    lows = draw(
        st.tuples(
            st.floats(0, 0.9, allow_nan=False), st.floats(0, 0.9, allow_nan=False)
        )
    )
    widths = draw(
        st.tuples(
            st.floats(0.01, 0.5, allow_nan=False), st.floats(0.01, 0.5, allow_nan=False)
        )
    )
    lo = np.array(lows)
    return Box(lo, lo + np.array(widths))


box_strategy = st.composite(boxes_2d)()


class TestBox:
    def test_construction_and_volume(self):
        box = Box([0.0, 0.2], [0.5, 0.6])
        assert box.dim == 2
        assert box.volume() == pytest.approx(0.5 * 0.4)

    def test_degenerate_box_has_zero_volume(self):
        box = Box([0.3, 0.3], [0.3, 0.9])
        assert box.volume() == 0.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Box([0.5], [0.2])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Box([0.0, 0.0], [1.0])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            Box([0.0, np.nan], [1.0, 1.0])

    def test_contains_vectorised(self):
        box = Box([0.0, 0.0], [0.5, 0.5])
        pts = np.array([[0.25, 0.25], [0.75, 0.25], [0.5, 0.5]])
        np.testing.assert_array_equal(box.contains(pts), [True, False, True])

    def test_contains_single_point_returns_bool(self):
        box = Box([0.0], [1.0])
        assert box.contains(np.array([0.5])) is True
        assert [0.5] in box

    def test_contains_closed_boundary(self):
        box = Box([0.0, 0.0], [1.0, 1.0])
        assert [0.0, 1.0] in box

    def test_intersect(self):
        a = Box([0.0, 0.0], [0.6, 0.6])
        b = Box([0.4, 0.4], [1.0, 1.0])
        inter = a.intersect(b)
        assert inter == Box([0.4, 0.4], [0.6, 0.6])

    def test_intersect_disjoint_returns_none(self):
        a = Box([0.0, 0.0], [0.3, 0.3])
        b = Box([0.5, 0.5], [1.0, 1.0])
        assert a.intersect(b) is None
        assert not a.intersects(b)

    def test_contains_box(self):
        outer = Box([0.0, 0.0], [1.0, 1.0])
        inner = Box([0.2, 0.2], [0.8, 0.8])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_split_partitions_volume(self):
        box = Box([0.0, 0.0, 0.0], [1.0, 2.0, 0.5])
        children = box.split()
        assert len(children) == 8
        assert sum(c.volume() for c in children) == pytest.approx(box.volume())

    def test_split_children_cover_parent_points(self, rng):
        box = Box([0.2, 0.1], [0.9, 0.8])
        children = box.split()
        pts = box.lows + rng.random((200, 2)) * box.widths
        counts = sum(np.asarray(c.contains(pts)).astype(int) for c in children)
        assert np.all(counts >= 1)  # boundary points may be in 2 children

    def test_from_center_clips_to_domain(self):
        box = Box.from_center([0.95, 0.5], [0.4, 0.2], clip_to=unit_box(2))
        assert box.highs[0] == pytest.approx(1.0)
        assert box.lows[0] == pytest.approx(0.75)

    def test_from_center_outside_domain_degenerates(self):
        box = Box.from_center([2.0, 2.0], [0.1, 0.1], clip_to=unit_box(2))
        assert box.volume() == 0.0

    def test_center(self):
        assert np.allclose(Box([0.0, 0.2], [1.0, 0.4]).center(), [0.5, 0.3])

    def test_equality_and_hash(self):
        a = Box([0.1, 0.2], [0.5, 0.6])
        b = Box([0.1, 0.2], [0.5, 0.6])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Box([0.1, 0.2], [0.5, 0.7])

    @settings(max_examples=40, deadline=None)
    @given(box_strategy, box_strategy)
    def test_subtract_is_disjoint_partition(self, box, hole):
        pieces = box.subtract(hole)
        overlap = box.intersect(hole)
        hole_volume = overlap.volume() if overlap is not None else 0.0
        total = sum(p.volume() for p in pieces)
        assert total == pytest.approx(box.volume() - hole_volume, abs=1e-9)
        for i, a in enumerate(pieces):
            for b in pieces[i + 1 :]:
                inter = a.intersect(b)
                assert inter is None or inter.volume() < 1e-12

    @settings(max_examples=40, deadline=None)
    @given(box_strategy, box_strategy)
    def test_subtract_pieces_avoid_hole(self, box, hole):
        for piece in box.subtract(hole):
            inter = piece.intersect(hole)
            assert inter is None or inter.volume() < 1e-12

    def test_subtract_no_overlap_returns_self(self):
        box = Box([0.0, 0.0], [0.4, 0.4])
        hole = Box([0.6, 0.6], [0.9, 0.9])
        assert box.subtract(hole) == [box]

    def test_subtract_full_cover_returns_empty(self):
        box = Box([0.2, 0.2], [0.4, 0.4])
        hole = Box([0.0, 0.0], [1.0, 1.0])
        assert box.subtract(hole) == []


class TestUnitBox:
    def test_unit_box(self):
        dom = unit_box(3)
        assert dom.volume() == 1.0
        assert dom.dim == 3

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            unit_box(0)


class TestHalfspace:
    def test_contains(self):
        half = Halfspace([1.0, 0.0], 0.5)  # x >= 0.5
        pts = np.array([[0.6, 0.0], [0.4, 1.0], [0.5, 0.5]])
        np.testing.assert_array_equal(half.contains(pts), [True, False, True])

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            Halfspace([0.0, 0.0], 0.1)

    def test_through_point(self):
        half = Halfspace.through_point([0.5, 0.5], [1.0, 1.0])
        assert [0.5, 0.5] in half
        assert [0.6, 0.6] in half
        assert [0.3, 0.3] not in half

    def test_bounding_box_clipped_to_domain(self):
        half = Halfspace([1.0, 0.0], 0.25)
        bbox = half.bounding_box()
        assert bbox.lows[0] == pytest.approx(0.25)
        assert bbox.highs[0] == pytest.approx(1.0)
        assert bbox.lows[1] == pytest.approx(0.0)
        assert bbox.highs[1] == pytest.approx(1.0)


class TestBall:
    def test_contains(self):
        ball = Ball([0.5, 0.5], 0.25)
        pts = np.array([[0.5, 0.5], [0.75, 0.5], [0.8, 0.5]])
        np.testing.assert_array_equal(ball.contains(pts), [True, True, False])

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Ball([0.5], -0.1)

    def test_bounding_box(self):
        ball = Ball([0.5, 0.5], 0.2)
        bbox = ball.bounding_box()
        assert np.allclose(bbox.lows, [0.3, 0.3])
        assert np.allclose(bbox.highs, [0.7, 0.7])

    def test_bounding_box_clipped(self):
        ball = Ball([0.1, 0.1], 0.5)
        bbox = ball.bounding_box()
        assert np.allclose(bbox.lows, [0.0, 0.0])

    def test_zero_radius_is_a_point(self):
        ball = Ball([0.3, 0.3], 0.0)
        assert [0.3, 0.3] in ball
        assert [0.3001, 0.3] not in ball


class TestSemiAlgebraicRange:
    def test_paper_example_annulus_with_parabola(self):
        """The annulus ∩ parabola region of Figure 3 (left)."""
        rng = SemiAlgebraicRange(
            dim=2,
            predicates=[
                lambda p: p[:, 0] ** 2 + p[:, 1] ** 2 - 4.0,  # x^2+y^2 <= 4
                lambda p: 1.0 - (p[:, 0] ** 2 + p[:, 1] ** 2),  # x^2+y^2 >= 1
                lambda p: p[:, 1] - 2.0 * p[:, 0] ** 2,  # y - 2x^2 <= 0
            ],
        )
        pts = np.array(
            [
                [1.5, 0.0],  # inside annulus, below parabola -> in
                [0.0, 0.0],  # inside inner circle -> out
                [3.0, 0.0],  # outside outer circle -> out
                [0.5, 1.5],  # above parabola -> out
            ]
        )
        np.testing.assert_array_equal(rng.contains(pts), [True, False, False, False])

    def test_custom_combiner_disjunction(self):
        rng = SemiAlgebraicRange(
            dim=1,
            predicates=[
                lambda p: p[:, 0] - 0.2,  # x <= 0.2
                lambda p: 0.8 - p[:, 0],  # x >= 0.8
            ],
            combine=lambda truth: np.any(truth, axis=0),
        )
        pts = np.array([[0.1], [0.5], [0.9]])
        np.testing.assert_array_equal(rng.contains(pts), [True, False, True])

    def test_requires_predicates(self):
        with pytest.raises(ValueError):
            SemiAlgebraicRange(dim=2, predicates=[])


class TestDiscIntersectionRange:
    def test_lifting_semantics(self):
        """A data disc intersects the query disc iff center distance <= r+z."""
        query = DiscIntersectionRange(center=[0.5, 0.5], radius=0.2)
        # disc at (0.9, 0.5) with radius 0.25: distance 0.4 <= 0.2+0.25 -> in
        assert [0.9, 0.5, 0.25] in query
        # same center, radius 0.1: distance 0.4 > 0.3 -> out
        assert [0.9, 0.5, 0.1] not in query

    def test_negative_data_radius_excluded(self):
        query = DiscIntersectionRange(center=[0.5, 0.5], radius=0.5)
        assert [0.5, 0.5, -0.1] not in query

    def test_dim_is_three(self):
        assert DiscIntersectionRange([0.5, 0.5], 0.1).dim == 3
