"""Exposition parser/linter and the text-format edge cases it guards.

The linter is the contract between this repo's hand-rolled exposition
and real Prometheus scrapers: everything the registry or the fleet
aggregator renders must parse and lint clean, and the linter must
actually catch the malformations it claims to.
"""

from __future__ import annotations

import math

from repro.observability import (
    MetricsRegistry,
    lint_exposition,
    parse_exposition,
    set_worker_label,
)
from repro.observability.expolint import main as expolint_main


class TestParse:
    def test_parses_families_and_samples(self):
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "queries", labels=("kind",)).inc(
            3, kind="box"
        )
        registry.gauge("repro_g", "gauge").set(1.5)
        families, problems = parse_exposition(registry.render())
        assert problems == []
        assert families["repro_q_total"]["type"] == "counter"
        name, labels, value, _ = families["repro_q_total"]["samples"][0]
        assert (name, labels, value) == ("repro_q_total", {"kind": "box"}, 3.0)
        assert families["repro_g"]["samples"][0][2] == 1.5

    def test_histogram_samples_group_under_base_name(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h_seconds", "h", buckets=(0.1, 1.0)).observe(0.05)
        families, problems = parse_exposition(registry.render())
        assert problems == []
        family = families["repro_h_seconds"]
        assert family["type"] == "histogram"
        sample_names = {sample[0] for sample in family["samples"]}
        assert sample_names == {
            "repro_h_seconds_bucket",
            "repro_h_seconds_sum",
            "repro_h_seconds_count",
        }

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        gnarly = 'a\\b"c\nd'
        registry.counter("repro_q_total", "q", labels=("p",)).inc(1, p=gnarly)
        families, problems = parse_exposition(registry.render())
        assert problems == []
        assert families["repro_q_total"]["samples"][0][1] == {"p": gnarly}

    def test_special_float_values_parse(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_g", "g", labels=("k",))
        gauge.set(math.inf, k="pinf")
        gauge.set(-math.inf, k="ninf")
        gauge.set(math.nan, k="nan")
        families, problems = parse_exposition(registry.render())
        assert problems == []
        values = {
            labels["k"]: value
            for _, labels, value, _ in families["repro_g"]["samples"]
        }
        assert values["pinf"] == math.inf
        assert values["ninf"] == -math.inf
        assert math.isnan(values["nan"])

    def test_empty_registry_renders_empty_and_lints_clean(self):
        registry = MetricsRegistry()
        assert registry.render() == ""
        families, problems = parse_exposition("")
        assert families == {} and problems == []
        assert lint_exposition("") == []

    def test_garbage_line_reported(self):
        families, problems = parse_exposition("!!! not exposition\n")
        assert families == {}
        assert problems and "1" in problems[0]


class TestLint:
    def test_registry_render_lints_clean(self):
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "q").inc(2)
        registry.histogram("repro_h_seconds", "h").observe(0.3)
        assert lint_exposition(registry.render()) == []

    def test_worker_labelled_render_lints_clean(self):
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "q").inc(2)
        registry.histogram("repro_h_seconds", "h").observe(0.3)
        previous = set_worker_label("3")
        try:
            text = registry.render()
        finally:
            set_worker_label(previous)
        assert lint_exposition(text) == []
        families, _ = parse_exposition(text)
        assert families["repro_q_total"]["samples"][0][1] == {"worker": "3"}

    def test_sample_without_type_flagged(self):
        problems = lint_exposition("repro_q_total 3\n")
        assert any("TYPE" in p for p in problems)

    def test_negative_counter_flagged(self):
        text = (
            "# HELP repro_q_total q\n"
            "# TYPE repro_q_total counter\n"
            "repro_q_total -1\n"
        )
        assert any("negative" in p for p in lint_exposition(text))

    def test_non_cumulative_histogram_buckets_flagged(self):
        text = (
            "# HELP repro_h_seconds h\n"
            "# TYPE repro_h_seconds histogram\n"
            'repro_h_seconds_bucket{le="0.1"} 5\n'
            'repro_h_seconds_bucket{le="1"} 3\n'
            'repro_h_seconds_bucket{le="+Inf"} 3\n'
            "repro_h_seconds_sum 1.0\n"
            "repro_h_seconds_count 3\n"
        )
        assert any("cumulative" in p for p in lint_exposition(text))

    def test_histogram_missing_inf_bucket_flagged(self):
        text = (
            "# HELP repro_h_seconds h\n"
            "# TYPE repro_h_seconds histogram\n"
            'repro_h_seconds_bucket{le="0.1"} 5\n'
            "repro_h_seconds_sum 1.0\n"
            "repro_h_seconds_count 5\n"
        )
        assert any("+Inf" in p for p in lint_exposition(text))

    def test_histogram_count_bucket_mismatch_flagged(self):
        text = (
            "# HELP repro_h_seconds h\n"
            "# TYPE repro_h_seconds histogram\n"
            'repro_h_seconds_bucket{le="+Inf"} 5\n'
            "repro_h_seconds_sum 1.0\n"
            "repro_h_seconds_count 7\n"
        )
        assert any("_count" in p for p in lint_exposition(text))

    def test_duplicate_type_flagged(self):
        text = (
            "# TYPE repro_q_total counter\n"
            "# TYPE repro_q_total counter\n"
            "repro_q_total 1\n"
        )
        assert any("duplicate" in p.lower() for p in lint_exposition(text))


class TestCli:
    def test_main_ok_on_clean_file(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "q").inc(1)
        path = tmp_path / "metrics.txt"
        path.write_text(registry.render())
        assert expolint_main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_main_fails_on_problems(self, tmp_path, capsys):
        path = tmp_path / "metrics.txt"
        path.write_text("repro_q_total -3\n")
        assert expolint_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
