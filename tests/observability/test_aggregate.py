"""Fleet aggregation: snapshots, merges, reset tracking, rendering.

The correctness invariant throughout: the merged fleet view must equal
what one registry would have recorded had every worker's events happened
in a single process — counters and histogram buckets *exactly*, not
approximately.
"""

from __future__ import annotations

import pytest

from repro.observability import (
    FleetAggregator,
    MetricsRegistry,
    lint_exposition,
    merge_snapshots,
    parse_exposition,
    snapshot_registries,
    snapshot_registry,
)


def _registry_with_traffic(queries=5, hits=2, latencies=()):
    registry = MetricsRegistry()
    registry.counter("repro_service_queries_total", "queries").inc(queries)
    registry.counter(
        "repro_prediction_cache_hits_total", "hits", labels=("kind",)
    ).inc(hits, kind="exact")
    registry.gauge("repro_inflight", "in flight").set(3.0)
    hist = registry.histogram(
        "repro_latency_seconds", "latency", buckets=(0.01, 0.1, 1.0)
    )
    for value in latencies:
        hist.observe(value)
    return registry


class TestSnapshot:
    def test_snapshot_captures_all_kinds(self):
        registry = _registry_with_traffic(latencies=[0.005, 0.5])
        snap = snapshot_registry(registry)
        assert snap["counters"]["repro_service_queries_total"]["series"][()] == 5.0
        assert snap["counters"]["repro_prediction_cache_hits_total"]["series"][
            ("exact",)
        ] == 2.0
        assert snap["gauges"]["repro_inflight"]["series"][()] == 3.0
        counts, acc, total = snap["histograms"]["repro_latency_seconds"]["series"][()]
        assert total == 2 and acc == pytest.approx(0.505)
        assert sum(counts) == 2

    def test_snapshot_is_a_copy(self):
        registry = _registry_with_traffic()
        snap = snapshot_registry(registry)
        registry.counter("repro_service_queries_total", "queries").inc(100)
        assert snap["counters"]["repro_service_queries_total"]["series"][()] == 5.0

    def test_snapshot_registries_first_wins_on_collision(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_dup_total", "a").inc(1)
        b.counter("repro_dup_total", "b").inc(9)
        b.counter("repro_only_b_total", "b").inc(4)
        snap = snapshot_registries(a, b)
        assert snap["counters"]["repro_dup_total"]["series"][()] == 1.0
        assert snap["counters"]["repro_only_b_total"]["series"][()] == 4.0


class TestMergeSnapshots:
    def test_counters_sum_histograms_sum_bucketwise(self):
        a = _registry_with_traffic(queries=5, hits=2, latencies=[0.005, 0.5])
        b = _registry_with_traffic(queries=7, hits=1, latencies=[0.05])
        merged = merge_snapshots([snapshot_registry(a), snapshot_registry(b)])
        assert merged["counters"]["repro_service_queries_total"]["series"][()] == 12.0
        counts, acc, total = merged["histograms"]["repro_latency_seconds"]["series"][()]
        assert total == 3 and acc == pytest.approx(0.555)

    def test_merge_equals_single_registry_replay(self):
        """Exact-equality form of the invariant: merging N snapshots is
        indistinguishable from one registry that saw every event."""
        events = [
            [0.005, 0.02, 0.9, 2.0],
            [0.05, 0.007],
            [1.5, 0.3, 0.011],
        ]
        parts = [
            snapshot_registry(_registry_with_traffic(queries=i + 1, latencies=ev))
            for i, ev in enumerate(events)
        ]
        merged = merge_snapshots(parts)

        replay = _registry_with_traffic(
            queries=sum(i + 1 for i in range(3)),
            hits=2 * 3,
            latencies=[v for ev in events for v in ev],
        )
        expected = snapshot_registry(replay)
        assert (
            merged["counters"]["repro_service_queries_total"]["series"]
            == expected["counters"]["repro_service_queries_total"]["series"]
        )
        got = merged["histograms"]["repro_latency_seconds"]["series"][()]
        want = expected["histograms"]["repro_latency_seconds"]["series"][()]
        assert got[0] == want[0]  # bucket counts exactly equal
        assert got[2] == want[2]
        assert got[1] == pytest.approx(want[1])

    def test_incompatible_bucket_layouts_first_writer_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("repro_h_seconds", "h", buckets=(0.1, 1.0)).observe(0.05)
        b.histogram("repro_h_seconds", "h", buckets=(0.5,)).observe(0.05)
        merged = merge_snapshots([snapshot_registry(a), snapshot_registry(b)])
        entry = merged["histograms"]["repro_h_seconds"]
        assert entry["buckets"] == (0.1, 1.0)
        assert entry["series"][()][2] == 1  # b's incompatible series dropped


class TestFleetAggregator:
    def test_totals_sum_across_workers(self):
        agg = FleetAggregator()
        agg.observe(0, 1, snapshot_registry(_registry_with_traffic(queries=5)))
        agg.observe(1, 1, snapshot_registry(_registry_with_traffic(queries=7)))
        assert agg.total("repro_service_queries_total") == 12.0
        assert agg.total("repro_prediction_cache_hits_total", kind="exact") == 4.0
        assert agg.total("repro_absent_total") == 0.0

    def test_restart_folds_dead_incarnation_into_base(self):
        agg = FleetAggregator()
        agg.observe(0, 1, snapshot_registry(_registry_with_traffic(queries=10)))
        # Incarnation 2 boots with zeroed counters: the fleet total must
        # keep incarnation 1's final 10, not regress to 3.
        agg.observe(0, 2, snapshot_registry(_registry_with_traffic(queries=3)))
        assert agg.total("repro_service_queries_total") == 13.0
        assert agg.workers()["0"]["incarnation"] == 2

    def test_totals_never_decrease_across_restart_storm(self):
        agg = FleetAggregator()
        last = 0.0
        for incarnation in range(1, 6):
            for progress in (1, 4, 9):  # heartbeats within one incarnation
                agg.observe(
                    0,
                    incarnation,
                    snapshot_registry(_registry_with_traffic(queries=progress)),
                )
                total = agg.total("repro_service_queries_total")
                assert total >= last
                last = total
        # 4 retired incarnations folded at their final value (9) + live 9.
        assert last == 4 * 9 + 9

    def test_stale_lower_incarnation_heartbeat_dropped(self):
        agg = FleetAggregator()
        agg.observe(0, 2, snapshot_registry(_registry_with_traffic(queries=8)))
        agg.observe(0, 1, snapshot_registry(_registry_with_traffic(queries=999)))
        assert agg.total("repro_service_queries_total") == 8.0

    def test_histograms_fold_exactly_across_restart(self):
        agg = FleetAggregator()
        agg.observe(
            0, 1, snapshot_registry(_registry_with_traffic(latencies=[0.005, 0.5]))
        )
        agg.observe(
            0, 2, snapshot_registry(_registry_with_traffic(latencies=[0.05]))
        )
        replay = snapshot_registry(
            _registry_with_traffic(latencies=[0.005, 0.5, 0.05])
        )
        merged = agg.to_dict()["histograms"]["repro_latency_seconds"][0]
        want = replay["histograms"]["repro_latency_seconds"]["series"][()]
        assert merged["count"] == want[2]
        assert merged["sum"] == pytest.approx(want[1])

    def test_gauges_get_worker_label_and_sum_reduction(self):
        agg = FleetAggregator()
        agg.observe(0, 1, snapshot_registry(_registry_with_traffic()))
        agg.observe(1, 1, snapshot_registry(_registry_with_traffic()))
        text = agg.render()
        families, _ = parse_exposition(text)
        samples = families["repro_inflight"]["samples"]
        by_labels = {tuple(sorted(labels.items())): v for _, labels, v, _ in samples}
        assert by_labels[(("worker", "0"),)] == 3.0
        assert by_labels[(("worker", "1"),)] == 3.0
        assert by_labels[()] == 6.0  # bare fleet reduction line

    def test_generation_gauge_reduces_with_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("repro_model_generation", "gen").set(3.0)
        b.gauge("repro_model_generation", "gen").set(7.0)
        agg = FleetAggregator()
        agg.observe(0, 1, snapshot_registry(a))
        agg.observe(1, 1, snapshot_registry(b))
        families, _ = parse_exposition(agg.render())
        bare = [
            value
            for _, labels, value, _ in families["repro_model_generation"]["samples"]
            if not labels
        ]
        assert bare == [7.0]

    def test_render_lints_clean_and_appends_extra_registry(self):
        agg = FleetAggregator()
        agg.observe(
            0, 1, snapshot_registry(_registry_with_traffic(latencies=[0.05, 2.0]))
        )
        extra = MetricsRegistry()
        extra.counter("repro_worker_restarts_total", "restarts").inc(2)
        # A name the fleet already covers must not be duplicated.
        extra.counter("repro_service_queries_total", "dup").inc(999)
        text = agg.render(extra=extra)
        assert lint_exposition(text) == []
        families, _ = parse_exposition(text)
        assert families["repro_worker_restarts_total"]["samples"][0][2] == 2.0
        assert [
            v for _, _, v, _ in families["repro_service_queries_total"]["samples"]
        ] == [5.0]

    def test_forget_keeps_retired_totals(self):
        agg = FleetAggregator()
        agg.observe(0, 1, snapshot_registry(_registry_with_traffic(queries=6)))
        agg.forget(0)
        assert agg.total("repro_service_queries_total") == 6.0
