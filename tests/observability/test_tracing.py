"""Tracing spans: nesting, annotation, observers and the metrics bridge."""

import io
import json
import threading

from repro.observability import (
    add_span_observer,
    configure_logging,
    current_span,
    default_registry,
    last_trace,
    remove_span_observer,
    reset_logging,
    set_trace_logging,
    span,
    trace_logging_enabled,
)


class TestNesting:
    def test_tree_structure(self):
        with span("outer") as outer:
            with span("middle", stage=1):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        assert outer.root
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert outer.children[0].children[0].name == "inner"
        assert outer.duration >= outer.children[0].duration >= 0.0

    def test_find_descends_depth_first(self):
        with span("a") as root:
            with span("b"):
                with span("c"):
                    pass
        assert root.find("c").name == "c"
        assert root.find("missing") is None

    def test_annotate_merges_attrs(self):
        with span("s", fixed=1) as record:
            record.annotate(rung="penalty", fixed=2)
        assert record.attrs == {"fixed": 2, "rung": "penalty"}

    def test_current_span_tracks_stack(self):
        assert current_span() is None
        with span("outer"):
            assert current_span().name == "outer"
            with span("inner"):
                assert current_span().name == "inner"
            assert current_span().name == "outer"
        assert current_span() is None

    def test_last_trace_is_most_recent_root(self):
        with span("first"):
            pass
        with span("second"):
            with span("child"):
                pass
        trace = last_trace()
        assert trace.name == "second"
        assert trace.children[0].name == "child"

    def test_exception_still_closes_span(self):
        try:
            with span("boom") as record:
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert record.duration >= 0.0
        assert last_trace() is record
        assert current_span() is None

    def test_to_dict_shape(self):
        with span("root", k="v") as root:
            with span("leaf"):
                pass
        payload = root.to_dict()
        assert payload["span"] == "root"
        assert payload["attrs"] == {"k": "v"}
        assert payload["children"][0]["span"] == "leaf"
        json.dumps(payload)  # must be JSON-serialisable


class TestThreadIsolation:
    def test_spans_do_not_nest_across_threads(self):
        results = {}

        def work(name):
            with span(name) as record:
                pass
            results[name] = record

        with span("main-root") as root:
            threads = [
                threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert root.children == []  # worker spans are their own roots
        assert all(results[f"t{i}"].root for i in range(4))


class TestObservers:
    def test_observer_sees_every_completion(self):
        seen = []
        observer = add_span_observer(lambda record: seen.append(record.name))
        try:
            with span("a"):
                with span("b"):
                    pass
        finally:
            remove_span_observer(observer)
        assert seen[-2:] == ["b", "a"]  # children complete first

    def test_failing_observer_does_not_break_code(self):
        def bad(record):
            raise RuntimeError("observer bug")

        add_span_observer(bad)
        try:
            with span("still-works"):
                pass
        finally:
            remove_span_observer(bad)

    def test_remove_unknown_observer_is_noop(self):
        remove_span_observer(lambda record: None)


class TestMetricsBridge:
    def test_span_duration_lands_in_histogram(self):
        name = "test/bridge-unique"
        with span(name):
            pass
        hist = default_registry().get("repro_span_seconds")
        assert hist is not None
        assert hist.snapshot(span=name)["count"] >= 1


class TestTraceLogging:
    def test_root_span_emits_one_json_line(self):
        stream = io.StringIO()
        configure_logging(json_mode=True, stream=stream)
        previous = set_trace_logging(True)
        try:
            assert trace_logging_enabled()
            with span("trace-root"):
                with span("trace-child"):
                    pass
        finally:
            set_trace_logging(previous)
            reset_logging()
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        traces = [line for line in lines if line["event"] == "trace"]
        assert len(traces) == 1  # root only, not one per child
        assert traces[0]["trace"]["span"] == "trace-root"
        assert traces[0]["trace"]["children"][0]["span"] == "trace-child"

    def test_disabled_by_default(self):
        stream = io.StringIO()
        configure_logging(json_mode=True, stream=stream)
        try:
            with span("quiet-root"):
                pass
        finally:
            reset_logging()
        assert "quiet-root" not in stream.getvalue()
