"""Metrics primitives, registry semantics and the Prometheus exposition."""

import math
import re
import threading

import pytest

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    enabled,
    set_enabled,
)

# One exposition sample line: name, optional {labels}, value.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})? "
    r"(NaN|[+-]Inf|[-+0-9.e]+)$"
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c_total", "help")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_labelled_series_are_independent(self):
        counter = Counter("c_total", "help", ("method",))
        counter.inc(method="a")
        counter.inc(3, method="b")
        assert counter.value(method="a") == 1.0
        assert counter.value(method="b") == 3.0

    def test_wrong_labels_rejected(self):
        counter = Counter("c_total", "help", ("method",))
        with pytest.raises(ValueError):
            counter.inc(endpoint="/x")
        with pytest.raises(ValueError):
            counter.inc()  # missing the declared label

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("9starts_with_digit", "help")
        with pytest.raises(ValueError):
            Counter("ok_total", "help", ("bad-label",))
        with pytest.raises(ValueError):
            Counter("ok_total", "help", ("__reserved",))
        with pytest.raises(ValueError):
            Counter("ok_total", "help", ("dup", "dup"))

    def test_thread_safety(self):
        counter = Counter("c_total", "help")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 8000.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value() == pytest.approx(3.0)

    def test_labelled(self):
        gauge = Gauge("g", "help", ("state",))
        gauge.set(2.0, state="open")
        assert gauge.value(state="open") == 2.0
        assert gauge.value(state="closed") == 0.0


class TestHistogram:
    def test_observe_and_snapshot(self):
        hist = Histogram("h_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)
        assert set(snap["quantiles"]) == {"p50", "p90", "p99"}

    def test_quantile_interpolation(self):
        hist = Histogram("h_seconds", "help", buckets=(1.0, 2.0))
        for _ in range(100):
            hist.observe(1.5)
        q50 = hist.quantile(0.5)
        assert 1.0 <= q50 <= 2.0
        assert hist.quantile(0.0) is not None
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_empty_quantile_is_none(self):
        hist = Histogram("h_seconds", "help")
        assert hist.quantile(0.5) is None
        assert hist.snapshot()["count"] == 0

    def test_overflow_lands_in_inf_bucket(self):
        hist = Histogram("h_seconds", "help", buckets=(1.0,))
        hist.observe(100.0)
        text = hist.render()
        assert 'h_seconds_bucket{le="1"} 0' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        # +Inf observations are reported as the largest finite bound.
        assert hist.quantile(0.99) == 1.0

    def test_timer_records(self):
        hist = Histogram("h_seconds", "help")
        with hist.time() as timer:
            pass
        assert timer.seconds >= 0.0
        assert hist.snapshot()["count"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(1.0, math.inf))
        with pytest.raises(ValueError):
            Histogram("h", "help", ("le",))

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("m",))
        second = registry.counter("c_total", "other help", ("m",))
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help")
        with pytest.raises(ValueError):
            registry.histogram("x_total", "help")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", ("b",))

    def test_names_and_get(self):
        registry = MetricsRegistry()
        registry.gauge("b", "help")
        registry.counter("a_total", "help")
        assert registry.names() == ["a_total", "b"]
        assert registry.get("a_total").kind == "counter"
        assert registry.get("missing") is None

    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help").inc(2)
        registry.histogram("h_seconds", "help").observe(0.01)
        dump = registry.to_dict()
        assert dump["a_total"]["series"][0]["value"] == 2.0
        assert dump["h_seconds"]["series"][0]["count"] == 1

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()


class TestExposition:
    def _registry(self):
        registry = MetricsRegistry()
        requests = registry.counter("req_total", "Requests", ("method", "status"))
        requests.inc(5, method="GET", status="2xx")
        requests.inc(1, method='PO"ST\\', status="5xx")  # escaping stress
        registry.gauge("gen", "Current generation").set(3)
        hist = registry.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(2.0)
        return registry

    def test_every_line_is_comment_or_sample(self):
        text = self._registry().render()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                continue
            assert _SAMPLE_RE.match(line), f"unparseable sample line: {line!r}"

    def test_type_lines_present(self):
        text = self._registry().render()
        assert "# TYPE req_total counter" in text
        assert "# TYPE gen gauge" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_label_escaping(self):
        text = self._registry().render()
        assert 'method="PO\\"ST\\\\"' in text

    def test_histogram_buckets_cumulative(self):
        text = self._registry().render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 2.55" in text

    def test_unlabelled_metrics_render_before_first_event(self):
        registry = MetricsRegistry()
        registry.counter("cold_total", "help")
        registry.gauge("cold_gauge", "help")
        text = registry.render()
        assert "cold_total 0" in text
        assert "cold_gauge 0" in text


class TestEnabledSwitch:
    def test_disabled_recording_is_a_noop(self):
        counter = Counter("c_total", "help")
        gauge = Gauge("g", "help")
        hist = Histogram("h_seconds", "help")
        previous = set_enabled(False)
        try:
            assert not enabled()
            counter.inc()
            gauge.set(9)
            hist.observe(1.0)
            with hist.time() as timer:
                pass
            assert timer.seconds >= 0.0  # timing still measured
        finally:
            set_enabled(previous)
        assert counter.value() == 0.0
        assert gauge.value() == 0.0
        assert hist.snapshot()["count"] == 0

    def test_set_enabled_returns_previous(self):
        previous = set_enabled(True)
        try:
            assert set_enabled(True) is True
        finally:
            set_enabled(previous)


class TestReset:
    def test_reset_zeroes_values_but_keeps_handles(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_q_total", "q", labels=("kind",))
        counter.inc(5, kind="box")
        bare = registry.counter("repro_b_total", "b")
        bare.inc(2)
        gauge = registry.gauge("repro_g", "g")
        gauge.set(3.5)
        histogram = registry.histogram("repro_h_seconds", "h", buckets=(0.1, 1.0))
        histogram.observe(0.05)

        registry.reset()

        assert counter.value(kind="box") == 0.0
        assert bare.value() == 0.0
        assert gauge.value() == 0.0
        assert histogram.snapshot()["count"] == 0
        # Unlabelled metrics still expose a zero sample after reset.
        assert "repro_b_total 0" in registry.render()
        # Handles cached before the reset keep recording into the
        # registry — reset drops values, not registrations.
        counter.inc(1, kind="box")
        assert counter.value(kind="box") == 1.0
        assert registry.counter("repro_b_total", "b") is bare
        histogram.observe(0.2)
        assert histogram.snapshot()["count"] == 1
