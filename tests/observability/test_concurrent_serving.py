"""Concurrent serving under instrumentation: counters stay consistent and
the exposition endpoint renders valid text while traffic is in flight."""

import json
import re
import threading
import urllib.request

import pytest

from repro.core import QuadHist
from repro.observability.metrics import MetricsRegistry
from repro.server import EstimatorService, serve

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})? "
    r"(NaN|[+-]Inf|[-+0-9.e]+)$"
)


@pytest.fixture
def labeled_feedback(power2d_box_workload):
    train_q, train_s, test_q, test_s = power2d_box_workload
    return list(zip(train_q, train_s)), list(zip(test_q, test_s))


def _trained_service(labeled_feedback, **kwargs):
    feedback, holdout = labeled_feedback
    service = EstimatorService(lambda: QuadHist(tau=0.02), **kwargs)
    for query, label in feedback[:50]:
        service.feedback(query, label)
    service.retrain()
    return service, feedback, holdout


class TestConcurrentCounters:
    def test_cache_counters_account_for_every_query(self, labeled_feedback):
        """hits + misses == total queries submitted, even with feedback and
        retrain threads racing the readers."""
        registry = MetricsRegistry()
        service, feedback, holdout = _trained_service(
            labeled_feedback, registry=registry
        )
        queries = [q for q, _ in holdout]
        rounds, batch, readers = 20, 10, 4
        errors: list[Exception] = []

        def read(offset):
            try:
                for i in range(rounds):
                    start = (offset + i) % (len(queries) - batch)
                    service.estimate_many(queries[start : start + batch])
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def write():
            try:
                for query, label in feedback[50:90]:
                    service.feedback(query, label)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def retrain():
            try:
                for _ in range(3):
                    service.retrain()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=read, args=(i * 7,)) for i in range(readers)]
        threads.append(threading.Thread(target=write))
        threads.append(threading.Thread(target=retrain))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        hits = registry.get("repro_prediction_cache_hits_total").value()
        misses = registry.get("repro_prediction_cache_misses_total").value()
        assert hits + misses == readers * rounds * batch
        # Feedback accounting: every submitted pair is accepted or quarantined.
        accepted = registry.get("repro_feedback_accepted_total").value()
        quarantined = registry.get("repro_feedback_quarantined_total").value()
        assert accepted + quarantined == 50 + 40
        assert registry.get("repro_retrain_total").value(outcome="success") >= 1

    def test_isolated_registry_does_not_leak(self, labeled_feedback):
        registry = MetricsRegistry()
        service, _, holdout = _trained_service(labeled_feedback, registry=registry)
        service.estimate_many([q for q, _ in holdout[:5]])
        other = MetricsRegistry()
        assert other.names() == []
        assert registry.get("repro_service_queries_total").value() > 0


class TestMetricsOverHTTP:
    @pytest.fixture
    def server(self, labeled_feedback):
        # Default registry on purpose: the exposition must span the
        # service, HTTP, solver and kernel layers in one scrape.
        service, _, holdout = _trained_service(labeled_feedback, min_feedback=20)
        server = serve(service, port=0)
        yield server, holdout
        server.shutdown()

    def _scrape(self, server) -> str:
        host, port = server.server_address
        with urllib.request.urlopen(f"http://{host}:{port}/metrics") as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            return response.read().decode("utf-8")

    def test_exposition_parses_under_concurrent_traffic(self, server):
        server, holdout = server
        host, port = server.server_address
        errors: list[Exception] = []

        def hammer():
            try:
                from repro.data.io import range_to_dict

                for query, _ in holdout[:10]:
                    body = json.dumps({"query": range_to_dict(query)}).encode()
                    request = urllib.request.Request(
                        f"http://{host}:{port}/estimate",
                        data=body,
                        headers={"Content-Type": "application/json"},
                    )
                    urllib.request.urlopen(request).read()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        bodies = [self._scrape(server) for _ in range(5)]
        for t in threads:
            t.join()
        assert errors == []
        for body in bodies:
            for line in body.strip().splitlines():
                if line.startswith("#"):
                    continue
                assert _SAMPLE_RE.match(line), f"unparseable line: {line!r}"

    def test_scrape_covers_all_layers(self, server):
        server, _ = server
        body = self._scrape(server)
        names = {
            line.split()[2]
            for line in body.splitlines()
            if line.startswith("# TYPE")
        }
        assert len(names) >= 12
        for expected in (
            "repro_service_requests_total",  # service layer
            "repro_http_requests_total",  # HTTP layer
            "repro_solve_total",  # solver ladder
            "repro_kernel_queries_total",  # geometry kernels
            "repro_span_seconds",  # tracing bridge
        ):
            assert expected in names, f"missing {expected}"
