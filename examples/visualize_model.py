"""Figure 7, in ASCII: what the learned models actually look like.

Renders (as character grids) the true data density, QuadHist's learned
bucket densities, and PtsHist's learned point masses, trained on a Random
query workload over the skewed Power data — the setting where the paper
shows density "bleeding" into sparse regions that the weight-estimation
step then corrects.

Run:  python examples/visualize_model.py
"""

import numpy as np

from repro import (
    PtsHist,
    QuadHist,
    WorkloadSpec,
    generate_workload,
    label_queries,
    power_like,
)

GRID = 24
SHADES = " .:-=+*#%@"


def ascii_density(values: np.ndarray, title: str) -> str:
    """Render a GRID x GRID density matrix as shaded ASCII art."""
    peak = values.max()
    scaled = values / peak if peak > 0 else values
    lines = [title]
    for row in reversed(range(GRID)):  # y grows upward
        chars = [SHADES[min(int(scaled[col, row] * (len(SHADES) - 1)), len(SHADES) - 1)] for col in range(GRID)]
        lines.append("".join(chars))
    return "\n".join(lines)


def cell_masses(predict_cell) -> np.ndarray:
    from repro.geometry import Box

    masses = np.zeros((GRID, GRID))
    for i in range(GRID):
        for j in range(GRID):
            cell = Box([i / GRID, j / GRID], [(i + 1) / GRID, (j + 1) / GRID])
            masses[i, j] = predict_cell(cell)
    return masses


def main() -> None:
    rng = np.random.default_rng(9)
    data = power_like(rows=15_000).project([0, 3])
    spec = WorkloadSpec(query_kind="box", center_kind="random")
    train = generate_workload(300, 2, rng, spec=spec, dataset=data)
    labels = label_queries(data, train)

    quadhist = QuadHist(tau=0.005).fit(train, labels)
    ptshist = PtsHist(size=1000, seed=0).fit(train, labels)

    # True density: the fraction of rows per grid cell.
    true = np.zeros((GRID, GRID))
    cols = np.minimum((data.rows[:, 0] * GRID).astype(int), GRID - 1)
    rows_ = np.minimum((data.rows[:, 1] * GRID).astype(int), GRID - 1)
    for c, r in zip(cols, rows_):
        true[c, r] += 1
    true /= true.sum()

    print(ascii_density(true, "TRUE data distribution (Power, attrs 0 x 3):"))
    print()
    print(
        ascii_density(
            cell_masses(quadhist.predict),
            f"QuadHist learned mass per cell ({quadhist.model_size} buckets, Random workload):",
        )
    )
    print()
    print(
        ascii_density(
            cell_masses(ptshist.predict),
            f"PtsHist learned mass per cell ({ptshist.model_size} points, Random workload):",
        )
    )
    print(
        "\nDespite training on queries that are independent of the data,\n"
        "the weight-estimation step concentrates mass where the data is —\n"
        "the Section 4.2 observation behind Figure 7."
    )


if __name__ == "__main__":
    main()
