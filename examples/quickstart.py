"""Quickstart: learn a selectivity estimator from query feedback.

Trains the paper's two generic learners (QuadHist for low dimension,
PtsHist for any dimension) on orthogonal range queries over a skewed 2-D
dataset, then compares their test accuracy against the classical
uniformity assumption.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PtsHist,
    QuadHist,
    UniformEstimator,
    WorkloadSpec,
    generate_workload,
    label_queries,
    power_like,
    q_error_quantiles,
    rms_error,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A skewed dataset, projected to 2-D and normalised into [0, 1]^2.
    data = power_like(rows=20_000).project([0, 3])
    print(f"dataset: {data}")

    # 2. Training feedback: 200 (query, observed-selectivity) pairs.  The
    #    learners never see the data — only the queries and their answers.
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    train_queries = generate_workload(200, 2, rng, spec=spec, dataset=data)
    train_labels = label_queries(data, train_queries)

    # 3. Fit the two generic models from the paper.
    quadhist = QuadHist(tau=0.005).fit(train_queries, train_labels)
    ptshist = PtsHist(size=800, seed=0).fit(train_queries, train_labels)
    uniform = UniformEstimator().fit(train_queries, train_labels)

    # 4. Evaluate on fresh queries from the same workload distribution.
    test_queries = generate_workload(200, 2, rng, spec=spec, dataset=data)
    test_labels = label_queries(data, test_queries)

    print(f"\n{'model':<12}{'buckets':>8}{'RMS':>10}{'Q-err p99':>12}")
    for name, model in [
        ("quadhist", quadhist),
        ("ptshist", ptshist),
        ("uniform", uniform),
    ]:
        preds = model.predict_many(test_queries)
        rms = rms_error(preds, test_labels)
        q99 = q_error_quantiles(preds, test_labels)[0.99]
        print(f"{name:<12}{model.model_size:>8}{rms:>10.4f}{q99:>12.2f}")

    # 5. The learned model is a genuine probability distribution: sample
    #    synthetic tuples from it.
    synthetic = quadhist.distribution.sample(5, rng)
    print("\n5 synthetic tuples drawn from the learned distribution:")
    for row in synthetic:
        print("  ", np.round(row, 3))


if __name__ == "__main__":
    main()
