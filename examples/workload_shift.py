"""Workload shift: what happens when train != test query distribution.

Section 4.3 of the paper: learning theory promises nothing when the test
workload differs from the training workload, but in practice overlap in
data-space coverage still buys accuracy.  This example trains QuadHist on
shifted-Gaussian workloads and evaluates across all train/test mean
combinations, printing the Figure 16 heatmap.

Run:  python examples/workload_shift.py
"""

import numpy as np

from repro import QuadHist, label_queries, power_like, rms_error, shifted_gaussian_workload

MEANS = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7)


def main() -> None:
    rng = np.random.default_rng(5)
    data = power_like(rows=15_000).project([0, 3])

    models = {}
    tests = {}
    for mean in MEANS:
        train = shifted_gaussian_workload(200, 2, mean, rng, dataset=data)
        models[mean] = QuadHist(tau=0.005).fit(train, label_queries(data, train))
        test = shifted_gaussian_workload(120, 2, mean, rng, dataset=data)
        tests[mean] = (test, label_queries(data, test))

    header = "test\\train " + "".join(f"{m:>9}" for m in MEANS)
    print("RMS error by train/test Gaussian mean (QuadHist, Power 2D):\n")
    print(header)
    diag, offdiag = [], []
    for test_mean in MEANS:
        queries, labels = tests[test_mean]
        cells = []
        for train_mean in MEANS:
            rms = rms_error(models[train_mean].predict_many(queries), labels)
            cells.append(rms)
            (diag if train_mean == test_mean else offdiag).append(rms)
        print(f"{test_mean:>10} " + "".join(f"{c:>9.4f}" for c in cells))

    print(
        f"\nmatched train/test mean RMS:   {np.mean(diag):.4f}"
        f"\nmismatched train/test mean RMS: {np.mean(offdiag):.4f}"
        "\n\nThe diagonal wins — but mismatched workloads with overlapping"
        "\ncoverage still do far better than no model at all (Section 4.3)."
    )


if __name__ == "__main__":
    main()
