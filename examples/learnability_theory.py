"""The theory, executable: VC dimension, fat shattering, sample bounds.

Walks through the machinery of Section 2:

1. certify VC dimensions of the paper's query classes with explicit
   shattered sets and randomized search;
2. demonstrate Lemma 2.7's delta-distribution construction (dual
   shattering => gamma-fat-shattering) and the convex-polygon
   non-learnability example;
3. tabulate Theorem 2.1's training-size bounds per query class, next to
   the empirical training sizes the estimators actually need.

Run:  python examples/learnability_theory.py
"""

import numpy as np

from repro import QuadHist, WorkloadSpec, generate_workload, label_queries, power_like, rms_error
from repro.geometry import Ball
from repro.learning import (
    ball_space,
    ball_training_bound,
    box_space,
    convex_polygon_space,
    delta_distribution_fat_shatters,
    estimate_vc_dimension,
    halfspace_space,
    halfspace_training_bound,
    orthogonal_range_training_bound,
    shatters,
    vc_dimension_lower_bound,
)


def main() -> None:
    rng = np.random.default_rng(3)

    print("1. VC dimensions (Section 2.2)")
    diamond = np.array([[0.5, 0.1], [0.5, 0.9], [0.1, 0.5], [0.9, 0.5]])
    print(
        "   boxes in R^2 shatter the 4-point diamond:",
        vc_dimension_lower_bound(box_space(2), diamond),
        "points (VC-dim = 2d = 4)",
    )
    for space in (box_space(2), halfspace_space(2), ball_space(2)):
        est = estimate_vc_dimension(space, rng, max_k=6, trials=150)
        print(f"   randomized search, {space.name:<12}: estimated VC-dim = {est}")

    print("\n2. Fat shattering (Section 2.3)")
    discs = [Ball([0.4, 0.5], 0.25), Ball([0.6, 0.5], 0.25)]
    ok = delta_distribution_fat_shatters(discs, rng.random((4000, 2)), gamma=0.49)
    print(f"   two overlapping discs gamma-shattered at gamma=0.49: {ok}")
    circle = np.array(
        [[0.5 + 0.4 * np.cos(t), 0.5 + 0.4 * np.sin(t)] for t in np.linspace(0, 2 * np.pi, 8, endpoint=False)]
    )
    print(
        "   convex polygons shatter 8 points on a circle:",
        shatters(convex_polygon_space(), circle),
        "(VC-dim = inf => NOT learnable, Lemma 2.7)",
    )

    print("\n3. Theorem 2.1 training-size bounds (constants = 1) vs practice")
    eps, delta = 0.05, 0.05
    print(f"   boxes d=2:      n0 ~ {orthogonal_range_training_bound(2, eps, delta):.2e}")
    print(f"   halfspaces d=2: n0 ~ {halfspace_training_bound(2, eps, delta):.2e}")
    print(f"   balls d=2:      n0 ~ {ball_training_bound(2, eps, delta):.2e}")
    print("   (worst-case, distribution-free bounds; real workloads need far fewer:)")

    data = power_like(rows=15_000).project([0, 3])
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    test = generate_workload(150, 2, rng, spec=spec, dataset=data)
    test_labels = label_queries(data, test)
    for n in (50, 200, 800):
        train = generate_workload(n, 2, rng, spec=spec, dataset=data)
        model = QuadHist(tau=0.005).fit(train, label_queries(data, train))
        rms = rms_error(model.predict_many(test), test_labels)
        print(f"   QuadHist, n={n:<4} -> test RMS {rms:.4f}")


if __name__ == "__main__":
    main()
