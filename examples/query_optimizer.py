"""Why selectivity estimation matters: access-path selection.

The paper's introduction frames selectivity estimation as the bread and
butter of cost-based query optimization.  This example runs the full loop
on the miniature optimizer in ``repro.optimizer``: a learned estimator
(QuadHist) vs the classical uniformity assumption, each driving the
seq-scan / index-scan choice for 200 queries over skewed data.

Run:  python examples/query_optimizer.py
"""

import numpy as np

from repro import (
    QuadHist,
    UniformEstimator,
    WorkloadSpec,
    generate_workload,
    label_queries,
    power_like,
)
from repro.optimizer import (
    TableStats,
    choose_plan,
    crossover_selectivity,
    evaluate_plan_quality,
)


def main() -> None:
    rng = np.random.default_rng(21)
    data = power_like(rows=20_000).project([0, 3])
    stats = TableStats(rows=1_000_000)
    print(
        f"table: {stats.rows:,} rows, {stats.pages:,} pages; "
        f"index beats seq scan below selectivity "
        f"{crossover_selectivity(stats):.4f}\n"
    )

    spec = WorkloadSpec(query_kind="box", center_kind="data")
    train = generate_workload(200, 2, rng, spec=spec, dataset=data)
    test = generate_workload(200, 2, rng, spec=spec, dataset=data)
    train_labels = label_queries(data, train)
    test_labels = label_queries(data, test)

    learned = QuadHist(tau=0.005).fit(train, train_labels)
    uniform = UniformEstimator().fit(train, train_labels)

    print(f"{'estimator':<12}{'correct plans':>15}{'mean regret':>13}{'max regret':>12}")
    for name, model in (("quadhist", learned), ("uniform", uniform)):
        q = evaluate_plan_quality(model, test, test_labels, stats)
        print(
            f"{name:<12}{q.correct_choice_rate:>14.1%}{q.mean_regret:>13.3f}"
            f"{q.max_regret:>12.2f}"
        )

    # Show one concrete decision flip.
    for query, truth in zip(test, test_labels):
        est_learned = learned.predict(query)
        est_uniform = uniform.predict(query)
        if choose_plan(stats, est_uniform) is not choose_plan(stats, truth) and (
            choose_plan(stats, est_learned) is choose_plan(stats, truth)
        ):
            print(
                f"\nexample query: true selectivity {truth:.4f}"
                f"\n  uniform estimate {est_uniform:.4f} -> "
                f"{choose_plan(stats, est_uniform).value} (wrong plan)"
                f"\n  learned estimate {est_learned:.4f} -> "
                f"{choose_plan(stats, est_learned).value} (right plan)"
            )
            break


if __name__ == "__main__":
    main()
