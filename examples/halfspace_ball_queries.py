"""Beyond orthogonal ranges: halfspace and ball query selectivity.

Section 4.5 of the paper: query classes with little prior selectivity-
estimation work (linear inequalities, distance-based search) are learnable
with the *same* generic algorithms.  This example trains PtsHist on both
query types over a 4-D projection of the forest dataset, and QuadHist on
the 2-D case where its exact intersection volumes apply.

Run:  python examples/halfspace_ball_queries.py
"""

import numpy as np

from repro import (
    PtsHist,
    QuadHist,
    WorkloadSpec,
    forest_like,
    generate_workload,
    label_queries,
    rms_error,
)


def evaluate(model, name, data, spec, rng, train_size=200, test_size=150):
    train = generate_workload(train_size, data.dim, rng, spec=spec, dataset=data)
    test = generate_workload(test_size, data.dim, rng, spec=spec, dataset=data)
    train_labels = label_queries(data, train)
    test_labels = label_queries(data, test)
    model.fit(train, train_labels)
    rms = rms_error(model.predict_many(test), test_labels)
    print(
        f"  {name:<22} dim={data.dim}  buckets={model.model_size:<5} "
        f"test RMS={rms:.4f}"
    )


def main() -> None:
    rng = np.random.default_rng(11)
    forest = forest_like(rows=20_000)
    forest2d = forest.numeric_projection(2, rng)
    forest4d = forest.numeric_projection(4, rng)

    print("Halfspace queries (SELECT ... WHERE a1*A1 + ... + ad*Ad >= b):")
    spec = WorkloadSpec(query_kind="halfspace", center_kind="data")
    evaluate(QuadHist(tau=0.005), "QuadHist (2-D exact)", forest2d, spec, rng)
    evaluate(PtsHist(size=800, seed=0), "PtsHist", forest4d, spec, rng)

    print("\nBall queries (SELECT ... WHERE (A1-a1)^2 + ... <= r^2):")
    spec = WorkloadSpec(query_kind="ball", center_kind="data")
    evaluate(QuadHist(tau=0.005), "QuadHist (2-D exact)", forest2d, spec, rng)
    evaluate(PtsHist(size=800, seed=0), "PtsHist", forest4d, spec, rng)

    print(
        "\nBoth query classes have bounded VC dimension (d+1 and d+2), so\n"
        "Theorem 2.1 guarantees learnability — the numbers above are that\n"
        "theorem at work."
    )


if __name__ == "__main__":
    main()
