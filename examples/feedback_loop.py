"""Query-feedback loop: the deployment scenario for query-driven models.

A query optimizer observes true cardinalities as a side effect of
executing queries.  A query-driven estimator can therefore improve
continuously: collect feedback, retrain periodically, estimate better.
This example simulates that loop — batches of queries arrive, the model
retrains on the accumulated feedback, and test error falls batch by batch
(the streaming view of Theorem 2.1's sample-complexity curve).

It also demonstrates workload persistence: the accumulated feedback is
written to / reloaded from JSON between "restarts".

Run:  python examples/feedback_loop.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    QuadHist,
    WorkloadSpec,
    generate_workload,
    label_queries,
    power_like,
    rms_error,
)
from repro.data import load_workload, save_workload

BATCHES = 6
BATCH_SIZE = 60


def main() -> None:
    rng = np.random.default_rng(13)
    data = power_like(rows=15_000).project([0, 3])
    spec = WorkloadSpec(query_kind="box", center_kind="data")

    # Fixed evaluation set, unseen by the loop.
    test = generate_workload(150, 2, rng, spec=spec, dataset=data)
    test_labels = label_queries(data, test)

    feedback_file = Path(tempfile.mkdtemp()) / "feedback.json"
    seen_queries: list = []
    seen_labels = np.empty(0)

    print(f"{'batch':>6}{'feedback':>10}{'buckets':>9}{'test RMS':>10}")
    for batch in range(1, BATCHES + 1):
        # 1. New queries arrive; executing them reveals true selectivities.
        new_queries = generate_workload(BATCH_SIZE, 2, rng, spec=spec, dataset=data)
        new_labels = label_queries(data, new_queries)
        seen_queries.extend(new_queries)
        seen_labels = np.concatenate([seen_labels, new_labels])

        # 2. Persist the accumulated feedback (simulating a restart), then
        #    reload and retrain from scratch — QuadHist training is cheap.
        save_workload(feedback_file, seen_queries, seen_labels)
        queries, labels = load_workload(feedback_file)
        model = QuadHist(tau=0.005).fit(queries, labels)

        # 3. Measure on the held-out workload.
        rms = rms_error(model.predict_many(test), test_labels)
        print(f"{batch:>6}{len(queries):>10}{model.model_size:>9}{rms:>10.4f}")

    print(
        "\nError falls as feedback accumulates — the streaming face of the"
        "\npaper's learnability guarantee. Feedback persisted at:"
        f"\n  {feedback_file}"
    )


if __name__ == "__main__":
    main()
