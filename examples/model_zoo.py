"""The whole model zoo on one workload — living documentation.

Fits every estimator in the repository on the same 2-D Power workload and
prints accuracy, model size, training time, and the validity diagnostics
(monotonicity / consistency violation rates).  One table summarises the
entire design space:

* the paper's generic learners (QuadHist, PtsHist) and exact ERM,
* this repository's extensions (KdHist, Gaussian mixture),
* the query-driven baselines (ISOMER, STHoles, QuickSel, LW regression),
* the data-driven oracles (AVI product; full data access), and
* the trivial floors.

Run:  python examples/model_zoo.py   (takes a few minutes on one CPU)
"""

import time

import numpy as np

from repro import (
    ArrangementERM,
    GaussianMixtureHist,
    Isomer,
    KdHist,
    MeanEstimator,
    PtsHist,
    QuadHist,
    QuickSel,
    UniformEstimator,
    WorkloadSpec,
    generate_workload,
    label_queries,
    power_like,
    q_error_quantiles,
    rms_error,
)
from repro.baselines import AVIProductHistogram, LWRegression, STHoles
from repro.eval import consistency_violations, monotonicity_violations

TRAIN, TEST = 150, 150


def main() -> None:
    rng = np.random.default_rng(33)
    data = power_like(rows=15_000).project([0, 3])
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    train = generate_workload(TRAIN, 2, rng, spec=spec, dataset=data)
    test = generate_workload(TEST, 2, rng, spec=spec, dataset=data)
    train_s = label_queries(data, train)
    test_s = label_queries(data, test)

    zoo = [
        ("quadhist", QuadHist(tau=0.005, max_leaves=600)),
        ("kdhist", KdHist(tau=0.005, max_leaves=600)),
        ("ptshist", PtsHist(size=600, seed=0)),
        ("gmm", GaussianMixtureHist(components=600, seed=0)),
        ("arrangement-erm", ArrangementERM(mode="discrete", samples=4096)),
        ("isomer", Isomer(max_buckets=8000)),
        ("stholes", STHoles(max_buckets=600)),
        ("quicksel", QuickSel()),
        ("lw-regression", LWRegression(n_trees=120)),
        ("avi (data oracle)", AVIProductHistogram(buckets_per_dim=64)),
        ("uniform", UniformEstimator()),
        ("mean", MeanEstimator()),
    ]

    header = (
        f"{'model':<20}{'buckets':>8}{'fit_s':>8}{'rms':>9}{'q99':>9}"
        f"{'mono_viol':>11}{'cons_viol':>11}"
    )
    print(header)
    print("-" * len(header))
    for name, model in zoo:
        start = time.perf_counter()
        if isinstance(model, AVIProductHistogram):
            model.fit_data(data.rows)
        else:
            model.fit(train, train_s)
        elapsed = time.perf_counter() - start
        preds = model.predict_many(test)
        rms = rms_error(preds, test_s)
        q99 = q_error_quantiles(preds, test_s)[0.99]
        mono = monotonicity_violations(model, rng, dim=2, chains=30)
        cons = consistency_violations(model, rng, dim=2, trials=40, tol=1e-4)
        print(
            f"{name:<20}{model.model_size:>8}{elapsed:>8.2f}{rms:>9.4f}{q99:>9.2f}"
            f"{mono:>11.3f}{cons:>11.3f}"
        )

    print(
        "\nReading guide: distribution-based models (top block) show zero"
        "\nviolations; the regression/mixture-of-signed-weights baselines do"
        "\nnot — the paper's Section 4 'methods compared' rationale, in one"
        "\ntable."
    )


if __name__ == "__main__":
    main()
