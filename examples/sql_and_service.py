"""DB-facing integration: SQL predicates, CSV data, and the HTTP service.

The adoption path for this library inside a database:

1. load a real table (here: a CSV written on the fly; swap in the actual
   UCI Power export),
2. express query predicates as SQL WHERE clauses,
3. run the estimation sidecar: feed observed selectivities as feedback,
   retrain, and serve estimates over HTTP.

Run:  python examples/sql_and_service.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

import numpy as np

from repro.core import QuadHist
from repro.data import (
    WorkloadSpec,
    dataset_from_csv,
    generate_workload,
    label_queries,
    parse_predicate,
    range_to_dict,
    true_selectivity,
)
from repro.server import EstimatorService, serve


def write_demo_csv(path: Path) -> None:
    """A small correlated table standing in for a real export."""
    gen = np.random.default_rng(4)
    n = 8000
    load = gen.beta(1.5, 5.0, n)
    current = np.clip(load * 4.5 + gen.normal(0, 0.1, n), 0, None)
    room = gen.choice(["kitchen", "garage", "attic"], size=n, p=[0.6, 0.3, 0.1])
    lines = ["load,current,room"]
    lines += [f"{l:.5f},{c:.5f},{r}" for l, c, r in zip(load, current, room)]
    path.write_text("\n".join(lines))


def main() -> None:
    # 1. Load the table.
    csv_path = Path(tempfile.mkdtemp()) / "power_export.csv"
    write_demo_csv(csv_path)
    table = dataset_from_csv(csv_path).project([0, 1])  # numeric attrs
    attrs = [a.name for a in table.attributes]
    print(f"loaded {table} with attributes {attrs}")

    # 2. SQL predicates -> ranges -> true selectivities.
    clauses = [
        "load BETWEEN 0.1 AND 0.4 AND current <= 0.5",
        "0.0 + 1.0*load - 1.0*current >= 0",
        "(load-0.2)^2 + (current-0.2)^2 <= 0.04",
    ]
    print("\nSQL predicates against the table:")
    for clause in clauses:
        query = parse_predicate(clause, attrs)
        sel = true_selectivity(table, query)
        print(f"  WHERE {clause:<55} -> {type(query).__name__:<10} s = {sel:.4f}")

    # 3. The estimation service over HTTP.
    service = EstimatorService(lambda: QuadHist(tau=0.01), min_feedback=30)
    server = serve(service, port=0)
    host, port = server.server_address
    base = f"http://{host}:{port}"

    def post(path, payload):
        request = urllib.request.Request(
            base + path, data=json.dumps(payload).encode(), method="POST"
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    rng = np.random.default_rng(11)
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    feedback = generate_workload(80, 2, rng, spec=spec, dataset=table)
    labels = label_queries(table, feedback)
    for query, label in zip(feedback, labels):
        post("/feedback", {"query": range_to_dict(query), "selectivity": float(label)})
    trained = post("/retrain", {})
    print(f"\nservice trained: {trained}")

    probe = parse_predicate(clauses[0], attrs)
    estimate = post("/estimate", {"query": range_to_dict(probe)})["selectivity"]
    truth = true_selectivity(table, probe)
    print(
        f"HTTP estimate for the first predicate: {estimate:.4f} "
        f"(true {truth:.4f})"
    )
    server.shutdown()


if __name__ == "__main__":
    main()
