"""Throughput: the fused batch prediction path vs. the scalar loop.

The batch geometry kernels (:mod:`repro.geometry.batch`) exist so that
predicting a whole workload costs a handful of cache-blocked NumPy
contractions instead of one Python round-trip per query.  This bench pins
that down end to end on the paper's main configuration — a ~1k-bucket
QuadHist over Power 2-D — and records:

* ``fit`` wall time (the batch design matrix is also on this path),
* ``predict`` throughput for the scalar loop vs. ``predict_many``,
* the max absolute batch-vs-scalar deviation (must be fp noise),
* ``label_queries`` (ground-truth oracle) batch vs. per-query timings.

Results land in ``benchmarks/results/BENCH_throughput.json``.  Unlike the
accuracy benches this is a standalone script, so CI can run it without the
pytest-benchmark harness::

    PYTHONPATH=src python benchmarks/bench_throughput.py          # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke  # CI-sized

``--smoke`` shrinks every axis (rows, buckets, workload) to keep the job
under a few seconds; the JSON notes which mode produced it.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.quadhist import QuadHist
from repro.data.selectivity import label_queries, true_selectivity
from repro.data.synthetic import power_like
from repro.data.workloads import WorkloadSpec, generate_workload

RESULTS_DIR = Path(__file__).resolve().parent / "results"

FULL = {
    "mode": "full",
    "rows": 25_000,
    "train_queries": 400,
    "eval_queries": 5_000,
    "tau": 0.0004,
    "max_leaves": 1024,
}
SMOKE = {
    "mode": "smoke",
    "rows": 4_000,
    "train_queries": 100,
    "eval_queries": 500,
    "tau": 0.004,
    "max_leaves": 256,
}


def _best_of(repeats: int, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(config: dict) -> dict:
    rng = np.random.default_rng(20220612)
    data = power_like(rows=config["rows"], seed=7).project([0, 3])
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    train = generate_workload(config["train_queries"], data.dim, rng, spec=spec, dataset=data)
    queries = generate_workload(config["eval_queries"], data.dim, rng, spec=spec, dataset=data)

    labels_start = time.perf_counter()
    labels = label_queries(data, train)
    t_label_train = time.perf_counter() - labels_start

    est = QuadHist(tau=config["tau"], max_leaves=config["max_leaves"])
    fit_start = time.perf_counter()
    est.fit(train, labels)
    t_fit = time.perf_counter() - fit_start

    batch = est.predict_many(queries)  # warm-up: touches every code path once
    t_batch = _best_of(3, lambda: est.predict_many(queries))

    scalar_start = time.perf_counter()
    scalar = np.array([est.predict(q) for q in queries])
    t_scalar = time.perf_counter() - scalar_start

    # Ground-truth oracle: batched labeling vs. one containment pass per query.
    t_label_batch = _best_of(2, lambda: label_queries(data, queries))
    loop_start = time.perf_counter()
    loop_labels = np.array([true_selectivity(data, q) for q in queries])
    t_label_loop = time.perf_counter() - loop_start
    label_diff = float(np.max(np.abs(label_queries(data, queries) - loop_labels)))

    n = len(queries)
    return {
        "config": config,
        "buckets": est.model_size,
        "fit_seconds": round(t_fit, 4),
        "label_train_seconds": round(t_label_train, 4),
        "predict": {
            "queries": n,
            "batch_seconds": round(t_batch, 4),
            "scalar_seconds": round(t_scalar, 4),
            "batch_queries_per_second": round(n / t_batch, 1),
            "scalar_queries_per_second": round(n / t_scalar, 1),
            "speedup": round(t_scalar / t_batch, 2),
            "max_abs_diff": float(np.max(np.abs(batch - scalar))),
        },
        "label_queries": {
            "queries": n,
            "batch_seconds": round(t_label_batch, 4),
            "loop_seconds": round(t_label_loop, 4),
            "speedup": round(t_label_loop / t_label_batch, 2),
            "max_abs_diff": label_diff,
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (seconds, not minutes)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_throughput.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    result = run(SMOKE if args.smoke else FULL)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    predict = result["predict"]
    print(f"buckets: {result['buckets']}  fit: {result['fit_seconds']}s")
    print(
        f"predict_many: {predict['batch_seconds']}s "
        f"({predict['batch_queries_per_second']:.0f} q/s)  "
        f"scalar loop: {predict['scalar_seconds']}s "
        f"({predict['scalar_queries_per_second']:.0f} q/s)  "
        f"speedup: {predict['speedup']}x  "
        f"max_abs_diff: {predict['max_abs_diff']:.2e}"
    )
    label = result["label_queries"]
    print(
        f"label_queries: {label['batch_seconds']}s batch vs "
        f"{label['loop_seconds']}s loop  speedup: {label['speedup']}x"
    )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
