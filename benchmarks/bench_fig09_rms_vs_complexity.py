"""Figure 9: RMS error vs model complexity (QuadHist, Power, Data-driven).

Paper shape: each training-size curve decreases with model complexity and
flattens; larger training sets push the curves toward the origin; with few
training queries and many buckets the error turns back up (overfitting).
Also doubles as the τ-vs-hard-cap ablation called out in DESIGN.md: the
model size here is controlled purely through τ.
"""

import pytest

from repro.core import QuadHist
from repro.data import WorkloadSpec
from repro.eval import make_workload, rms_error
from repro.eval.reporting import format_table

from benchmarks.conftest import record_table

TRAIN_SIZES = (50, 200, 800)
TAUS = (0.04, 0.02, 0.01, 0.005, 0.0025)
SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def sweep(power_2d, bench_rng):
    test = make_workload(power_2d, 150, bench_rng, spec=SPEC)
    rows = []
    for n in TRAIN_SIZES:
        train = make_workload(power_2d, n, bench_rng, spec=SPEC)
        for tau in TAUS:
            est = QuadHist(tau=tau).fit(train.queries, train.selectivities)
            rms = rms_error(est.predict_many(test.queries), test.selectivities)
            rows.append(
                {
                    "train": n,
                    "tau": tau,
                    "buckets": est.model_size,
                    "rms": round(rms, 5),
                }
            )
    return rows


def test_fig09_series(sweep, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "fig09_rms_vs_model_complexity",
        format_table(sweep, title="Fig 9: RMS vs model complexity (QuadHist, Power 2D, Data-driven)"),
    )
    # Shape check: at the largest training size, the finest model beats the
    # coarsest by a wide margin.
    largest = [r for r in sweep if r["train"] == max(TRAIN_SIZES)]
    assert largest[-1]["rms"] < largest[0]["rms"]
    # More training data helps at fixed tau.
    finest = [r for r in sweep if r["tau"] == TAUS[-1]]
    assert finest[-1]["rms"] < finest[0]["rms"] * 1.05


def test_fig09_quadhist_fit_time(benchmark, power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=SPEC)

    def fit():
        return QuadHist(tau=0.005).fit(train.queries, train.selectivities)

    est = benchmark.pedantic(fit, rounds=2, iterations=1)
    assert est.model_size > 10
