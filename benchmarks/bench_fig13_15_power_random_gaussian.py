"""Figures 13/31-33 (Random) and 15/34-36 (Gaussian) on Power.

Section 4.2's question: does learning still work when the query workload is
*independent* of the (skewed) data distribution?  Paper shape: yes — errors
still fall with training size for every method; absolute errors are small
because most Random/Gaussian queries are nearly empty over skewed data.
"""

import pytest

from repro.data import WorkloadSpec
from repro.eval.reporting import format_series

from benchmarks._experiments import series_from_results
from benchmarks.conftest import record_table

RANDOM = WorkloadSpec(query_kind="box", center_kind="random")
GAUSSIAN = WorkloadSpec(query_kind="box", center_kind="gaussian")


@pytest.fixture(scope="module")
def random_results(power_random_results):
    return power_random_results


@pytest.fixture(scope="module")
def gaussian_results(power_gaussian_results):
    return power_gaussian_results


def test_fig13_32_random_rms(random_results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(random_results, "rms")
    record_table(
        "fig13_rms_power_random",
        format_series("train", sizes, series, title="Fig 13/32: RMS error (Power 2D, Random workload)"),
    )
    for name in ("quadhist", "ptshist"):
        values = series[name]
        assert values[-1] <= values[0]


def test_fig31_random_complexity(random_results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(random_results, "buckets")
    record_table(
        "fig31_model_complexity_power_random",
        format_series("train", sizes, series, title="Fig 31: model complexity (Power 2D, Random workload)"),
    )


def test_fig33_random_training_time(random_results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(random_results, "fit_s")
    record_table(
        "fig33_training_time_power_random",
        format_series("train", sizes, series, title="Fig 33: training time seconds (Power 2D, Random workload)"),
    )


def test_fig15_35_gaussian_rms(gaussian_results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(gaussian_results, "rms")
    record_table(
        "fig15_rms_power_gaussian",
        format_series("train", sizes, series, title="Fig 15/35: RMS error (Power 2D, Gaussian workload)"),
    )
    assert series["quadhist"][-1] < 0.05


def test_fig34_gaussian_complexity(gaussian_results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(gaussian_results, "buckets")
    record_table(
        "fig34_model_complexity_power_gaussian",
        format_series("train", sizes, series, title="Fig 34: model complexity (Power 2D, Gaussian workload)"),
    )


def test_fig36_gaussian_training_time(gaussian_results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(gaussian_results, "fit_s")
    record_table(
        "fig36_training_time_power_gaussian",
        format_series("train", sizes, series, title="Fig 36: training time seconds (Power 2D, Gaussian workload)"),
    )
