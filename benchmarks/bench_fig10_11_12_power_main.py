"""Figures 10, 11, 12: the main 4-method comparison on Power (Data-driven).

* Fig 10 — model complexity vs training size (ISOMER uses far more buckets
  than its training size; QuadHist/PtsHist are pegged to 4x).
* Fig 11 — RMS error vs training size (all methods improve; ISOMER most
  accurate where it finishes; QuadHist/PtsHist/QuickSel comparable).
* Fig 12 — training time vs training size (ISOMER slowest by far; the
  paper drops it beyond 200 training queries, we beyond 100).
"""

import pytest

from repro.data import WorkloadSpec
from repro.eval import make_workload
from repro.eval.reporting import format_series

from benchmarks._experiments import method_factories, series_from_results
from benchmarks.conftest import record_table

SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def results(power_datadriven_results):
    return power_datadriven_results


def test_fig10_model_complexity(results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(results, "buckets")
    record_table(
        "fig10_model_complexity_power_datadriven",
        format_series("train", sizes, series, title="Fig 10: model complexity (Power 2D, Data-driven)"),
    )
    # ISOMER's bucket count is a large multiple of its training size.
    isomer = [v for v in series["isomer"] if v != "-"]
    assert isomer and isomer[-1] > 10 * sizes[len(isomer) - 1]


def test_fig11_rms_vs_training_size(results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(results, "rms")
    record_table(
        "fig11_rms_power_datadriven",
        format_series("train", sizes, series, title="Fig 11: RMS error (Power 2D, Data-driven)"),
    )
    # Error decreases with training size for the scalable methods.
    for name in ("quadhist", "ptshist", "quicksel"):
        values = [v for v in series[name] if v != "-"]
        assert values[-1] < values[0]
    # Everyone reaches practically useful accuracy at the top of the sweep.
    assert series["quadhist"][-1] < 0.02


def test_fig12_training_time(results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(results, "fit_s")
    record_table(
        "fig12_training_time_power_datadriven",
        format_series("train", sizes, series, title="Fig 12: training time seconds (Power 2D, Data-driven)"),
    )
    # ISOMER is the slowest method where it runs (the paper's headline).
    isomer = [v for v in series["isomer"] if v != "-"]
    idx = len(isomer) - 1
    assert isomer[idx] > series["quicksel"][idx]


def test_fig11_quadhist_fit_benchmark(benchmark, power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=SPEC)
    factory = method_factories(200, include_isomer=False)["quadhist"]
    benchmark.pedantic(
        lambda: factory().fit(train.queries, train.selectivities),
        rounds=2,
        iterations=1,
    )


def test_fig11_ptshist_fit_benchmark(benchmark, power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=SPEC)
    factory = method_factories(200, include_isomer=False)["ptshist"]
    benchmark.pedantic(
        lambda: factory().fit(train.queries, train.selectivities),
        rounds=2,
        iterations=1,
    )
