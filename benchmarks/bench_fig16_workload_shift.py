"""Figure 16: train/test query-distribution mismatch heatmap (Section 4.3).

Shifted 2-D Gaussian box workloads with means (0.2,0.2)..(0.7,0.7) and
covariance 0.033·I.  Paper shape: the diagonal (train == test distribution)
has the smallest errors in most cases, and error grows with the shift
between training and test means.

Also runnable as a script for the incremental-maintenance comparison
(see ``docs/online_learning.md``)::

    PYTHONPATH=src python benchmarks/bench_fig16_workload_shift.py --incremental

walks the heatmap's drift path (means 0.2 -> 0.7) feeding each new
mean's queries as a feedback batch, and compares a model maintained by
``partial_fit(warm_start=True)`` against refit-on-union: accuracy on the
*current* workload vs. cumulative maintenance seconds (the regret of
staying incremental).
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import QuadHist
from repro.data import label_queries, shifted_gaussian_workload
from repro.eval import rms_error
from repro.eval.reporting import format_table

try:
    from benchmarks.conftest import record_table
except ModuleNotFoundError:  # standalone script mode: no pytest rootdir
    _RESULTS_DIR = Path(__file__).resolve().parent / "results"

    def record_table(name: str, text: str) -> None:
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

MEANS = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
TRAIN_SIZE = 200
TEST_SIZE = 120


@pytest.fixture(scope="module")
def heatmap(power_2d, bench_rng):
    # Pre-generate one labeled workload per mean for each role.
    train_sets = {}
    test_sets = {}
    for mean in MEANS:
        queries = shifted_gaussian_workload(
            TRAIN_SIZE, 2, mean, bench_rng, dataset=power_2d
        )
        train_sets[mean] = (queries, label_queries(power_2d, queries))
        queries = shifted_gaussian_workload(
            TEST_SIZE, 2, mean, bench_rng, dataset=power_2d
        )
        test_sets[mean] = (queries, label_queries(power_2d, queries))

    grid = {}
    for train_mean, (tq, ts) in train_sets.items():
        est = QuadHist(tau=0.005).fit(tq, ts)
        for test_mean, (vq, vs) in test_sets.items():
            grid[(train_mean, test_mean)] = rms_error(est.predict_many(vq), vs)
    return grid


def test_fig16_heatmap(heatmap, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    rows = []
    for test_mean in MEANS:
        row = {"test\\train": test_mean}
        for train_mean in MEANS:
            row[str(train_mean)] = round(heatmap[(train_mean, test_mean)], 4)
        rows.append(row)
    record_table(
        "fig16_workload_shift_heatmap",
        format_table(rows, title="Fig 16: RMS under train/test Gaussian shift (QuadHist, Power 2D)"),
    )

    # Shape checks: matched distributions beat strongly mismatched ones on
    # average, and error grows with the shift for a fixed training mean.
    diagonal = np.mean([heatmap[(m, m)] for m in MEANS])
    extreme = np.mean(
        [heatmap[(MEANS[0], MEANS[-1])], heatmap[(MEANS[-1], MEANS[0])]]
    )
    assert diagonal < extreme
    near = heatmap[(0.6, 0.5)]
    far = heatmap[(0.6, 0.2)]
    assert near < far * 1.5


# ---------------------------------------------------------------------------
# Standalone --incremental mode: walk the drift path, compare maintenance
# strategies (incremental partial_fit vs. refit-on-union).
# ---------------------------------------------------------------------------


def run_incremental_drift(
    rows: int = 25_000,
    batch_size: int = 100,
    tau: float = 0.005,
    seed: int = 20220612,
) -> dict:
    """Train at the first Figure-16 mean, then drift through the rest.

    At each mean, ``batch_size`` newly-labeled queries arrive as
    feedback.  One model absorbs them with ``partial_fit`` (warm-started
    solver, appended design rows, local refinement); the other refits
    from scratch on everything seen so far.  Both are scored on a fresh
    test workload at the *current* mean — the distribution the system is
    actually serving after the shift.
    """
    import time

    from repro.core.config import QuadHistConfig
    from repro.data import power_like

    rng = np.random.default_rng(seed)
    data = power_like(rows=rows).project([0, 3])

    start_mean = MEANS[0]
    train_q = shifted_gaussian_workload(TRAIN_SIZE, 2, start_mean, rng, dataset=data)
    train_s = label_queries(data, train_q)
    config = QuadHistConfig(tau=tau)
    incremental = QuadHist.from_config(config).fit(train_q, train_s)

    history_q, history_s = list(train_q), list(train_s)
    update_time = refit_time = 0.0
    steps = []
    for mean in MEANS[1:]:
        batch_q = shifted_gaussian_workload(batch_size, 2, mean, rng, dataset=data)
        batch_s = label_queries(data, batch_q)
        test_q = shifted_gaussian_workload(TEST_SIZE, 2, mean, rng, dataset=data)
        test_s = label_queries(data, test_q)

        stale_rms = rms_error(incremental.predict_many(test_q), test_s)
        t0 = time.perf_counter()
        incremental.partial_fit(batch_q, batch_s, warm_start=True)
        update_time += time.perf_counter() - t0

        history_q.extend(batch_q)
        history_s.extend(batch_s)
        refit = QuadHist.from_config(config)
        t0 = time.perf_counter()
        refit.fit(history_q, np.asarray(history_s))
        refit_time += time.perf_counter() - t0

        update_rms = rms_error(incremental.predict_many(test_q), test_s)
        refit_rms = rms_error(refit.predict_many(test_q), test_s)
        steps.append(
            {
                "mean": mean,
                "stale_rms": round(stale_rms, 5),
                "update_rms": round(update_rms, 5),
                "refit_rms": round(refit_rms, 5),
                "regret": round(update_rms - refit_rms, 5),
                "update_cumulative_seconds": round(update_time, 4),
                "refit_cumulative_seconds": round(refit_time, 4),
            }
        )
    return {
        "config": {
            "rows": rows,
            "train_size": TRAIN_SIZE,
            "batch_size": batch_size,
            "tau": tau,
            "means": list(MEANS),
        },
        "steps": steps,
        "update_total_seconds": round(update_time, 4),
        "refit_total_seconds": round(refit_time, 4),
        "speedup": round(refit_time / update_time, 2) if update_time else None,
        "final_regret": steps[-1]["regret"],
    }


def main() -> None:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="compare incremental partial_fit vs refit-on-union along the "
        "Figure-16 drift path",
    )
    parser.add_argument("--rows", type=int, default=25_000)
    parser.add_argument("--batch-size", type=int, default=100)
    parser.add_argument("--tau", type=float, default=0.005)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent
        / "results"
        / "BENCH_fig16_incremental.json",
    )
    args = parser.parse_args()
    if not args.incremental:
        parser.error(
            "the heatmap itself runs under pytest; pass --incremental for "
            "the maintenance-strategy comparison"
        )

    result = run_incremental_drift(
        rows=args.rows, batch_size=args.batch_size, tau=args.tau
    )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    table = format_table(
        result["steps"],
        title="Fig 16 drift: incremental update vs refit-on-union (QuadHist)",
    )
    record_table("fig16_incremental_drift", table)
    print(table)
    print(
        f"maintenance cost: update {result['update_total_seconds']}s vs "
        f"refit {result['refit_total_seconds']}s "
        f"({result['speedup']}x), final regret {result['final_regret']:+.5f}"
    )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
