"""Figure 16: train/test query-distribution mismatch heatmap (Section 4.3).

Shifted 2-D Gaussian box workloads with means (0.2,0.2)..(0.7,0.7) and
covariance 0.033·I.  Paper shape: the diagonal (train == test distribution)
has the smallest errors in most cases, and error grows with the shift
between training and test means.
"""

import numpy as np
import pytest

from repro.core import QuadHist
from repro.data import label_queries, shifted_gaussian_workload
from repro.eval import rms_error
from repro.eval.reporting import format_table

from benchmarks.conftest import record_table

MEANS = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
TRAIN_SIZE = 200
TEST_SIZE = 120


@pytest.fixture(scope="module")
def heatmap(power_2d, bench_rng):
    # Pre-generate one labeled workload per mean for each role.
    train_sets = {}
    test_sets = {}
    for mean in MEANS:
        queries = shifted_gaussian_workload(
            TRAIN_SIZE, 2, mean, bench_rng, dataset=power_2d
        )
        train_sets[mean] = (queries, label_queries(power_2d, queries))
        queries = shifted_gaussian_workload(
            TEST_SIZE, 2, mean, bench_rng, dataset=power_2d
        )
        test_sets[mean] = (queries, label_queries(power_2d, queries))

    grid = {}
    for train_mean, (tq, ts) in train_sets.items():
        est = QuadHist(tau=0.005).fit(tq, ts)
        for test_mean, (vq, vs) in test_sets.items():
            grid[(train_mean, test_mean)] = rms_error(est.predict_many(vq), vs)
    return grid


def test_fig16_heatmap(heatmap, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    rows = []
    for test_mean in MEANS:
        row = {"test\\train": test_mean}
        for train_mean in MEANS:
            row[str(train_mean)] = round(heatmap[(train_mean, test_mean)], 4)
        rows.append(row)
    record_table(
        "fig16_workload_shift_heatmap",
        format_table(rows, title="Fig 16: RMS under train/test Gaussian shift (QuadHist, Power 2D)"),
    )

    # Shape checks: matched distributions beat strongly mismatched ones on
    # average, and error grows with the shift for a fixed training mean.
    diagonal = np.mean([heatmap[(m, m)] for m in MEANS])
    extreme = np.mean(
        [heatmap[(MEANS[0], MEANS[-1])], heatmap[(MEANS[-1], MEANS[0])]]
    )
    assert diagonal < extreme
    near = heatmap[(0.6, 0.5)]
    far = heatmap[(0.6, 0.2)]
    assert near < far * 1.5
