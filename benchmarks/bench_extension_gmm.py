"""Extension benchmark: the Gaussian-mixture learner (paper's future work).

Section 6 of the paper leaves "compute a Gaussian mixture with a small
loss" as an open problem; ``GaussianMixtureHist`` instantiates the paper's
own two-phase recipe with Gaussian components.  This bench compares it
against QuadHist and PtsHist on the main Power workload and on halfspace
queries (where its masses are exact via 1-D projection in any dimension).
"""

import pytest

from repro.core import GaussianMixtureHist, PtsHist, QuadHist
from repro.data import WorkloadSpec
from repro.eval import evaluate_estimator, make_workload
from repro.eval.reporting import format_table

from benchmarks._experiments import Q_FLOOR
from benchmarks.conftest import record_table

BOX_SPEC = WorkloadSpec(query_kind="box", center_kind="data")
HALF_SPEC = WorkloadSpec(query_kind="halfspace", center_kind="data")


@pytest.fixture(scope="module")
def comparison(power_2d, forest_dataset, bench_rng):
    rows = []
    # Orthogonal ranges, Power 2-D.
    train = make_workload(power_2d, 200, bench_rng, spec=BOX_SPEC)
    test = make_workload(power_2d, 120, bench_rng, spec=BOX_SPEC)
    for name, est in (
        ("quadhist", QuadHist(tau=0.005, max_leaves=800)),
        ("ptshist", PtsHist(size=800, seed=0)),
        ("gmm", GaussianMixtureHist(components=800, seed=0)),
    ):
        r = evaluate_estimator(name, est, train, test, q_floor=Q_FLOOR)
        rows.append({"workload": "power-box-2d", **r.row()})
    # Halfspaces, Forest 4-D (exact Gaussian masses in any dimension).
    forest4 = forest_dataset.numeric_projection(4, bench_rng)
    train = make_workload(forest4, 200, bench_rng, spec=HALF_SPEC)
    test = make_workload(forest4, 120, bench_rng, spec=HALF_SPEC)
    for name, est in (
        ("ptshist", PtsHist(size=800, seed=0)),
        ("gmm", GaussianMixtureHist(components=800, seed=0)),
    ):
        r = evaluate_estimator(name, est, train, test, q_floor=Q_FLOOR)
        rows.append({"workload": "forest-halfspace-4d", **r.row()})
    return rows


def test_gmm_extension(comparison, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "extension_gmm_comparison",
        format_table(comparison, title="Extension: GaussianMixtureHist vs QuadHist/PtsHist"),
    )
    by_key = {(r["workload"], r["method"]): r for r in comparison}
    # The mixture is competitive with PtsHist on both workloads
    # (same bucket budget, same weight solver).
    assert (
        by_key[("power-box-2d", "gmm")]["rms"]
        <= by_key[("power-box-2d", "ptshist")]["rms"] * 2.5
    )
    assert (
        by_key[("forest-halfspace-4d", "gmm")]["rms"]
        <= by_key[("forest-halfspace-4d", "ptshist")]["rms"] * 2.5
    )


def test_benchmark_gmm_fit(benchmark, power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=BOX_SPEC)
    benchmark.pedantic(
        lambda: GaussianMixtureHist(components=400, seed=0).fit(
            train.queries, train.selectivities
        ),
        rounds=2,
        iterations=1,
    )
