"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper (DESIGN.md §3
maps them).  The data series are:

* printed at the end of the pytest run (uncaptured, via
  ``pytest_terminal_summary``), and
* written to ``benchmarks/results/<name>.txt`` for later inspection.

Scales are reduced relative to the paper (single-CPU budget): datasets are
~25k rows, training sizes sweep 50..400 instead of 50..2000, and ISOMER —
which the paper itself could not train past 200 queries in 30 minutes — is
capped at 100 training queries.  EXPERIMENTS.md records the shape
comparison against the paper's reported curves.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.data import census_like, dmv_like, forest_like, power_like

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_TABLES: list[tuple[str, str]] = []


def record_table(name: str, text: str) -> None:
    """Register a rendered table for end-of-run display and persist it."""
    _TABLES.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for name, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture
def table_bench(benchmark):
    """Wrap a table-producing callable so the test runs under
    ``--benchmark-only`` (pytest-benchmark skips tests that never touch the
    ``benchmark`` fixture).  The heavy sweeps live in session/module
    fixtures; what is timed here is the final evaluation/pivot step."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return run


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(20220612)


@pytest.fixture(scope="session")
def power_dataset():
    return power_like(rows=25_000)


@pytest.fixture(scope="session")
def power_2d(power_dataset):
    return power_dataset.project([0, 3])


@pytest.fixture(scope="session")
def forest_dataset():
    return forest_like(rows=25_000)


@pytest.fixture(scope="session")
def census_dataset():
    return census_like(rows=25_000)


@pytest.fixture(scope="session")
def dmv_dataset():
    return dmv_like(rows=25_000)


# ---------------------------------------------------------------------------
# Shared sweeps: the Power workload sweeps feed both the figure benches
# (Figs 10-15, 31-36) and the Q-error table bench (Table 1), so they are
# computed once per session.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def power_datadriven_results(power_2d, bench_rng):
    from repro.data import WorkloadSpec

    from benchmarks._experiments import sweep_training_sizes

    spec = WorkloadSpec(query_kind="box", center_kind="data")
    return sweep_training_sizes(power_2d, spec, bench_rng)


@pytest.fixture(scope="session")
def power_random_results(power_2d, bench_rng):
    from repro.data import WorkloadSpec

    from benchmarks._experiments import sweep_training_sizes

    spec = WorkloadSpec(query_kind="box", center_kind="random")
    return sweep_training_sizes(power_2d, spec, bench_rng)


@pytest.fixture(scope="session")
def power_random_nonempty_results(power_2d, bench_rng):
    from repro.data import WorkloadSpec

    from benchmarks._experiments import sweep_training_sizes

    spec = WorkloadSpec(query_kind="box", center_kind="random")
    return sweep_training_sizes(power_2d, spec, bench_rng, nonempty_test=True)


@pytest.fixture(scope="session")
def power_gaussian_results(power_2d, bench_rng):
    from repro.data import WorkloadSpec

    from benchmarks._experiments import sweep_training_sizes

    spec = WorkloadSpec(query_kind="box", center_kind="gaussian")
    return sweep_training_sizes(power_2d, spec, bench_rng)
