"""Extension benchmarks: STHoles and the classic data-driven oracles.

Two context points beyond the paper's comparison:

* **STHoles** (the ancestor of ISOMER's bucket structure) with our
  Eq.-(8) weighting vs ISOMER and QuadHist at equal training size —
  showing where the lineage STHoles → ISOMER → generic learners lands.
* **Data-driven 1-D oracles** (equi-width / equi-depth / V-optimal /
  wavelet, all with full data access) vs the query-driven QuadHist on 1-D
  range predicates — quantifying how close feedback-only learning gets to
  the data-access gold standard.
"""

import pytest

from repro.baselines import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    Isomer,
    STHoles,
    VOptimalHistogram,
    WaveletHistogram,
)
from repro.core import QuadHist
from repro.data import WorkloadSpec
from repro.eval import evaluate_estimator, make_workload, rms_error
from repro.eval.reporting import format_table

from benchmarks._experiments import Q_FLOOR
from benchmarks.conftest import record_table

SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def stholes_comparison(power_2d, bench_rng):
    train = make_workload(power_2d, 100, bench_rng, spec=SPEC)
    test = make_workload(power_2d, 120, bench_rng, spec=SPEC)
    rows = []
    for name, est in (
        ("quadhist", QuadHist(tau=0.005, max_leaves=400)),
        ("stholes", STHoles(max_buckets=400)),
        ("isomer", Isomer(max_buckets=10_000)),
    ):
        result = evaluate_estimator(name, est, train, test, q_floor=Q_FLOOR)
        rows.append(result.row())
    return rows


def test_stholes_lineage(stholes_comparison, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "extension_stholes_lineage",
        format_table(
            stholes_comparison,
            title="Extension: STHoles vs ISOMER vs QuadHist (Power 2D, 100 train queries)",
        ),
    )
    by_method = {r["method"]: r for r in stholes_comparison}
    # All three are accurate; STHoles respects its bucket budget while
    # ISOMER's structure grows unboundedly.
    assert by_method["stholes"]["buckets"] <= 400
    assert by_method["isomer"]["buckets"] > by_method["stholes"]["buckets"]
    assert by_method["stholes"]["rms"] < 0.08


@pytest.fixture(scope="module")
def oracle_comparison(power_dataset, bench_rng):
    data = power_dataset.project([0])  # 1-D: the classic optimizer setting
    train = make_workload(data, 200, bench_rng, spec=SPEC)
    test = make_workload(data, 150, bench_rng, spec=SPEC)
    rows = []
    learned = QuadHist(tau=0.002).fit(train.queries, train.selectivities)
    rows.append(
        {
            "method": "quadhist (query-driven)",
            "buckets": learned.model_size,
            "rms": round(rms_error(learned.predict_many(test.queries), test.selectivities), 5),
        }
    )
    column = data.rows[:, 0]
    for name, oracle in (
        ("equi-width (data oracle)", EquiWidthHistogram(buckets=64)),
        ("equi-depth (data oracle)", EquiDepthHistogram(buckets=64)),
        ("v-optimal (data oracle)", VOptimalHistogram(buckets=32, grid=256)),
        ("wavelet (data oracle)", WaveletHistogram(coefficients=64, grid=256)),
    ):
        oracle.fit_data(column)
        rows.append(
            {
                "method": name,
                "buckets": oracle.model_size,
                "rms": round(
                    rms_error(oracle.predict_many(test.queries), test.selectivities), 5
                ),
            }
        )
    return rows


def test_classic_oracles(oracle_comparison, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "extension_classic_oracles_1d",
        format_table(
            oracle_comparison,
            title="Extension: query-driven learning vs data-driven oracles (Power 1D)",
        ),
    )
    by_method = {r["method"]: r for r in oracle_comparison}
    learned_rms = by_method["quadhist (query-driven)"]["rms"]
    best_oracle = min(
        v["rms"] for k, v in by_method.items() if "oracle" in k
    )
    # Feedback-only learning lands within a small factor of full data
    # access — the paper's empirical thesis in one number.
    assert learned_rms <= max(5 * best_oracle, 0.02)
