"""Figure 14: RMS on *non-empty* queries of the Random workload (Power).

The paper observes up to 97% of Random queries over skewed data have
selectivity ~0; Figure 14 repeats Figure 13 with empty test queries
filtered out.  Paper shape: very similar to Figure 13.
"""

import pytest

from repro.data import WorkloadSpec
from repro.eval.reporting import format_series

from benchmarks._experiments import series_from_results
from benchmarks.conftest import record_table

RANDOM = WorkloadSpec(query_kind="box", center_kind="random")


@pytest.fixture(scope="module")
def results(power_random_nonempty_results):
    return power_random_nonempty_results


def test_fig14_nonempty_rms(results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    sizes, series = series_from_results(results, "rms")
    record_table(
        "fig14_rms_power_random_nonempty",
        format_series(
            "train", sizes, series,
            title="Fig 14: RMS error on non-empty queries (Power 2D, Random workload)",
        ),
    )
    for name in ("quadhist", "ptshist"):
        assert series[name][-1] <= series[name][0]
