"""Extension benchmark: model validity (monotonicity & consistency).

The paper excludes deep-learning estimators from its comparison because
they "may return models that do not correspond to any valid hypothesis"
and "have been observed to produce selectivity estimates that are not
monotone or consistent [46]".  This bench quantifies that property for the
models we *do* have: the distribution-based learners show zero violations
by construction; QuickSel — whose mixture weights may be negative — is the
one model in the comparison that can violate both.
"""

import pytest

from repro.baselines import LWRegression, QuickSel, UniformEstimator
from repro.core import GaussianMixtureHist, PtsHist, QuadHist
from repro.data import WorkloadSpec
from repro.eval import consistency_violations, make_workload, monotonicity_violations
from repro.eval.reporting import format_table

from benchmarks.conftest import record_table

SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def validity(power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=SPEC)
    models = {
        "quadhist": QuadHist(tau=0.005, max_leaves=800),
        "ptshist": PtsHist(size=800, seed=0),
        "gmm": GaussianMixtureHist(components=400, seed=0),
        "quicksel": QuickSel(),
        "lw-regression": LWRegression(n_trees=120),
        "uniform": UniformEstimator(),
    }
    rows = []
    for name, model in models.items():
        model.fit(train.queries, train.selectivities)
        rows.append(
            {
                "method": name,
                "monotonicity_viol": round(
                    monotonicity_violations(model, bench_rng, dim=2, chains=60), 4
                ),
                "consistency_viol": round(
                    consistency_violations(model, bench_rng, dim=2, trials=80, tol=1e-4),
                    4,
                ),
            }
        )
    return rows


def test_validity_comparison(validity, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "extension_model_validity",
        format_table(
            validity,
            title="Extension: monotonicity/consistency violation rates (Power 2D)",
        ),
    )
    by_method = {r["method"]: r for r in validity}
    # Distribution-based models: valid by construction.
    for name in ("quadhist", "ptshist", "gmm", "uniform"):
        assert by_method[name]["monotonicity_viol"] == 0.0, name
    assert by_method["quadhist"]["consistency_viol"] == 0.0
