"""Theory benchmark: Theorem 2.1's ingredients, measured.

Not a figure in the paper, but the empirical face of Section 2: estimated
VC dimensions of the three query classes (they match the textbook values
the paper cites), the γ-fat-shattering LP on small range sets (Lemma 2.6's
finiteness / Lemma 2.7's construction), and the predicted training-size
scaling per query class.
"""

import pytest

from repro.geometry import Ball, Box
from repro.learning import (
    ball_space,
    ball_training_bound,
    box_space,
    convex_polygon_space,
    delta_distribution_fat_shatters,
    estimate_vc_dimension,
    fat_shatters,
    halfspace_space,
    halfspace_training_bound,
    orthogonal_range_training_bound,
)
from repro.eval.reporting import format_table

from benchmarks.conftest import record_table


def test_vc_dimension_estimates(bench_rng, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    rows = []
    for space, expected in (
        (box_space(1), 2),
        (box_space(2), 4),
        (halfspace_space(2), 3),
        (halfspace_space(3), 4),
        (ball_space(2), 3),
    ):
        est = estimate_vc_dimension(space, bench_rng, max_k=expected + 2, trials=150)
        rows.append(
            {"family": space.name, "dim": space.dim, "estimated": est, "known": expected}
        )
        assert est == expected
    # Convex polygons: the search ceiling is always hit (VC = infinity).
    poly = estimate_vc_dimension(
        convex_polygon_space(), bench_rng, max_k=6, pool_size=40, trials=80
    )
    rows.append({"family": "convex-polygons", "dim": 2, "estimated": f">={poly}", "known": "inf"})
    assert poly == 6
    record_table("theory_vc_dimensions", format_table(rows, title="Estimated vs known VC dimensions"))


def test_fat_shattering_constructions(bench_rng, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    # Lemma 2.7 construction: dual-shattered ranges are gamma-shattered for
    # gamma close to 1/2 (delta distributions).
    ranges = [Ball([0.4, 0.5], 0.25), Ball([0.6, 0.5], 0.25)]
    pool = bench_rng.random((4000, 2))
    assert delta_distribution_fat_shatters(ranges, pool, gamma=0.49)
    # A range containing every atom has s(R) = 1 for all distributions, so
    # the all-low pattern is unrealisable: no witness can exceed 1.
    nested = [Box([0.0, 0.0], [1.0, 1.0]), Box([0.2, 0.2], [0.7, 0.7])]
    assert not fat_shatters(nested, pool[:200], gamma=0.05)


def test_benchmark_fat_shattering_lp(benchmark, bench_rng):
    ranges = [
        Box([0.1, 0.2], [0.5, 0.8]),
        Box([0.4, 0.2], [0.8, 0.8]),
        Box([0.2, 0.0], [0.6, 0.5]),
    ]
    atoms = bench_rng.random((150, 2))
    result = benchmark.pedantic(
        lambda: fat_shatters(ranges, atoms, gamma=0.1), rounds=2, iterations=1
    )
    assert isinstance(result, bool)


def test_training_bound_scaling(table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    """Theorem 2.1's per-class exponents, tabulated."""
    rows = []
    for d in (1, 2, 3):
        rows.append(
            {
                "dim": d,
                "boxes(eps=.1)": f"{orthogonal_range_training_bound(d, 0.1, 0.05):.3g}",
                "halfspaces(eps=.1)": f"{halfspace_training_bound(d, 0.1, 0.05):.3g}",
                "balls(eps=.1)": f"{ball_training_bound(d, 0.1, 0.05):.3g}",
            }
        )
    record_table(
        "theory_training_bounds",
        format_table(rows, title="Theorem 2.1 training-size bounds (constants = 1)"),
    )
    assert orthogonal_range_training_bound(3, 0.1, 0.05) > halfspace_training_bound(
        3, 0.1, 0.05
    )
