"""Table 3 + Figures 37-45: Forest — Q-errors and the three-workload sweep.

The appendix repeats the Power analysis on Forest: model complexity, RMS
and training time for Data-driven / Random / Gaussian workloads (Figs
37-45) and the Q-error quantile table (Table 3).  Same qualitative shapes
as Power.
"""

import pytest

from repro.data import WorkloadSpec
from repro.eval.reporting import format_series, format_table

from benchmarks._experiments import (
    qerror_rows,
    series_from_results,
    sweep_training_sizes,
)
from benchmarks.conftest import record_table

WORKLOADS = {
    "data-driven": WorkloadSpec(query_kind="box", center_kind="data"),
    "random": WorkloadSpec(query_kind="box", center_kind="random"),
    "gaussian": WorkloadSpec(query_kind="box", center_kind="gaussian"),
}


@pytest.fixture(scope="module")
def forest_2d(forest_dataset, bench_rng):
    return forest_dataset.numeric_projection(2, bench_rng)


@pytest.fixture(scope="module")
def sweeps(forest_2d, bench_rng):
    return {
        label: sweep_training_sizes(forest_2d, spec, bench_rng)
        for label, spec in WORKLOADS.items()
    }


def test_fig37_45_forest_series(sweeps, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    fig_numbers = {"data-driven": (37, 38, 39), "random": (40, 41, 42), "gaussian": (43, 44, 45)}
    for label, results in sweeps.items():
        complexity_fig, rms_fig, time_fig = fig_numbers[label]
        for field, fig in (("buckets", complexity_fig), ("rms", rms_fig), ("fit_s", time_fig)):
            sizes, series = series_from_results(results, field)
            record_table(
                f"fig{fig}_forest_{label}_{field}",
                format_series(
                    "train", sizes, series,
                    title=f"Fig {fig}: {field} (Forest 2D, {label} workload)",
                ),
            )
    # Shape: data-driven RMS improves with training size for our methods.
    sizes, series = series_from_results(sweeps["data-driven"], "rms")
    assert series["quadhist"][-1] <= series["quadhist"][0]
    assert series["ptshist"][-1] <= series["ptshist"][0]


def test_table3_qerror_forest(sweeps, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    rows = []
    for label, results in sweeps.items():
        rows += qerror_rows(results, label)
    record_table(
        "table3_qerror_forest",
        format_table(rows, title="Table 3: Q-error quantiles over Forest (2D orthogonal ranges)"),
    )
    by_key = {(r["workload"], r["train"], r["method"]): r for r in rows}
    for method in ("quadhist", "ptshist"):
        assert by_key[("data-driven", 400, method)]["q50"] < 1.6
