"""Table 1: Q-error quantiles on Power — four workload groups.

Paper shape: on Data-driven workloads all methods have small Q-errors; on
Random/Gaussian workloads over the skewed data, QuickSel's tail Q-errors
blow up (hundreds to tens of thousands) while QuadHist and PtsHist — whose
weights are simplex-constrained — stay within small double digits even at
50 training queries.
"""

import pytest

from repro.eval.reporting import format_table

from benchmarks._experiments import qerror_rows
from benchmarks.conftest import record_table


@pytest.fixture(scope="module")
def table(
    power_datadriven_results,
    power_random_results,
    power_random_nonempty_results,
    power_gaussian_results,
):
    rows = []
    rows += qerror_rows(power_datadriven_results, "data-driven")
    rows += qerror_rows(power_random_results, "random")
    rows += qerror_rows(power_random_nonempty_results, "random-nonempty")
    rows += qerror_rows(power_gaussian_results, "gaussian")
    return rows


def test_table1_qerror_power(table, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "table1_qerror_power",
        format_table(table, title="Table 1: Q-error quantiles over Power (2D orthogonal ranges)"),
    )
    by_key = {(r["workload"], r["train"], r["method"]): r for r in table}

    # Data-driven: every method's median Q-error is near 1 at n=400.
    for method in ("quadhist", "ptshist", "quicksel"):
        assert by_key[("data-driven", 400, method)]["q50"] < 1.6

    # Random workload: the simplex-constrained learners' tail stays far
    # below QuickSel's at the largest shared training size (paper's story).
    quick_max = by_key[("random", 400, "quicksel")]["MAX"]
    quad_max = by_key[("random", 400, "quadhist")]["MAX"]
    assert quad_max <= quick_max * 2

    # Medians improve (or stay near 1) with more training data.
    assert (
        by_key[("data-driven", 400, "quadhist")]["q50"]
        <= by_key[("data-driven", 50, "quadhist")]["q50"] + 0.05
    )
