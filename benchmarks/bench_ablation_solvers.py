"""Ablation: the weight-estimation solver (DESIGN.md §3).

Eq. (8) is solved by default with penalised NNLS (the paper's scipy-nnls
recipe).  This ablation compares all four interchangeable solvers on the
same buckets: accuracy should be statistically identical (they solve the
same convex program), time may differ.
"""

import time

import pytest

from repro.core import QuadHist
from repro.data import WorkloadSpec
from repro.eval import make_workload, rms_error
from repro.eval.reporting import format_table

from benchmarks.conftest import record_table

SOLVERS = ("penalty", "penalty-own", "pgd", "active-set")
SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def ablation(power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=SPEC)
    test = make_workload(power_2d, 120, bench_rng, spec=SPEC)
    rows = []
    for solver in SOLVERS:
        start = time.perf_counter()
        est = QuadHist(tau=0.005, solver=solver).fit(train.queries, train.selectivities)
        elapsed = time.perf_counter() - start
        rms = rms_error(est.predict_many(test.queries), test.selectivities)
        rows.append(
            {
                "solver": solver,
                "buckets": est.model_size,
                "fit_s": round(elapsed, 3),
                "test_rms": round(rms, 5),
            }
        )
    return rows


def test_solver_ablation(ablation, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "ablation_solvers",
        format_table(ablation, title="Ablation: Eq.(8) solver choice (QuadHist, Power 2D)"),
    )
    errors = [r["test_rms"] for r in ablation]
    # All solvers land on (near-)identical accuracy.
    assert max(errors) - min(errors) < 0.01


@pytest.mark.parametrize("solver", SOLVERS)
def test_benchmark_solver(benchmark, solver, power_2d, bench_rng):
    train = make_workload(power_2d, 100, bench_rng, spec=SPEC)
    benchmark.pedantic(
        lambda: QuadHist(tau=0.01, solver=solver).fit(
            train.queries, train.selectivities
        ),
        rounds=2,
        iterations=1,
    )
