"""Tables 4 & 5 + Figures 46-51: DMV and Census (Data-driven, 2D).

The appendix's categorical-heavy datasets: projections mix categorical
(equality-predicate) and numeric attributes.  Reported: model complexity,
RMS, training time (Figs 46-51) and Q-error quantiles (Tables 4, 5).
Paper shape: PtsHist posts the best tail Q-errors on DMV/Census;
all methods improve with training size.
"""

import pytest

from repro.data import WorkloadSpec
from repro.eval.reporting import format_series, format_table

from benchmarks._experiments import (
    qerror_rows,
    series_from_results,
    sweep_training_sizes,
)
from benchmarks.conftest import record_table

SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def dmv_results(dmv_dataset, bench_rng):
    data = dmv_dataset.project([10, 0])  # numeric model-year + top categorical
    return sweep_training_sizes(data, SPEC, bench_rng)


@pytest.fixture(scope="module")
def census_results(census_dataset, bench_rng):
    data = census_dataset.project([0, 5])  # age + a categorical attribute
    return sweep_training_sizes(data, SPEC, bench_rng)


def test_fig46_48_table4_dmv(dmv_results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    for field, fig in (("buckets", 46), ("rms", 47), ("fit_s", 48)):
        sizes, series = series_from_results(dmv_results, field)
        record_table(
            f"fig{fig}_dmv_datadriven_{field}",
            format_series("train", sizes, series, title=f"Fig {fig}: {field} (DMV 2D, Data-driven)"),
        )
    rows = qerror_rows(dmv_results, "data-driven")
    record_table(
        "table4_qerror_dmv",
        format_table(rows, title="Table 4: Q-error quantiles over DMV"),
    )
    sizes, series = series_from_results(dmv_results, "rms")
    assert series["ptshist"][-1] <= series["ptshist"][0]


def test_fig49_51_table5_census(census_results, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    for field, fig in (("buckets", 49), ("rms", 50), ("fit_s", 51)):
        sizes, series = series_from_results(census_results, field)
        record_table(
            f"fig{fig}_census_datadriven_{field}",
            format_series("train", sizes, series, title=f"Fig {fig}: {field} (Census 2D, Data-driven)"),
        )
    rows = qerror_rows(census_results, "data-driven")
    record_table(
        "table5_qerror_census",
        format_table(rows, title="Table 5: Q-error quantiles over Census"),
    )
    sizes, series = series_from_results(census_results, "rms")
    assert series["quadhist"][-1] <= series["quadhist"][0]
