"""Extension benchmark: selectivity-stratified error breakdown.

The aggregate tables hide where the tails come from; the benchmark study
[46] the paper builds on stratifies by true selectivity.  This bench
prints QuadHist's and QuickSel's per-stratum RMS and Q-errors on a Random
workload over skewed data — the setting of Table 1's blow-ups — showing
the tails live almost entirely in the most-selective strata.
"""

import pytest

from repro.baselines import QuickSel
from repro.core import QuadHist
from repro.data import WorkloadSpec
from repro.eval import make_workload, stratified_error_report
from repro.eval.reporting import format_table

from benchmarks._experiments import Q_FLOOR
from benchmarks.conftest import record_table

SPEC = WorkloadSpec(query_kind="box", center_kind="random")


@pytest.fixture(scope="module")
def strata(power_2d, bench_rng):
    train = make_workload(power_2d, 300, bench_rng, spec=SPEC)
    test = make_workload(power_2d, 400, bench_rng, spec=SPEC)
    rows = []
    for name, est in (
        ("quadhist", QuadHist(tau=0.005, max_leaves=1200)),
        ("quicksel", QuickSel()),
    ):
        est.fit(train.queries, train.selectivities)
        for report in stratified_error_report(
            est, test.queries, test.selectivities, q_floor=Q_FLOOR
        ):
            rows.append({"method": name, **report.row()})
    return rows


def test_stratified_analysis(strata, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "extension_stratified_errors",
        format_table(
            strata,
            title="Extension: error by true-selectivity stratum (Power 2D, Random workload)",
        ),
    )
    quad = [r for r in strata if r["method"] == "quadhist"]
    # The Q-error tail concentrates in the most selective strata: mean
    # Q-error decreases from the first to the last stratum.
    assert quad[0]["mean_q"] >= quad[-1]["mean_q"]
    # RMS shows the opposite gradient (absolute errors live in the
    # unselective strata) — the reason the paper reports both metrics.
    assert quad[0]["rms"] <= quad[-1]["rms"] + 0.05
