"""Ablation: PtsHist's interior/uniform bucket split (DESIGN.md §3).

Section 3.3 hard-codes a 0.9/0.1 split between points sampled from query
interiors and points sampled uniformly.  This ablation sweeps the split:
all-uniform (0.0) wastes buckets on empty space; all-interior (1.0) cannot
allocate density outside the training queries' coverage.
"""

import pytest

from repro.core import PtsHist
from repro.data import WorkloadSpec
from repro.eval import make_workload, rms_error
from repro.eval.reporting import format_table

from benchmarks.conftest import record_table

FRACTIONS = (0.0, 0.5, 0.9, 1.0)
SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def ablation(power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=SPEC)
    test = make_workload(power_2d, 120, bench_rng, spec=SPEC)
    rows = []
    for fraction in FRACTIONS:
        rms_values = []
        for seed in range(3):
            est = PtsHist(size=800, interior_fraction=fraction, seed=seed).fit(
                train.queries, train.selectivities
            )
            rms_values.append(
                rms_error(est.predict_many(test.queries), test.selectivities)
            )
        rows.append(
            {
                "interior_fraction": fraction,
                "mean_rms": round(sum(rms_values) / len(rms_values), 5),
                "max_rms": round(max(rms_values), 5),
            }
        )
    return rows


def test_ptshist_split_ablation(ablation, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "ablation_ptshist_interior_fraction",
        format_table(ablation, title="Ablation: PtsHist interior/uniform split (Power 2D)"),
    )
    by_fraction = {r["interior_fraction"]: r["mean_rms"] for r in ablation}
    # The paper's 0.9 choice beats all-uniform bucket placement.
    assert by_fraction[0.9] <= by_fraction[0.0]


def test_benchmark_ptshist_fit(benchmark, power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=SPEC)
    benchmark.pedantic(
        lambda: PtsHist(size=800, seed=0).fit(train.queries, train.selectivities),
        rounds=2,
        iterations=1,
    )
