"""Sub-linear predict: sparse coverage kernels vs. the dense PR-2 path.

The spatial bucket index (:mod:`repro.geometry.index`) plus the sparse
coverage kernels (:mod:`repro.geometry.sparse`) replace the dense
``O(n x m)`` prediction contraction with work proportional to the number
of (query, bucket) pairs that actually overlap.  This bench sweeps the
two axes that decide the win:

* **leaf count** ``m`` — a QuadHist refined to 1k/4k/16k leaves on a
  Power-like 2-D marginal (index build time is recorded; it is paid once
  at fit time and amortised over every predict call),
* **query extent** — small ranges touch few buckets (sparse wins big),
  wide ranges approach all-pairs density, where the crossover heuristic
  must hand the call back to the dense kernel instead of losing.

For each cell we time ``predict_many`` with the index attached vs.
stripped (``est._index = None`` restores the exact PR-2 dense path) and
record the measured candidate density, the chosen path, and the max
absolute prediction difference (acceptance: ``<= 1e-12``).  A second
section times the Eq. (8) design-matrix build that dominates
ISOMER / arrangement-ERM fits, sparse vs. dense, on the same bucket sets.

Results land in ``benchmarks/results/BENCH_sparse.json``::

    PYTHONPATH=src python benchmarks/bench_sparse.py          # full
    PYTHONPATH=src python benchmarks/bench_sparse.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.quadhist import QuadHist
from repro.data.selectivity import label_queries
from repro.data.synthetic import power_like
from repro.data.workloads import WorkloadSpec, generate_workload
from repro.geometry.batch import coverage_matrix
from repro.geometry.index import build_bucket_index
from repro.geometry.ranges import Box
from repro.geometry.sparse import sparse_coverage_matrix

RESULTS_DIR = Path(__file__).resolve().parent / "results"

FULL = {
    "mode": "full",
    "rows": 25_000,
    "train_queries": 800,
    "leaf_counts": [1024, 4096, 16384],
    "extents": [0.01, 0.05, 0.2],
    "eval_queries": 2_000,
    "design_queries": 800,
}
SMOKE = {
    "mode": "smoke",
    "rows": 4_000,
    "train_queries": 150,
    "leaf_counts": [256, 1024],
    "extents": [0.05, 0.2],
    "eval_queries": 300,
    "design_queries": 150,
}


def _best_of(repeats: int, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _fixed_extent_queries(rng, n: int, extent: float) -> list[Box]:
    """``n`` square boxes of side ``extent`` with uniform centers."""
    lows = rng.uniform(0.0, 1.0 - extent, size=(n, 2))
    return [Box(low, low + extent) for low in lows]


def _fit_quadhist(config: dict, max_leaves: int) -> QuadHist:
    rng = np.random.default_rng(20220612)
    data = power_like(rows=config["rows"], seed=7).project([0, 3])
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    train = generate_workload(
        config["train_queries"], data.dim, rng, spec=spec, dataset=data
    )
    labels = label_queries(data, train)
    est = QuadHist(tau=1e-9, max_leaves=max_leaves)
    est.fit(train, labels)
    return est


def _measured_density(index, queries: list[Box]) -> float:
    lows = np.stack([q.lows for q in queries])
    highs = np.stack([q.highs for q in queries])
    found = index.candidates_for_boxes(lows, highs)
    return float(found[0][-1]) / (len(queries) * index.m)


def run(config: dict) -> dict:
    rng = np.random.default_rng(99)
    sweep = []
    design = []
    for max_leaves in config["leaf_counts"]:
        est = _fit_quadhist(config, max_leaves)
        m = est.model_size
        index = est._index
        t_build, _ = _best_of(
            2, lambda: build_bucket_index(index.b_lows, index.b_highs)
        )
        print(f"m={m} leaves (requested {max_leaves}), index={index.kind}, "
              f"build {t_build * 1e3:.1f}ms")

        for extent in config["extents"]:
            queries = _fixed_extent_queries(rng, config["eval_queries"], extent)
            density = _measured_density(index, queries)

            est._index = index
            t_sparse, p_sparse = _best_of(3, lambda: est.predict_many(queries))
            est._index = None
            t_dense, p_dense = _best_of(3, lambda: est.predict_many(queries))
            est._index = index

            diff = float(np.max(np.abs(np.asarray(p_sparse) - np.asarray(p_dense))))
            point = {
                "leaves": m,
                "index_kind": index.kind,
                "index_build_seconds": round(t_build, 4),
                "extent": extent,
                "queries": len(queries),
                "candidate_density": round(density, 5),
                "sparse_seconds": round(t_sparse, 4),
                "dense_seconds": round(t_dense, 4),
                "speedup": round(t_dense / t_sparse, 2),
                "max_abs_diff": diff,
            }
            sweep.append(point)
            print(
                f"  extent={extent}: density={density:.4f}  "
                f"sparse {t_sparse:.3f}s vs dense {t_dense:.3f}s  "
                f"speedup {point['speedup']}x  maxdiff {diff:.1e}"
            )

        # Eq. (8) design-matrix build — the cost that dominates the
        # ISOMER / arrangement-ERM weight-estimation fits.
        fit_queries = _fixed_extent_queries(rng, config["design_queries"], 0.05)
        volumes = np.prod(index.b_highs - index.b_lows, axis=1)
        t_sp, a_sp = _best_of(
            2, lambda: sparse_coverage_matrix(fit_queries, index, volumes)
        )
        t_de, a_de = _best_of(
            2, lambda: coverage_matrix(fit_queries, index.b_lows, index.b_highs, volumes)
        )
        design_point = {
            "leaves": m,
            "queries": len(fit_queries),
            "sparse_seconds": round(t_sp, 4),
            "dense_seconds": round(t_de, 4),
            "speedup": round(t_de / t_sp, 2),
            "max_abs_diff": float(np.max(np.abs(a_sp - a_de))),
        }
        design.append(design_point)
        print(
            f"  design matrix: sparse {t_sp:.3f}s vs dense {t_de:.3f}s  "
            f"speedup {design_point['speedup']}x"
        )

    big = [p for p in sweep if p["leaves"] >= 10_000]
    headline = max((p["speedup"] for p in big), default=None)
    return {
        "config": config,
        "headline_speedup_at_10k_leaves": headline,
        "max_abs_diff": max(p["max_abs_diff"] for p in sweep),
        "predict_sweep": sweep,
        "design_matrix": design,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (seconds, not minutes)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_sparse.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    result = run(SMOKE if args.smoke else FULL)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    if result["headline_speedup_at_10k_leaves"] is not None:
        print(
            f"best predict_many speedup at >=10k leaves: "
            f"{result['headline_speedup_at_10k_leaves']}x"
        )
    print(f"max sparse-vs-dense prediction diff: {result['max_abs_diff']:.2e}")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
