"""Robustness: accuracy degradation vs. injected feedback corruption.

The sanitization layer (``repro.robustness.sanitize``) exists so a dirty
feedback stream degrades accuracy gracefully instead of poisoning or
aborting training.  This bench corrupts a seeded fraction of the training
workload with :class:`repro.robustness.ChaosMonkey` (NaN labels,
out-of-range labels, degenerate ranges), fits QuadHist under the ``drop``
and ``clamp`` policies, and scores on a *clean* test workload.

Expected shape: under ``drop`` the RMS curve stays nearly flat (corrupted
pairs are quarantined, the model just trains on slightly less data);
``clamp`` pays a little extra for repairing out-of-range labels to the
nearest bound.  The strict policy would refuse every corrupted workload
outright.

Alongside the usual text table, the sweep lands in
``benchmarks/results/BENCH_robustness.json`` so the degradation curve is
machine-readable for regression tracking.
"""

import json

import pytest

from repro.core import QuadHist
from repro.data import WorkloadSpec
from repro.eval import evaluate_estimator, make_workload
from repro.eval.harness import Workload
from repro.eval.reporting import format_table
from repro.robustness import ChaosConfig, ChaosMonkey, chaos

from benchmarks.conftest import RESULTS_DIR, record_table

CORRUPTION_RATES = (0.0, 0.1, 0.2, 0.3)
POLICIES = ("drop", "clamp")
SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def corruption_sweep(power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=SPEC)
    test = make_workload(power_2d, 120, bench_rng, spec=SPEC)
    rows = []
    for rate in CORRUPTION_RATES:
        monkey = ChaosMonkey(
            ChaosConfig(feedback_corruption_rate=rate, seed=20220612)
        )
        dirty_q, dirty_s, corrupted = monkey.corrupt_workload(
            train.queries, train.selectivities
        )
        dirty = Workload(dirty_q, dirty_s)
        for policy in POLICIES:
            result = evaluate_estimator(
                f"quadhist/{policy}",
                QuadHist(tau=0.005, max_leaves=4 * len(train)),
                dirty,
                test,
                sanitize_policy=policy,
            )
            rows.append(
                {
                    "corruption": rate,
                    "injected": len(corrupted),
                    "policy": policy,
                    "quarantined": result.quarantined,
                    "buckets": result.model_size,
                    "rms": round(result.rms, 5),
                    "linf": round(result.linf, 5),
                }
            )
    return rows


def test_accuracy_vs_corruption_rate(corruption_sweep, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "robustness_corruption_sweep",
        format_table(
            corruption_sweep,
            title="Robustness: QuadHist RMS vs. injected corruption (Power 2D, clean test set)",
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_robustness.json").write_text(
        json.dumps(
            {
                "benchmark": "robustness_corruption_sweep",
                "dataset": "power-2d",
                "estimator": "quadhist",
                "train_size": 200,
                "test_size": 120,
                "rows": corruption_sweep,
            },
            indent=2,
        )
        + "\n"
    )

    clean_rms = {
        row["policy"]: row["rms"]
        for row in corruption_sweep
        if row["corruption"] == 0.0
    }
    for row in corruption_sweep:
        if row["policy"] == "drop":
            # Quarantine is exact: every injected corruption is caught.
            assert row["quarantined"] == row["injected"]
            # Dropping dirty pairs keeps accuracy close to the clean fit.
            assert row["rms"] <= clean_rms["drop"] + 0.05
        # No policy lets corruption blow the model up.
        assert row["rms"] < 0.5


def test_solver_chaos_degrades_gracefully(power_2d, bench_rng, table_bench):
    """Accuracy with the primary solver rung disabled: the ladder's pgd
    rung should land within noise of the healthy fit."""
    table_bench(lambda: None)
    train = make_workload(power_2d, 150, bench_rng, spec=SPEC)
    test = make_workload(power_2d, 100, bench_rng, spec=SPEC)

    healthy = evaluate_estimator(
        "healthy", QuadHist(tau=0.005), train, test
    )
    with chaos(ChaosConfig(solver_fail_rungs=("penalty",))):
        degraded_est = QuadHist(tau=0.005)
        degraded = evaluate_estimator("no-penalty-rung", degraded_est, train, test)
    assert degraded_est.solve_report_.rung == "pgd"
    assert degraded.rms <= healthy.rms + 0.02
