"""Serving throughput: worker-pool scaling and request coalescing.

Two questions about the :mod:`repro.serving` stack, answered end to end
over real HTTP with multi-process clients (separate processes so the
*client* GIL never caps the measurement):

* **scaling** — requests/second of the supervised pre-fork pool at 1, 2,
  … N workers on identical mixed single/batch traffic.  The kernel
  load-balances accepts across workers, so throughput should scale with
  worker count up to the machine's core count — ``cpu_count`` is
  recorded alongside the curve, because a 1-core box (some CI runners)
  physically cannot show a >1× speedup no matter how correct the pool
  is.
* **coalescing** — single-worker throughput under concurrent
  single-query clients, flush window on (2 ms) vs. off.  The coalescer
  folds concurrent ``/v1/estimate`` misses into one ``predict_many``
  kernel call; the /metrics counters in the report show how many flushes
  actually folded how many queries.

Results land in ``benchmarks/results/BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import re
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.core.config import QuadHistConfig
from repro.core.quadhist import QuadHist
from repro.observability import MetricsRegistry
from repro.server import EstimatorService
from repro.serving import ServingConfig, Supervisor, pretrain_snapshot
from repro.serving.warmup import sample_query_payloads

RESULTS_DIR = Path(__file__).resolve().parent / "results"

FULL = {
    "mode": "full",
    "worker_counts": [1, 2, 4],
    "clients": 8,
    "duration_s": 4.0,
    "coalesce_clients": 8,
    "coalesce_duration_s": 4.0,
}
SMOKE = {
    "mode": "smoke",
    "worker_counts": [1, 2],
    "clients": 4,
    "duration_s": 1.5,
    "coalesce_clients": 4,
    "coalesce_duration_s": 1.5,
}


def _client_proc(base: str, payloads: list, duration_s: float, out) -> None:
    """One load-generating process: mixed single/small-batch estimates."""
    ok = 0
    failed = 0
    i = 0
    deadline = time.monotonic() + duration_s
    while time.monotonic() < deadline:
        payload = {"query": payloads[i % len(payloads)]}
        i += 1
        body = json.dumps(payload).encode()
        request = urllib.request.Request(
            f"{base}/v1/estimate",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                response.read()
                ok += response.status == 200
        except Exception:
            failed += 1
    out.send({"ok": ok, "failed": failed})
    out.close()


def _drive(base: str, payloads: list, clients: int, duration_s: float) -> dict:
    ctx = multiprocessing.get_context("fork")
    pipes = []
    procs = []
    for _ in range(clients):
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_client_proc, args=(base, payloads, duration_s, send)
        )
        proc.start()
        send.close()
        pipes.append(recv)
        procs.append(proc)
    totals = {"ok": 0, "failed": 0}
    for recv, proc in zip(pipes, procs):
        counts = recv.recv()
        proc.join(timeout=30)
        totals["ok"] += counts["ok"]
        totals["failed"] += counts["failed"]
    return totals


def _scrape_counter(base: str, name: str) -> float:
    with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
        text = response.read().decode()
    total = 0.0
    for match in re.finditer(rf"^{re.escape(name)}(?:\{{[^}}]*\}})? (\S+)$", text, re.M):
        total += float(match.group(1))
    return total


def _pool_config(flush_ms: float) -> dict:
    return dict(
        max_concurrency=16,
        queue_depth=128,
        deadline_ms=30_000.0,
        flush_ms=flush_ms,
        stable_after_s=0.5,
        drain_timeout_s=15.0,
        reload_check_s=5.0,
    )


def _run_pool(snapshot_dir, workers, flush_ms, clients, duration_s, payloads):
    def factory():
        return EstimatorService(
            lambda: QuadHist.from_config(QuadHistConfig(tau=0.01)),
            snapshot_dir=snapshot_dir,
        )

    config = ServingConfig(workers=workers, **_pool_config(flush_ms))
    supervisor = Supervisor(factory, config=config, registry=MetricsRegistry())
    try:
        host, port = supervisor.start()
        base = f"http://{host}:{port}"
        _drive(base, payloads, clients=2, duration_s=0.5)  # warm-up
        totals = _drive(base, payloads, clients, duration_s)
        coalesced = {
            "batches": _scrape_counter(base, "repro_coalesced_batches_total"),
            "queries": _scrape_counter(base, "repro_coalesced_queries_total"),
        }
    finally:
        supervisor.stop(drain=True)
    qps = totals["ok"] / duration_s
    return {
        "workers": workers,
        "clients": clients,
        "duration_s": duration_s,
        "ok": totals["ok"],
        "failed": totals["failed"],
        "requests_per_second": round(qps, 1),
        "coalesced": coalesced,
    }


def run(config: dict) -> dict:
    cpu_count = os.cpu_count() or 1
    tmp = tempfile.TemporaryDirectory(prefix="bench-serving-")
    pretrain_snapshot(tmp.name)
    payloads = sample_query_payloads(64, seed=5)

    scaling = []
    for workers in config["worker_counts"]:
        point = _run_pool(
            tmp.name,
            workers,
            flush_ms=2.0,
            clients=config["clients"],
            duration_s=config["duration_s"],
            payloads=payloads,
        )
        baseline = scaling[0]["requests_per_second"] if scaling else None
        if cpu_count == 1 and workers > 1:
            # A single core cannot demonstrate worker scaling: publishing
            # a ratio here would just report scheduler noise as a claim.
            point["speedup_vs_1_worker"] = None
        else:
            point["speedup_vs_1_worker"] = (
                round(point["requests_per_second"] / baseline, 2)
                if baseline
                else 1.0
            )
        scaling.append(point)
        speedup = point["speedup_vs_1_worker"]
        speedup_txt = "n/a (1 cpu)" if speedup is None else f"{speedup}x"
        print(
            f"workers={workers}: {point['requests_per_second']} req/s "
            f"(speedup {speedup_txt}, failed {point['failed']})"
        )

    coalesce = {}
    for label, flush_ms in (("coalesced", 2.0), ("uncoalesced", 0.0)):
        point = _run_pool(
            tmp.name,
            workers=1,
            flush_ms=flush_ms,
            clients=config["coalesce_clients"],
            duration_s=config["coalesce_duration_s"],
            payloads=payloads,
        )
        coalesce[label] = point
        print(
            f"{label} (flush={flush_ms}ms): "
            f"{point['requests_per_second']} req/s, "
            f"{point['coalesced']['batches']:.0f} batches folding "
            f"{point['coalesced']['queries']:.0f} queries"
        )
    coalesce["speedup"] = round(
        coalesce["coalesced"]["requests_per_second"]
        / max(coalesce["uncoalesced"]["requests_per_second"], 1e-9),
        2,
    )
    tmp.cleanup()

    # cpu_count leads the report: every number below is conditioned on it.
    result = {
        "cpu_count": cpu_count,
        "config": config,
        "scaling": scaling,
        "coalescing": coalesce,
    }
    if cpu_count == 1:
        result["scaling_note"] = (
            "single-core host: worker-scaling speedups are not claimable "
            "and are reported as null"
        )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (seconds, not minutes)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_serving.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    result = run(SMOKE if args.smoke else FULL)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    top = result["scaling"][-1]
    if top["speedup_vs_1_worker"] is None:
        scaling_txt = "worker scaling not claimable on 1 cpu"
    else:
        scaling_txt = f"{top['workers']}-worker speedup: {top['speedup_vs_1_worker']}x"
    print(
        f"cpu_count={result['cpu_count']}  {scaling_txt}  "
        f"coalescing speedup: {result['coalescing']['speedup']}x"
    )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
