"""Persistence: artifact save/load cost vs. refitting from scratch.

The point of :mod:`repro.persistence` is zero-downtime restarts — a
restored service must come up *much* faster than a cold fit.  This bench
pins that claim down per estimator:

* ``fit`` wall time (the cost a restore avoids),
* ``save`` wall time and artifact size on disk,
* ``load`` wall time (the cost a restore pays),
* ``fit/load`` speedup — the restart win,
* max absolute prediction difference after the round trip (must be 0:
  the format guarantees bitwise restores).

Results land in ``benchmarks/results/BENCH_persistence.json``.  Like the
throughput bench this is a standalone script, so CI can run it without
the pytest-benchmark harness::

    PYTHONPATH=src python benchmarks/bench_persistence.py          # full
    PYTHONPATH=src python benchmarks/bench_persistence.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.registry import make_estimator
from repro.data.selectivity import label_queries
from repro.data.synthetic import power_like
from repro.data.workloads import WorkloadSpec, generate_workload
from repro.persistence import load_model, save_model

RESULTS_DIR = Path(__file__).resolve().parent / "results"

FULL = {
    "mode": "full",
    "rows": 25_000,
    "train_queries": 400,
    "eval_queries": 2_000,
    "methods": ["quadhist", "kdhist", "ptshist", "gmm", "isomer", "quicksel"],
    "repeats": 3,
}
SMOKE = {
    "mode": "smoke",
    "rows": 4_000,
    "train_queries": 100,
    "eval_queries": 300,
    "methods": ["quadhist", "ptshist", "quicksel"],
    "repeats": 2,
}


def _best_of(repeats: int, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(config: dict) -> dict:
    rng = np.random.default_rng(20220612)
    data = power_like(rows=config["rows"], seed=7).project([0, 3])
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    train = generate_workload(
        config["train_queries"], data.dim, rng, spec=spec, dataset=data
    )
    labels = label_queries(data, train)
    queries = generate_workload(
        config["eval_queries"], data.dim, rng, spec=spec, dataset=data
    )

    methods = {}
    with tempfile.TemporaryDirectory() as tmp:
        for name in config["methods"]:
            t_fit, estimator = _best_of(
                config["repeats"],
                lambda n=name: _fit(n, train, labels),
            )
            path = Path(tmp) / f"{name}.rma"
            t_save, _ = _best_of(
                config["repeats"],
                lambda e=estimator, p=path: save_model(e, p, training=(train, labels)),
            )
            t_load, restored = _best_of(
                config["repeats"], lambda p=path: load_model(p)
            )
            diff = float(
                np.max(
                    np.abs(
                        estimator.predict_many(queries)
                        - restored.predict_many(queries)
                    )
                )
            )
            methods[name] = {
                "model_size": estimator.model_size,
                "fit_seconds": round(t_fit, 4),
                "save_seconds": round(t_save, 4),
                "load_seconds": round(t_load, 4),
                "artifact_bytes": path.stat().st_size,
                "restore_speedup_vs_fit": round(t_fit / t_load, 1),
                "max_abs_diff": diff,
            }
    return {"config": config, "methods": methods}


def _fit(name, train, labels):
    estimator = make_estimator(name, train_size=len(train))
    estimator.fit(train, labels)
    return estimator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (seconds, not minutes)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_persistence.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    result = run(SMOKE if args.smoke else FULL)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    for name, row in result["methods"].items():
        print(
            f"{name:10s} fit {row['fit_seconds']:8.4f}s  "
            f"save {row['save_seconds']:7.4f}s  load {row['load_seconds']:7.4f}s  "
            f"({row['artifact_bytes'] / 1024:7.1f} KiB)  "
            f"restore speedup {row['restore_speedup_vs_fit']:6.1f}x  "
            f"max_abs_diff {row['max_abs_diff']:.1e}"
        )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
