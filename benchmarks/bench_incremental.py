"""Incremental retrain: ``partial_fit`` update cost vs. a full refit.

The online-learning loop (see ``docs/online_learning.md``) absorbs each
feedback batch by refining the existing model in place — appending
design-matrix rows for the new queries, splitting only the implicated
partition leaves, and warm-starting the solver from the previous
weights — where the baseline refits from scratch on the union workload.
This bench pins the trade down on the paper's main configuration
(QuadHist over Power 2-D) and records two curves:

* **update-cost-vs-refit** on a stationary workload: per-batch wall time
  for ``partial_fit(warm_start=True)`` against a fresh ``fit`` on the
  concatenated history, with held-out RMS for both models after every
  batch (the accuracy cost of incrementality, if any);
* **accuracy-vs-time under workload shift** (the Figure-16 harness):
  training starts on a shifted-Gaussian workload centred at one mean,
  feedback batches arrive from another, and both maintenance strategies
  are scored on the *new* workload after each batch — cumulative
  maintenance seconds against RMS, i.e. how much accuracy per second of
  training each strategy buys while the workload moves.

Results land in ``benchmarks/results/BENCH_incremental.json``::

    PYTHONPATH=src python benchmarks/bench_incremental.py          # full
    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke  # CI-sized

``--assert-speedup X`` exits non-zero unless the mean per-batch update
is at least ``X`` times faster than the refit — the CI perf-smoke job
runs with ``--smoke --assert-speedup 10``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.config import QuadHistConfig
from repro.core.quadhist import QuadHist
from repro.data.selectivity import label_queries
from repro.data.synthetic import power_like
from repro.data.workloads import (
    WorkloadSpec,
    generate_workload,
    shifted_gaussian_workload,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

FULL = {
    "mode": "full",
    "rows": 25_000,
    "initial_queries": 400,
    "batches": 8,
    "batch_size": 15,
    "eval_queries": 500,
    "tau": 0.003,
    "shift_from": 0.3,
    "shift_to": 0.6,
}
SMOKE = {
    "mode": "smoke",
    "rows": 12_000,
    "initial_queries": 300,
    "batches": 4,
    "batch_size": 10,
    "eval_queries": 200,
    "tau": 0.005,
    "shift_from": 0.3,
    "shift_to": 0.6,
}


def _quadhist(config: dict) -> QuadHist:
    return QuadHist.from_config(QuadHistConfig(tau=config["tau"]))


def _rms(est, queries, labels) -> float:
    return float(np.sqrt(np.mean((est.predict_many(queries) - labels) ** 2)))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _batched(queries, labels, config):
    size = config["batch_size"]
    for i in range(config["batches"]):
        lo, hi = i * size, (i + 1) * size
        yield queries[lo:hi], labels[lo:hi]


def update_cost_curve(config: dict, data, rng) -> dict:
    """Stationary workload: per-batch update cost vs. refit-on-union."""
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    n_total = config["initial_queries"] + config["batches"] * config["batch_size"]
    queries = generate_workload(n_total, data.dim, rng, spec=spec, dataset=data)
    labels = label_queries(data, queries)
    test = generate_workload(config["eval_queries"], data.dim, rng, spec=spec, dataset=data)
    test_s = label_queries(data, test)

    n0 = config["initial_queries"]
    incremental = _quadhist(config)
    _, t_initial = _timed(lambda: incremental.fit(queries[:n0], labels[:n0]))

    seen = n0
    batches = []
    for batch_q, batch_s in _batched(queries[n0:], labels[n0:], config):
        _, t_update = _timed(
            lambda: incremental.partial_fit(batch_q, batch_s, warm_start=True)
        )
        seen += len(batch_q)
        union_q, union_s = queries[:seen], labels[:seen]
        refit = _quadhist(config)
        _, t_refit = _timed(lambda: refit.fit(union_q, union_s))
        report = incremental.update_report_
        batches.append(
            {
                "history_rows": seen,
                "update_seconds": round(t_update, 4),
                "refit_seconds": round(t_refit, 4),
                "speedup": round(t_refit / t_update, 2),
                "rows_appended": report.rows_appended,
                "leaves_split": report.leaves_split,
                "columns_reused": report.columns_reused,
                "buckets": incremental.model_size,
                "update_rms": round(_rms(incremental, test, test_s), 5),
                "refit_rms": round(_rms(refit, test, test_s), 5),
            }
        )
    update_total = sum(b["update_seconds"] for b in batches)
    refit_total = sum(b["refit_seconds"] for b in batches)
    return {
        "initial_fit_seconds": round(t_initial, 4),
        "batches": batches,
        "update_total_seconds": round(update_total, 4),
        "refit_total_seconds": round(refit_total, 4),
        "mean_speedup": round(
            float(np.mean([b["speedup"] for b in batches])), 2
        ),
        "total_speedup": round(refit_total / update_total, 2),
        "final_rms_gap": round(
            batches[-1]["update_rms"] - batches[-1]["refit_rms"], 5
        ),
    }


def workload_shift_curve(config: dict, data, rng) -> dict:
    """Figure-16 harness: accuracy-vs-maintenance-time under drift."""
    n0 = config["initial_queries"]
    old_q = shifted_gaussian_workload(n0, data.dim, config["shift_from"], rng, dataset=data)
    old_s = label_queries(data, old_q)
    n_new = config["batches"] * config["batch_size"]
    new_q = shifted_gaussian_workload(n_new, data.dim, config["shift_to"], rng, dataset=data)
    new_s = label_queries(data, new_q)
    test = shifted_gaussian_workload(
        config["eval_queries"], data.dim, config["shift_to"], rng, dataset=data
    )
    test_s = label_queries(data, test)

    incremental = _quadhist(config).fit(old_q, old_s)
    rms_before = _rms(incremental, test, test_s)

    history_q, history_s = list(old_q), list(old_s)
    update_time = refit_time = 0.0
    points = []
    for batch_q, batch_s in _batched(new_q, new_s, config):
        _, t_update = _timed(
            lambda: incremental.partial_fit(batch_q, batch_s, warm_start=True)
        )
        update_time += t_update
        history_q.extend(batch_q)
        history_s.extend(batch_s)
        refit = _quadhist(config)
        _, t_refit = _timed(lambda: refit.fit(history_q, np.asarray(history_s)))
        refit_time += t_refit
        update_rms = _rms(incremental, test, test_s)
        refit_rms = _rms(refit, test, test_s)
        points.append(
            {
                "absorbed": len(history_q) - n0,
                "update_cumulative_seconds": round(update_time, 4),
                "refit_cumulative_seconds": round(refit_time, 4),
                "update_rms": round(update_rms, 5),
                "refit_rms": round(refit_rms, 5),
                "regret": round(update_rms - refit_rms, 5),
            }
        )
    return {
        "shift": [config["shift_from"], config["shift_to"]],
        "rms_on_shifted_before_feedback": round(rms_before, 5),
        "points": points,
        "update_total_seconds": round(update_time, 4),
        "refit_total_seconds": round(refit_time, 4),
        "final_regret": points[-1]["regret"],
    }


def run(config: dict) -> dict:
    rng = np.random.default_rng(20220612)
    data = power_like(rows=config["rows"], seed=7).project([0, 3])
    cost = update_cost_curve(config, data, rng)
    shift = workload_shift_curve(config, data, rng)
    return {"config": config, "update_cost": cost, "workload_shift": shift}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (seconds, not minutes)"
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless mean per-batch update is >= X times "
        "faster than the full refit",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_incremental.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    result = run(SMOKE if args.smoke else FULL)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    cost = result["update_cost"]
    print(
        f"update vs refit: {cost['update_total_seconds']}s vs "
        f"{cost['refit_total_seconds']}s over {len(cost['batches'])} batches "
        f"(mean speedup {cost['mean_speedup']}x, total {cost['total_speedup']}x, "
        f"final rms gap {cost['final_rms_gap']:+.5f})"
    )
    shift = result["workload_shift"]
    print(
        f"workload shift {shift['shift']}: rms "
        f"{shift['rms_on_shifted_before_feedback']} -> "
        f"update {shift['points'][-1]['update_rms']} / "
        f"refit {shift['points'][-1]['refit_rms']} "
        f"(regret {shift['final_regret']:+.5f}) in "
        f"{shift['update_total_seconds']}s vs {shift['refit_total_seconds']}s"
    )
    print(f"wrote {args.output}")

    if args.assert_speedup is not None and cost["mean_speedup"] < args.assert_speedup:
        print(
            f"FAIL: mean update speedup {cost['mean_speedup']}x < "
            f"required {args.assert_speedup}x",
            file=sys.stderr,
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
