"""Figures 18 & 19: RMS and training time vs dimensionality (Forest).

QuadHist vs PtsHist vs QuickSel at fixed training size as d grows (ISOMER
is dropped — the paper notes its model complexity is exponential in d).
Paper shape: comparable accuracy, all degrade with d; PtsHist's training
time stays flat with d (its cost depends on model size, not dimension)
while box-volume-based methods grow.
"""

import pytest

from repro.baselines import QuickSel
from repro.core import PtsHist, QuadHist
from repro.data import WorkloadSpec
from repro.eval import evaluate_estimator, make_workload
from repro.eval.reporting import format_series

from benchmarks._experiments import Q_FLOOR
from benchmarks.conftest import record_table

DIMS = (2, 4, 6, 8, 10)
TRAIN_SIZE = 200
SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def sweep(forest_dataset, bench_rng):
    rms = {"quadhist": [], "ptshist": [], "quicksel": []}
    fit_s = {"quadhist": [], "ptshist": [], "quicksel": []}
    cap = 4 * TRAIN_SIZE
    for d in DIMS:
        data = forest_dataset.numeric_projection(d, bench_rng)
        train = make_workload(data, TRAIN_SIZE, bench_rng, spec=SPEC)
        test = make_workload(data, 120, bench_rng, spec=SPEC)
        methods = {
            "quadhist": QuadHist(tau=0.005, max_leaves=cap, max_depth=10),
            "ptshist": PtsHist(size=cap, seed=0),
            "quicksel": QuickSel(),
        }
        for name, est in methods.items():
            result = evaluate_estimator(name, est, train, test, q_floor=Q_FLOOR)
            rms[name].append(round(result.rms, 5))
            fit_s[name].append(round(result.fit_seconds, 3))
    return rms, fit_s


def test_fig18_rms_vs_dimension(sweep, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    rms, _ = sweep
    record_table(
        "fig18_rms_vs_dimension",
        format_series("dim", list(DIMS), rms, title="Fig 18: RMS vs dimension (Forest, 200 train queries)"),
    )
    # Everyone degrades with dimension.
    for errors in rms.values():
        assert errors[-1] >= errors[0]


def test_fig19_training_time_vs_dimension(sweep, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    _, fit_s = sweep
    record_table(
        "fig19_training_time_vs_dimension",
        format_series("dim", list(DIMS), fit_s, title="Fig 19: training time seconds vs dimension (Forest)"),
    )
    # PtsHist's cost depends on model size, not dimension: its training
    # time stays within a modest factor across the whole sweep (the paper's
    # high-d headline; floor at 50 ms to absorb timer noise on a shared
    # single CPU).  QuadHist pays box-geometry costs that peak in 2-D; at
    # d >= 10 its 2^d-way splits exceed the 4n bucket cap and the model
    # degenerates — the rectangle-breakdown the paper predicts.
    times = fit_s["ptshist"]
    assert max(times) <= 12 * max(min(times), 5e-2)
    assert fit_s["quadhist"][0] > fit_s["quadhist"][-1]
