"""Extension benchmark: plan quality in the mini cost-based optimizer.

The paper's introduction motivates selectivity estimation through query
optimization.  This bench closes that loop: estimators drive the
seq-scan/index-scan choice of :mod:`repro.optimizer`, and we measure how
often each picks the right plan and how much execution cost wrong picks
waste (plan regret).  The learned models approach oracle plan quality;
the uniformity assumption pays multi-x regret on skewed data.
"""

import pytest

from repro.baselines import MeanEstimator, QuickSel, UniformEstimator
from repro.core import PtsHist, QuadHist
from repro.data import WorkloadSpec
from repro.eval import make_workload
from repro.eval.reporting import format_table
from repro.optimizer import TableStats, evaluate_plan_quality

from benchmarks.conftest import record_table

SPEC = WorkloadSpec(query_kind="box", center_kind="data")
STATS = TableStats(rows=1_000_000)


@pytest.fixture(scope="module")
def plan_quality(power_2d, bench_rng):
    train = make_workload(power_2d, 200, bench_rng, spec=SPEC)
    test = make_workload(power_2d, 200, bench_rng, spec=SPEC)
    models = {
        "quadhist": QuadHist(tau=0.005, max_leaves=800),
        "ptshist": PtsHist(size=800, seed=0),
        "quicksel": QuickSel(),
        "uniform": UniformEstimator(),
        "mean": MeanEstimator(),
    }
    rows = []
    for name, model in models.items():
        model.fit(train.queries, train.selectivities)
        quality = evaluate_plan_quality(
            model, test.queries, test.selectivities, STATS
        )
        rows.append({"method": name, **quality.row()})
    return rows


def test_plan_quality(plan_quality, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "extension_optimizer_plan_quality",
        format_table(
            plan_quality,
            title="Extension: access-path choice quality (Power 2D, 1M-row cost model)",
        ),
    )
    by_method = {r["method"]: r for r in plan_quality}
    # Learned estimators choose (nearly) always correctly, and never worse
    # than the uniformity assumption.  (The train-mean predictor is not a
    # meaningful comparison point here: on Data-driven workloads almost
    # every query's truth sits on the seq-scan side of the crossover, so
    # "always predict the mean" trivially picks seq scan and scores ~1.0.)
    assert by_method["quadhist"]["correct_plans"] >= 0.95
    assert by_method["quadhist"]["correct_plans"] >= by_method["uniform"]["correct_plans"]
    assert by_method["quadhist"]["mean_regret"] <= by_method["uniform"]["mean_regret"] + 0.02
