"""Figure 17: RMS vs training size across dimensions (PtsHist, Forest).

Section 4.4: Theorem 2.1 predicts a training size exponential in d.  Paper
shape: each dimension's curve falls with training size and flattens; higher
dimensions sit further from the origin (more samples needed for the same
accuracy).
"""

import pytest

from repro.core import PtsHist
from repro.data import WorkloadSpec
from repro.eval import evaluate_estimator, make_workload
from repro.eval.reporting import format_series

from benchmarks._experiments import Q_FLOOR
from benchmarks.conftest import record_table

DIMS = (2, 4, 6, 8)
TRAIN_SIZES = (50, 100, 200, 400)
SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def sweep(forest_dataset, bench_rng):
    series = {}
    for d in DIMS:
        data = forest_dataset.numeric_projection(d, bench_rng)
        test = make_workload(data, 120, bench_rng, spec=SPEC)
        errors = []
        for n in TRAIN_SIZES:
            train = make_workload(data, n, bench_rng, spec=SPEC)
            result = evaluate_estimator(
                f"ptshist_d{d}", PtsHist(size=4 * n, seed=0), train, test, q_floor=Q_FLOOR
            )
            errors.append(round(result.rms, 5))
        series[f"d={d}"] = errors
    return series


def test_fig17_dimensionality(sweep, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "fig17_rms_vs_training_by_dim",
        format_series(
            "train", list(TRAIN_SIZES), sweep,
            title="Fig 17: PtsHist RMS vs training size per dimension (Forest, Data-driven)",
        ),
    )
    # Each dimension improves with more training data.
    for errors in sweep.values():
        assert errors[-1] <= errors[0]
    # Higher dimension -> larger error at the largest training size.
    assert sweep["d=8"][-1] > sweep["d=2"][-1]
