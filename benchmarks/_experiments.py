"""Shared sweep logic for the benchmark suite.

The paper's evaluation repeats one skeleton across figures: sweep the
training size (or dimension, or τ), fit every method, and report model
complexity / RMS error / training time / Q-error quantiles.  This module
implements that skeleton once; each ``bench_*`` file declares its sweep and
prints the resulting series.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.baselines import Isomer, QuickSel
from repro.core import PtsHist, QuadHist
from repro.data.datasets import Dataset
from repro.data.workloads import WorkloadSpec
from repro.eval.harness import (
    ExperimentResult,
    Workload,
    evaluate_estimator,
    make_workload,
)

__all__ = [
    "method_factories",
    "sweep_training_sizes",
    "series_from_results",
    "DEFAULT_TRAIN_SIZES",
    "TEST_SIZE",
    "ISOMER_MAX_TRAIN",
    "Q_FLOOR",
]

#: Reduced sweep (paper: 50..2000) — see conftest docstring.
DEFAULT_TRAIN_SIZES = (50, 100, 200, 400)
TEST_SIZE = 150
#: The paper's own ISOMER runs stop at 200 training queries (30-min cap);
#: ours stop at 100 to respect the single-CPU budget.
ISOMER_MAX_TRAIN = 100
#: Q-error floor: one tuple of the 25k-row benchmark datasets.
Q_FLOOR = 1.0 / 25_000


def _adaptive_tau(train_size: int) -> float:
    """τ giving QuadHist roughly paper-convention model sizes."""
    return max(0.02 * 50 / train_size, 0.002)


def method_factories(
    train_size: int,
    buckets_per_query: int = 4,
    include_isomer: bool = True,
    seed: int = 0,
) -> dict[str, Callable[[], object]]:
    """The paper's four methods, with the '4x buckets per training query'
    model-complexity convention of Section 4.1 for QuadHist and PtsHist."""
    size_cap = buckets_per_query * train_size
    factories: dict[str, Callable[[], object]] = {}
    if include_isomer and train_size <= ISOMER_MAX_TRAIN:
        factories["isomer"] = lambda: Isomer(max_buckets=10_000)
    factories["quicksel"] = lambda: QuickSel()
    factories["quadhist"] = lambda: QuadHist(
        tau=_adaptive_tau(train_size), max_leaves=size_cap
    )
    factories["ptshist"] = lambda: PtsHist(size=size_cap, seed=seed)
    return factories


def sweep_training_sizes(
    dataset: Dataset,
    spec: WorkloadSpec,
    rng: np.random.Generator,
    train_sizes: Sequence[int] = DEFAULT_TRAIN_SIZES,
    test_size: int = TEST_SIZE,
    include_isomer: bool = True,
    buckets_per_query: int = 4,
    nonempty_test: bool = False,
) -> list[ExperimentResult]:
    """Fit every method at every training size; one test workload shared."""
    test = make_workload(dataset, test_size, rng, spec=spec)
    if nonempty_test:
        test = test.nonempty()
    results: list[ExperimentResult] = []
    for n in train_sizes:
        train = make_workload(dataset, n, rng, spec=spec)
        for name, factory in method_factories(
            n, buckets_per_query=buckets_per_query, include_isomer=include_isomer
        ).items():
            results.append(
                evaluate_estimator(name, factory(), train, test, q_floor=Q_FLOOR)
            )
    return results


def series_from_results(
    results: Sequence[ExperimentResult], field: str
) -> tuple[list[int], dict[str, list]]:
    """Pivot results into (train_sizes, {method: [value per size]})."""
    sizes = sorted({r.train_size for r in results})
    methods: dict[str, list] = {}
    for r in results:
        methods.setdefault(r.name, [])
    for name in methods:
        by_size = {r.train_size: r for r in results if r.name == name}
        for n in sizes:
            r = by_size.get(n)
            if r is None:
                methods[name].append("-")  # the paper's "-" for ISOMER DNFs
            elif field == "rms":
                methods[name].append(round(r.rms, 5))
            elif field == "buckets":
                methods[name].append(r.model_size)
            elif field == "fit_s":
                methods[name].append(round(r.fit_seconds, 3))
            elif field == "linf":
                methods[name].append(round(r.linf, 5))
            else:
                raise KeyError(f"unknown field {field!r}")
    return sizes, methods


def qerror_rows(results: Sequence[ExperimentResult], workload_label: str) -> list[dict]:
    """Rows in the layout of the paper's Q-error tables (Table 1/3/4/5)."""
    rows = []
    for r in results:
        rows.append(
            {
                "workload": workload_label,
                "train": r.train_size,
                "method": r.name,
                "q50": round(r.q_quantiles[0.5], 3),
                "q95": round(r.q_quantiles[0.95], 3),
                "q99": round(r.q_quantiles[0.99], 3),
                "MAX": round(r.q_quantiles[1.0], 3),
            }
        )
    return rows
