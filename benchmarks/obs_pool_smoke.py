"""Pool observability smoke: boot a real pool, scrape the ops endpoint.

CI's ``obs-smoke`` job runs this after the overhead bench: it forks a
2-worker supervised pool with the ops endpoint enabled, drives mixed
estimate/predict traffic through the shared socket, then checks the
supervisor-side fleet view end to end:

* the aggregated ``/metrics`` page passes the exposition linter
  (:mod:`repro.observability.expolint`);
* the fleet ``repro_service_queries_total`` equals the traffic
  generated **exactly** (however the kernel balanced it), and the cache
  identity ``hits + misses == queries`` holds;
* ``/workers`` and ``/health`` report a full, healthy complement;
* every response carries an ``X-Request-Id``.

Exit 1 on any violation::

    PYTHONPATH=src python benchmarks/obs_pool_smoke.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.request

from repro.core.quadhist import QuadHist
from repro.observability import MetricsRegistry, lint_exposition, parse_exposition
from repro.server import REQUEST_ID_HEADER, EstimatorService
from repro.serving import ServingConfig, Supervisor
from repro.serving.warmup import pretrain_snapshot, sample_query_payloads


def _post(base: str, path: str, payload: dict, timeout: float = 10.0):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        response.read()
        return response.headers.get(REQUEST_ID_HEADER)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--singles", type=int, default=40)
    parser.add_argument("--batches", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=5)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument(
        "--dump",
        help="write the scraped aggregated exposition to this path "
        "(CI feeds it to the expolint CLI)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as snapshot_dir:
        pretrain_snapshot(snapshot_dir)
        payloads = sample_query_payloads(16, seed=5)
        config = ServingConfig(
            workers=args.workers,
            deadline_ms=10_000.0,
            heartbeat_interval_s=0.1,
            drain_timeout_s=args.timeout,
            ops_port=0,
        )
        supervisor = Supervisor(
            lambda: EstimatorService(
                lambda: QuadHist(tau=0.01), snapshot_dir=snapshot_dir
            ),
            config=config,
            registry=MetricsRegistry(),
        )
        host, port = supervisor.start()
        try:
            base = f"http://{host}:{port}"
            ops_host, ops_port = supervisor.ops_address
            ops = f"http://{ops_host}:{ops_port}"

            deadline = time.monotonic() + args.timeout
            while supervisor.status()["alive"] < args.workers:
                if time.monotonic() > deadline:
                    print("FAIL: pool never reached full complement")
                    return 1
                time.sleep(0.05)

            missing_ids = 0
            for i in range(args.singles):
                request_id = _post(
                    base, "/v1/estimate", {"query": payloads[i % 16]}
                )
                missing_ids += not request_id
            for i in range(args.batches):
                batch = [
                    payloads[(i + j) % 16] for j in range(args.batch_size)
                ]
                missing_ids += not _post(base, "/v1/predict", {"queries": batch})
            if missing_ids:
                failures.append(f"{missing_ids} responses without {REQUEST_ID_HEADER}")
            expected = args.singles + args.batches * args.batch_size

            # Heartbeats carry the registry snapshots; wait for the fleet
            # view to converge on the generated traffic.
            deadline = time.monotonic() + args.timeout
            while (
                supervisor.aggregator.total("repro_service_queries_total")
                != expected
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)

            queries = supervisor.aggregator.total("repro_service_queries_total")
            hits = supervisor.aggregator.total("repro_prediction_cache_hits_total")
            misses = supervisor.aggregator.total(
                "repro_prediction_cache_misses_total"
            )
            if queries != expected:
                failures.append(f"fleet queries {queries} != generated {expected}")
            if hits + misses != queries:
                failures.append(
                    f"cache identity broken: {hits} + {misses} != {queries}"
                )

            with urllib.request.urlopen(f"{ops}/metrics", timeout=10.0) as response:
                exposition = response.read().decode("utf-8")
            if args.dump:
                with open(args.dump, "w") as handle:
                    handle.write(exposition)
            problems = lint_exposition(exposition)
            if problems:
                failures.append(f"exposition lint: {problems}")
            families, parse_problems = parse_exposition(exposition)
            if parse_problems:
                failures.append(f"exposition parse: {parse_problems}")
            scraped = sum(
                value
                for _, _, value, _ in families.get(
                    "repro_service_queries_total", {"samples": []}
                )["samples"]
            )
            if scraped != expected:
                failures.append(f"scraped queries {scraped} != {expected}")

            workers = json.loads(
                urllib.request.urlopen(f"{ops}/workers", timeout=10.0).read()
            )
            if len(workers["slots"]) != args.workers:
                failures.append(f"/workers slots: {workers['slots']}")
            health = json.loads(
                urllib.request.urlopen(f"{ops}/health", timeout=10.0).read()
            )
            if health["status"] != "ok" or health["alive"] != args.workers:
                failures.append(f"/health: {health}")

            print(
                f"pool {args.workers} workers, {expected} queries: fleet total "
                f"{queries:g}, hits {hits:g} + misses {misses:g}, "
                f"{len(families)} metric families, lint clean: {not problems}"
            )
        finally:
            if supervisor._sock is not None:
                supervisor.stop(drain=True)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("pool observability smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
