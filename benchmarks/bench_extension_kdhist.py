"""Extension benchmark: KdHist vs QuadHist across dimension.

Our Figure 18/19 reproduction measured QuadHist degenerating at high
dimension: a single ``2^d``-way split exceeds any reasonable bucket cap at
``d >= 10``.  KdHist keeps the paper's splitting *rule* but bisects one
axis at a time, so it can honour a tight bucket budget in any dimension.
This bench quantifies the trade: identical in 2-D (same rule, different
split shape), KdHist strictly better once ``2^d`` crosses the cap.
"""

import pytest

from repro.core import KdHist, QuadHist
from repro.data import WorkloadSpec
from repro.eval import evaluate_estimator, make_workload
from repro.eval.reporting import format_table

from benchmarks._experiments import Q_FLOOR
from benchmarks.conftest import record_table

DIMS = (2, 6, 10)
TRAIN_SIZE = 150
SPEC = WorkloadSpec(query_kind="box", center_kind="data")


@pytest.fixture(scope="module")
def comparison(forest_dataset, bench_rng):
    rows = []
    cap = 4 * TRAIN_SIZE
    for d in DIMS:
        data = forest_dataset.numeric_projection(d, bench_rng)
        train = make_workload(data, TRAIN_SIZE, bench_rng, spec=SPEC)
        test = make_workload(data, 100, bench_rng, spec=SPEC)
        for name, est in (
            ("quadhist", QuadHist(tau=0.005, max_leaves=cap, max_depth=12)),
            ("kdhist", KdHist(tau=0.005, max_leaves=cap)),
        ):
            result = evaluate_estimator(name, est, train, test, q_floor=Q_FLOOR)
            rows.append({"dim": d, **result.row()})
    return rows


def test_kdhist_extension(comparison, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "extension_kdhist_vs_quadhist",
        format_table(comparison, title="Extension: KdHist vs QuadHist across dimension (Forest)"),
    )
    by_key = {(r["dim"], r["method"]): r for r in comparison}
    # At d=10 QuadHist cannot split under the cap; KdHist refines and wins.
    assert by_key[(10, "quadhist")]["buckets"] == 1
    assert by_key[(10, "kdhist")]["buckets"] > 1
    assert by_key[(10, "kdhist")]["rms"] <= by_key[(10, "quadhist")]["rms"] + 1e-9
    # In 2-D both instantiate the same rule: accuracy within a small factor.
    assert by_key[(2, "kdhist")]["rms"] <= by_key[(2, "quadhist")]["rms"] * 4


def test_benchmark_kdhist_fit(benchmark, forest_dataset, bench_rng):
    data = forest_dataset.numeric_projection(6, bench_rng)
    train = make_workload(data, TRAIN_SIZE, bench_rng, spec=SPEC)
    benchmark.pedantic(
        lambda: KdHist(tau=0.005, max_leaves=600).fit(
            train.queries, train.selectivities
        ),
        rounds=2,
        iterations=1,
    )
