"""Figures 24-29: L2 vs L∞ training objectives (Section 4.6).

Trains QuadHist with each objective across model complexities and reports
train/test RMS and L∞ errors.  Paper shape:

* train error < test error under the matching metric (Figs 24/25, 27/28);
* the L2-trained model is also decent under L∞ (Fig 29);
* the L∞-trained model carries no guarantee under RMS (Fig 26) — its RMS
  is worse than the L2-trained model's.
"""

import pytest

from repro.core import QuadHist
from repro.data import WorkloadSpec
from repro.eval import linf_error, make_workload, rms_error
from repro.eval.reporting import format_table

from benchmarks.conftest import record_table

SPEC = WorkloadSpec(query_kind="box", center_kind="data")
TAUS = (0.02, 0.01, 0.005)
TRAIN_SIZE = 200


@pytest.fixture(scope="module")
def sweep(power_2d, bench_rng):
    train = make_workload(power_2d, TRAIN_SIZE, bench_rng, spec=SPEC)
    test = make_workload(power_2d, 120, bench_rng, spec=SPEC)
    rows = []
    for objective in ("l2", "linf"):
        for tau in TAUS:
            est = QuadHist(tau=tau, objective=objective).fit(
                train.queries, train.selectivities
            )
            train_preds = est.predict_many(train.queries)
            test_preds = est.predict_many(test.queries)
            rows.append(
                {
                    "objective": objective,
                    "buckets": est.model_size,
                    "train_rms": round(rms_error(train_preds, train.selectivities), 5),
                    "test_rms": round(rms_error(test_preds, test.selectivities), 5),
                    "train_linf": round(linf_error(train_preds, train.selectivities), 5),
                    "test_linf": round(linf_error(test_preds, test.selectivities), 5),
                }
            )
    return rows


def test_fig24_29_objective_comparison(sweep, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    record_table(
        "fig24_29_l2_vs_linf_objectives",
        format_table(sweep, title="Figs 24-29: L2- vs Linf-trained QuadHist (Power 2D, 200 train queries)"),
    )
    l2_rows = [r for r in sweep if r["objective"] == "l2"]
    linf_rows = [r for r in sweep if r["objective"] == "linf"]
    for l2, li in zip(l2_rows, linf_rows):
        # Each objective wins its own metric on the training set.
        assert li["train_linf"] <= l2["train_linf"] + 1e-6
        assert l2["train_rms"] <= li["train_rms"] + 1e-6
        # Train error <= test error under the matching metric (generalisation gap).
        assert l2["train_rms"] <= l2["test_rms"] + 0.01
    # Section 4.6's conclusion: L2 is the better overall objective — the
    # best L2-trained model (over complexities) beats the best Linf-trained
    # model on test RMS.
    best_l2 = min(r["test_rms"] for r in l2_rows)
    best_linf = min(r["test_rms"] for r in linf_rows)
    assert best_l2 <= best_linf + 1e-6
