"""Figures 20 & 21: halfspace queries (Forest, Data-driven).

Section 4.5: selectivity of *linear inequality* queries is learnable too.
QuadHist appears only at d=2 (exact box∩halfspace volumes stay cheap
there); PtsHist covers all dimensions.  Paper shape: error falls with
training size; higher d needs more samples; PtsHist training stays fast.
"""

import pytest

from repro.core import PtsHist, QuadHist
from repro.data import WorkloadSpec
from repro.eval import evaluate_estimator, make_workload
from repro.eval.reporting import format_series

from benchmarks._experiments import Q_FLOOR
from benchmarks.conftest import record_table

DIMS = (2, 4, 6)
TRAIN_SIZES = (50, 100, 200, 400)
SPEC = WorkloadSpec(query_kind="halfspace", center_kind="data")


@pytest.fixture(scope="module")
def sweep(forest_dataset, bench_rng):
    rms: dict[str, list] = {}
    fit_s: dict[str, list] = {}
    for d in DIMS:
        data = forest_dataset.numeric_projection(d, bench_rng)
        test = make_workload(data, 120, bench_rng, spec=SPEC)
        for n in TRAIN_SIZES:
            train = make_workload(data, n, bench_rng, spec=SPEC)
            methods = {f"ptshist_d{d}": PtsHist(size=4 * n, seed=0)}
            if d == 2:
                methods["quadhist_d2"] = QuadHist(tau=0.005, max_leaves=4 * n)
            for name, est in methods.items():
                result = evaluate_estimator(name, est, train, test, q_floor=Q_FLOOR)
                rms.setdefault(name, []).append(round(result.rms, 5))
                fit_s.setdefault(name, []).append(round(result.fit_seconds, 3))
    return rms, fit_s


def test_fig20_halfspace_rms(sweep, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    rms, _ = sweep
    record_table(
        "fig20_halfspace_rms",
        format_series("train", list(TRAIN_SIZES), rms, title="Fig 20: RMS, halfspace queries (Forest, Data-driven)"),
    )
    for name, errors in rms.items():
        assert errors[-1] <= errors[0] * 1.1, name
    # QuadHist more accurate than PtsHist in 2-D (paper's observation).
    assert rms["quadhist_d2"][-1] <= rms["ptshist_d2"][-1] * 1.5


def test_fig21_halfspace_training_time(sweep, table_bench):
    table_bench(lambda: None)  # register with pytest-benchmark (--benchmark-only)
    _, fit_s = sweep
    record_table(
        "fig21_halfspace_training_time",
        format_series("train", list(TRAIN_SIZES), fit_s, title="Fig 21: training time seconds, halfspace queries (Forest)"),
    )
    # QuadHist slower than PtsHist in 2-D (intersection volumes vs point
    # membership), as the paper reports.
    assert fit_s["quadhist_d2"][-1] >= fit_s["ptshist_d2"][-1]
