"""Observability overhead: instrumented vs. uninstrumented hot paths.

The instrumentation layer (:mod:`repro.observability`) promises that the
hot prediction path pays only a few counter increments per *call* — never
per query or per element.  This bench prices that promise on the paper's
main configuration (a ~1k-bucket QuadHist over Power 2-D, 5k-query
workload) by timing ``predict_many`` with metric recording globally
enabled vs. disabled (:func:`repro.observability.set_enabled`), plus
micro-benchmarks of the individual primitives (counter inc, histogram
observe, span open/close).

Two prediction paths are priced: the dense kernels the configuration
naturally selects, and the sparse spatial-index path (forced by raising
the crossover to 1.0 and dropping the bucket floor) — the sparse kernels
carry their own instrumentation (candidate counters, pruning gauges)
whose cost the dense numbers would hide.  The ``repro_sparse_calls_total``
dispatch counter is checked to prove the sparse path actually ran.

The fleet-aggregation layer is priced too: worker-side registry
snapshots (piggybacked on every heartbeat), supervisor-side merge
(:class:`~repro.observability.FleetAggregator`), and the aggregated
exposition render, reported as a duty-cycle fraction of the default
0.25 s heartbeat interval.

The run **fails (exit 1)** if the end-to-end overhead exceeds the budget
(default 5%) on either prediction path, or if the sparse path was never
exercised, so CI catches any future instrumentation creeping into a
per-element loop.  Results land in
``benchmarks/results/BENCH_observability.json``::

    PYTHONPATH=src python benchmarks/bench_observability.py          # full
    PYTHONPATH=src python benchmarks/bench_observability.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.quadhist import QuadHist
from repro.data.selectivity import label_queries
from repro.data.synthetic import power_like
from repro.data.workloads import WorkloadSpec, generate_workload
from repro.geometry.sparse import set_crossover_threshold, set_min_sparse_buckets
from repro.observability import (
    Counter,
    FleetAggregator,
    Histogram,
    default_registry,
    set_enabled,
    snapshot_registry,
    span,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

# Mirrors bench_throughput.py's FULL configuration: the acceptance target
# is "< 5% overhead on predict_many over 5k queries x 1024-leaf QuadHist".
FULL = {
    "mode": "full",
    "rows": 25_000,
    "train_queries": 400,
    "eval_queries": 5_000,
    "tau": 0.0004,
    "max_leaves": 1024,
    "repeats": 7,
    "micro_ops": 200_000,
    "micro_spans": 20_000,
}
SMOKE = {
    "mode": "smoke",
    "rows": 4_000,
    "train_queries": 100,
    "eval_queries": 500,
    "tau": 0.004,
    "max_leaves": 256,
    "repeats": 5,
    "micro_ops": 20_000,
    "micro_spans": 2_000,
}


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _per_op_ns(count: int, fn) -> float:
    start = time.perf_counter()
    for _ in range(count):
        fn()
    return (time.perf_counter() - start) / count * 1e9


def _micro(config: dict) -> dict:
    """Nanoseconds per operation for each primitive, recording enabled."""
    ops = config["micro_ops"]
    counter = Counter("bench_counter_total", "bench")
    labelled = Counter("bench_labelled_total", "bench", ("kernel",))
    hist = Histogram("bench_hist_seconds", "bench")
    results = {
        "counter_inc_ns": round(_per_op_ns(ops, counter.inc), 1),
        "labelled_counter_inc_ns": round(
            _per_op_ns(ops, lambda: labelled.inc(kernel="bench")), 1
        ),
        "histogram_observe_ns": round(
            _per_op_ns(ops, lambda: hist.observe(0.003)), 1
        ),
    }

    def one_span():
        with span("bench/noop"):
            pass

    results["span_ns"] = round(_per_op_ns(config["micro_spans"], one_span), 1)

    previous = set_enabled(False)
    try:
        results["counter_inc_disabled_ns"] = round(_per_op_ns(ops, counter.inc), 1)
    finally:
        set_enabled(previous)
    return results


def _fleet(workers: int = 4, heartbeat_interval_s: float = 0.25) -> dict:
    """Price one heartbeat's aggregation work on the *live* default
    registry — after the predict runs it carries this bench's real
    counter/gauge/histogram series, a representative worker payload.

    Reported as microseconds per operation plus the fraction of one core
    a worker (snapshot) and a supervisor (observe x workers) spend at
    the default heartbeat cadence.
    """
    registry = default_registry()
    reps = 200
    snapshot_us = _per_op_ns(reps, lambda: snapshot_registry(registry)) / 1e3

    snap = snapshot_registry(registry)
    aggregator = FleetAggregator()
    for worker in range(workers):
        aggregator.observe(worker, 1, snap)
    counter = iter(range(10**9))
    observe_us = (
        _per_op_ns(
            reps, lambda: aggregator.observe(next(counter) % workers, 1, snap)
        )
        / 1e3
    )
    render_us = _per_op_ns(reps, aggregator.render) / 1e3
    total_us = (
        _per_op_ns(
            reps, lambda: aggregator.total("bench_counter_total")
        )
        / 1e3
    )
    return {
        "workers": workers,
        "series": sum(
            len(entry["series"])
            for kind in snap.values()
            for entry in kind.values()
        ),
        "snapshot_us": round(snapshot_us, 1),
        "observe_us": round(observe_us, 1),
        "render_us": round(render_us, 1),
        "total_us": round(total_us, 1),
        # Worker side: one snapshot per heartbeat.  Supervisor side: one
        # observe per worker heartbeat.
        "worker_duty_cycle_pct": round(
            snapshot_us / 1e6 / heartbeat_interval_s * 100, 4
        ),
        "supervisor_duty_cycle_pct": round(
            workers * observe_us / 1e6 / heartbeat_interval_s * 100, 4
        ),
    }


def run(config: dict) -> dict:
    rng = np.random.default_rng(20220612)
    data = power_like(rows=config["rows"], seed=7).project([0, 3])
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    train = generate_workload(
        config["train_queries"], data.dim, rng, spec=spec, dataset=data
    )
    queries = generate_workload(
        config["eval_queries"], data.dim, rng, spec=spec, dataset=data
    )
    labels = label_queries(data, train)

    est = QuadHist(tau=config["tau"], max_leaves=config["max_leaves"])
    est.fit(train, labels)
    est.predict_many(queries)  # warm-up: touches every code path once

    repeats = config["repeats"]
    previous = set_enabled(False)
    try:
        t_disabled = _best_of(repeats, lambda: est.predict_many(queries))
        set_enabled(True)
        t_enabled = _best_of(repeats, lambda: est.predict_many(queries))
    finally:
        set_enabled(previous)

    # Same measurement on the sparse spatial-index path.  The natural
    # configuration picks its own path per family group (high-density
    # box workloads run dense), so the crossover is forced to 1.0 and
    # the bucket floor dropped for this section only; the dispatch
    # counter proves sparse kernels actually executed.
    calls = default_registry().get("repro_sparse_calls_total")

    def _sparse_dispatches() -> float:
        if calls is None:
            return 0.0
        return sum(
            value for key, value in calls.series() if key[-1] == "sparse"
        )

    prev_crossover = set_crossover_threshold(1.0)
    prev_floor = set_min_sparse_buckets(0)
    try:
        dispatches_before = _sparse_dispatches()
        est.predict_many(queries)  # warm-up: builds the spatial index
        sparse_exercised = _sparse_dispatches() > dispatches_before
        previous = set_enabled(False)
        try:
            ts_disabled = _best_of(repeats, lambda: est.predict_many(queries))
            set_enabled(True)
            ts_enabled = _best_of(repeats, lambda: est.predict_many(queries))
        finally:
            set_enabled(previous)
    finally:
        set_crossover_threshold(prev_crossover)
        set_min_sparse_buckets(prev_floor)

    overhead = (t_enabled - t_disabled) / t_disabled
    sparse_overhead = (ts_enabled - ts_disabled) / ts_disabled
    n = len(queries)
    return {
        "config": config,
        "buckets": est.model_size,
        "predict_many": {
            "queries": n,
            "enabled_seconds": round(t_enabled, 5),
            "disabled_seconds": round(t_disabled, 5),
            "enabled_queries_per_second": round(n / t_enabled, 1),
            "disabled_queries_per_second": round(n / t_disabled, 1),
            "overhead_fraction": round(overhead, 5),
        },
        "predict_many_sparse": {
            "queries": n,
            "sparse_path_exercised": sparse_exercised,
            "enabled_seconds": round(ts_enabled, 5),
            "disabled_seconds": round(ts_disabled, 5),
            "enabled_queries_per_second": round(n / ts_enabled, 1),
            "disabled_queries_per_second": round(n / ts_disabled, 1),
            "overhead_fraction": round(sparse_overhead, 5),
        },
        "micro_ns_per_op": _micro(config),
        "fleet_aggregation": _fleet(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (seconds, not minutes)"
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=0.05,
        help="maximum tolerated predict_many overhead fraction (default 0.05)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_observability.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    result = run(SMOKE if args.smoke else FULL)
    result["budget"] = args.budget
    overhead = result["predict_many"]["overhead_fraction"]
    sparse = result["predict_many_sparse"]
    result["within_budget"] = (
        overhead <= args.budget
        and sparse["overhead_fraction"] <= args.budget
        and sparse["sparse_path_exercised"]
    )

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    predict = result["predict_many"]
    print(
        f"predict_many ({predict['queries']} queries, {result['buckets']} buckets): "
        f"enabled {predict['enabled_seconds']}s vs "
        f"disabled {predict['disabled_seconds']}s -> "
        f"overhead {overhead * 100:.2f}% (budget {args.budget * 100:.0f}%)"
    )
    print(
        f"predict_many sparse path (exercised={sparse['sparse_path_exercised']}): "
        f"enabled {sparse['enabled_seconds']}s vs "
        f"disabled {sparse['disabled_seconds']}s -> "
        f"overhead {sparse['overhead_fraction'] * 100:.2f}%"
    )
    micro = result["micro_ns_per_op"]
    print(
        f"micro: counter.inc {micro['counter_inc_ns']}ns  "
        f"labelled.inc {micro['labelled_counter_inc_ns']}ns  "
        f"hist.observe {micro['histogram_observe_ns']}ns  "
        f"span {micro['span_ns']}ns  "
        f"(disabled inc {micro['counter_inc_disabled_ns']}ns)"
    )
    fleet = result["fleet_aggregation"]
    print(
        f"fleet ({fleet['workers']} workers, {fleet['series']} series): "
        f"snapshot {fleet['snapshot_us']}us  observe {fleet['observe_us']}us  "
        f"render {fleet['render_us']}us -> duty cycle "
        f"worker {fleet['worker_duty_cycle_pct']}%  "
        f"supervisor {fleet['supervisor_duty_cycle_pct']}%"
    )
    print(f"wrote {args.output}")
    if not result["within_budget"]:
        print(
            f"FAIL: dense {overhead * 100:.2f}% / sparse "
            f"{sparse['overhead_fraction'] * 100:.2f}% vs budget "
            f"{args.budget * 100:.0f}% "
            f"(sparse exercised: {sparse['sparse_path_exercised']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
