"""VC-dimension computation over realizability oracles.

``VC-dim(Σ)`` is the size of the largest point set shattered by the ranges
(Section 2.1).  Exact computation is exponential, so we provide:

* :func:`shatters` — exact shattering check for a given point set
  (``2^n`` oracle calls),
* :func:`vc_dimension_lower_bound` — certify ``VC-dim >= k`` from an
  explicit shattered set,
* :func:`estimate_vc_dimension` — randomized search for the largest
  shatterable set within a sampled pool; exact for the small dimensions the
  tests exercise, a lower bound in general.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.learning.range_space import RangeSpace

__all__ = ["shatters", "vc_dimension_lower_bound", "estimate_vc_dimension"]


def shatters(space: RangeSpace, points: np.ndarray) -> bool:
    """Exact check that ``space`` shatters ``points`` (all 2^n dichotomies)."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {pts.shape}")
    n = pts.shape[0]
    if n > 20:
        raise ValueError(f"refusing to enumerate 2^{n} subsets; use a smaller set")
    for mask_bits in range(1 << n):
        mask = np.array([(mask_bits >> i) & 1 for i in range(n)], dtype=bool)
        if not space.realizes(pts, mask):
            return False
    return True


def vc_dimension_lower_bound(space: RangeSpace, shattered_points: np.ndarray) -> int:
    """Certified lower bound: ``VC-dim >= len(points)`` if shattered.

    Raises
    ------
    ValueError
        If the supplied set is *not* shattered (so it certifies nothing).
    """
    pts = np.asarray(shattered_points, dtype=float)
    if not shatters(space, pts):
        raise ValueError(f"{space.name}: the supplied {pts.shape[0]} points are not shattered")
    return pts.shape[0]


def estimate_vc_dimension(
    space: RangeSpace,
    rng: np.random.Generator,
    max_k: int = 8,
    pool_size: int = 24,
    trials: int = 200,
) -> int:
    """Largest shatterable subset size found by randomized search.

    Draws a pool of random points in ``[0, 1]^dim`` and searches subsets of
    increasing size ``k`` for a shattered one, trying up to ``trials``
    random subsets (plus exhaustive search when the pool is small enough).
    Returns the largest ``k`` for which a shattered subset was found — a
    certified *lower bound* on the VC dimension that, for the families
    studied in the paper at small ``d``, matches the true value.
    """
    pool = rng.random((pool_size, space.dim))
    best = 0
    for k in range(1, max_k + 1):
        found = False
        n_subsets = _n_choose_k(pool_size, k)
        if n_subsets <= trials:
            candidates = combinations(range(pool_size), k)
        else:
            candidates = (
                tuple(sorted(rng.choice(pool_size, size=k, replace=False))) for _ in range(trials)
            )
        seen: set[tuple[int, ...]] = set()
        for subset in candidates:
            subset = tuple(subset)
            if subset in seen:
                continue
            seen.add(subset)
            if shatters(space, pool[list(subset)]):
                found = True
                break
        if not found:
            break
        best = k
    return best


def _n_choose_k(n: int, k: int) -> int:
    import math

    return math.comb(n, k)
