"""Low-crossing orderings of range sets (the Lemma 2.4 machinery).

The heart of the fat-shattering upper bound (Lemma 2.6) is Lemma 2.4: the
ranges of any ``T_j`` can be ordered ``R_1, ..., R_k`` so that *every*
point crosses only ``O(k^{1-1/λ} log k)`` consecutive pairs, where a point
``x`` crosses ``(R_i, R_{i+1})`` if ``x ∈ R_i ⊕ R_{i+1}`` (symmetric
difference).  The existence proof uses Chazelle–Welzl's spanning paths of
low crossing number in the dual range space.

This module makes the quantity measurable and provides a practical
ordering heuristic:

* :func:`max_crossing_number` — the exact (over a point sample) maximum
  number of consecutive symmetric-difference memberships for an ordering,
* :func:`greedy_low_crossing_order` — nearest-neighbour chaining by
  symmetric-difference measure, the standard practical surrogate for the
  Chazelle–Welzl construction,
* :func:`expected_crossings` — the quantity ``E_x[I_x]`` from Lemma 2.3/2.4
  under a point distribution.

The tests verify the lemma's *shape*: greedy orderings beat random ones,
and the max crossing number grows sublinearly in ``k`` for boxes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.ranges import Range

__all__ = [
    "crossing_counts",
    "max_crossing_number",
    "expected_crossings",
    "greedy_low_crossing_order",
]


def _membership(ranges: Sequence[Range], points: np.ndarray) -> np.ndarray:
    """(n_points, n_ranges) boolean membership matrix."""
    return np.stack([np.asarray(r.contains(points)) for r in ranges], axis=1)


def crossing_counts(
    ranges: Sequence[Range], order: Sequence[int], points: np.ndarray
) -> np.ndarray:
    """``I_x`` for each sample point: how many consecutive pairs it crosses."""
    if len(order) != len(ranges):
        raise ValueError("order must be a permutation of the ranges")
    if sorted(order) != list(range(len(ranges))):
        raise ValueError("order must be a permutation of 0..k-1")
    membership = _membership(ranges, np.asarray(points, dtype=float))
    ordered = membership[:, list(order)]
    return np.sum(ordered[:, :-1] != ordered[:, 1:], axis=1)


def max_crossing_number(
    ranges: Sequence[Range], order: Sequence[int], points: np.ndarray
) -> int:
    """``max_x I_x`` over the point sample (Lemma 2.4's bounded quantity)."""
    return int(crossing_counts(ranges, order, points).max(initial=0))


def expected_crossings(
    ranges: Sequence[Range], order: Sequence[int], points: np.ndarray
) -> float:
    """``E_x[I_x]`` under the empirical distribution of ``points``.

    Lemma 2.3 lower-bounds this by ``γ(k-1)`` for shattered range sets;
    Lemma 2.4 upper-bounds it by ``O(k^{1-1/λ} log k)`` for a good
    ordering — the tension that bounds ``|T_j|`` (Lemma 2.5).
    """
    return float(crossing_counts(ranges, order, points).mean())


def greedy_low_crossing_order(
    ranges: Sequence[Range], points: np.ndarray, start: int = 0
) -> list[int]:
    """Nearest-neighbour chaining by symmetric-difference measure.

    Starting from ``ranges[start]``, repeatedly appends the unused range
    whose symmetric difference with the current one contains the fewest
    sample points.  This greedy surrogate does not carry Chazelle–Welzl's
    worst-case guarantee but achieves low crossing numbers in practice
    (verified against random orderings in the tests).
    """
    k = len(ranges)
    if k == 0:
        return []
    if not 0 <= start < k:
        raise ValueError(f"start must be in [0, {k}), got {start}")
    membership = _membership(ranges, np.asarray(points, dtype=float))
    remaining = set(range(k))
    order = [start]
    remaining.discard(start)
    current = membership[:, start]
    while remaining:
        candidates = sorted(remaining)
        diffs = [int(np.sum(current != membership[:, j])) for j in candidates]
        best = candidates[int(np.argmin(diffs))]
        order.append(best)
        remaining.discard(best)
        current = membership[:, best]
    return order
