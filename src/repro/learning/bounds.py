"""Sample-complexity bounds (Theorem 2.1 and its ingredients).

All bounds are *orders of growth with explicit constants chosen as 1* — the
paper states them in big-O form, so the absolute values returned here are
meaningful only up to a constant factor.  They are still useful in two
ways: the benchmarks report the predicted *scaling* next to measured error
curves, and the tests check monotonicity/limit behaviour.
"""

from __future__ import annotations

import math

__all__ = [
    "bartlett_long_sample_size",
    "fat_shattering_upper_bound",
    "theorem21_training_bound",
    "orthogonal_range_training_bound",
    "halfspace_training_bound",
    "ball_training_bound",
]


def _check_eps_delta(eps: float, delta: float) -> None:
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def bartlett_long_sample_size(fat_at_eps9: float, eps: float, delta: float, c: float = 1.0) -> float:
    """Bartlett–Long training-set size (Section 2.3).

    .. math::
        n_0(ε, δ) = O\\!\\left(\\frac{1}{ε^2}
            \\left\\{ fat_H(ε/9) \\log^2 \\frac{1}{ε} + \\log \\frac{1}{δ}
            \\right\\}\\right)

    Parameters
    ----------
    fat_at_eps9:
        The γ-fat-shattering dimension evaluated at ``γ = ε/9``.
    c:
        The hidden constant (1 by default).
    """
    _check_eps_delta(eps, delta)
    if fat_at_eps9 < 0:
        raise ValueError(f"fat-shattering dimension must be >= 0, got {fat_at_eps9}")
    log_inv_eps = math.log(1.0 / eps)
    return c / eps**2 * (fat_at_eps9 * log_inv_eps**2 + math.log(1.0 / delta))


def fat_shattering_upper_bound(vc_dim: int, gamma: float, c: float = 1.0) -> float:
    """Lemma 2.6: ``fat_S(γ) = Õ(1/γ^(λ+1))`` for ``λ = VC-dim(Σ)``.

    Expanded form (from summing Lemma 2.5 over the ``1/γ`` witness bands):
    ``(1/γ) * ((1/γ) log(1/γ))^λ``.
    """
    if vc_dim < 1:
        raise ValueError(f"vc_dim must be >= 1, got {vc_dim}")
    if not 0.0 < gamma < 1.0:
        raise ValueError(f"gamma must be in (0, 1), got {gamma}")
    inv = 1.0 / gamma
    log_term = max(math.log(inv), 1.0)
    return c * inv * (inv * log_term) ** vc_dim


def theorem21_training_bound(vc_dim: int, eps: float, delta: float, c: float = 1.0) -> float:
    """Theorem 2.1: training-set size ``Õ(1/ε^(λ+3))``.

    Composed from Lemma 2.6 at ``γ = ε/9`` plugged into Bartlett–Long.
    """
    _check_eps_delta(eps, delta)
    fat = fat_shattering_upper_bound(vc_dim, eps / 9.0, c=c)
    return bartlett_long_sample_size(fat, eps, delta, c=c)


def orthogonal_range_training_bound(dim: int, eps: float, delta: float) -> float:
    """Orthogonal ranges: ``λ = 2d`` ⟹ training size ``Õ(1/ε^(2d+3))``."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    return theorem21_training_bound(2 * dim, eps, delta)


def halfspace_training_bound(dim: int, eps: float, delta: float) -> float:
    """Halfspaces: ``λ = d+1`` ⟹ training size ``Õ(1/ε^(d+4))``."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    return theorem21_training_bound(dim + 1, eps, delta)


def ball_training_bound(dim: int, eps: float, delta: float) -> float:
    """Balls: ``λ <= d+2`` ⟹ training size ``Õ(1/ε^(d+5))``."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    return theorem21_training_bound(dim + 2, eps, delta)
