"""γ-fat-shattering of selectivity function classes (Section 2.3).

A set of ranges ``T`` is γ-shattered by the selectivity class
``S = {s_D : D in 𝒟}`` if there is a witness ``σ: T -> [0,1]`` such that for
every ``E ⊆ T`` some distribution ``D_E`` satisfies

.. math::
    s_{D_E}(R) \\ge σ(R) + γ  (R \\in E), \\qquad
    s_{D_E}(R) \\le σ(R) - γ  (R \\in T \\setminus E).

When 𝒟 is the family of discrete distributions over a finite atom pool, the
existence of *both* the witness and all ``2^|T|`` distributions is a single
linear feasibility problem — implemented in :func:`fat_shatters`.  The
delta-distribution construction of Lemma 2.7 (dual shattering ⟹ γ-fat
shattering for every γ < 1/2) is :func:`delta_distribution_fat_shatters`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.learning.range_space import dual_shatters

__all__ = ["fat_shatters", "delta_distribution_fat_shatters"]


def _membership_matrix(ranges: Sequence, atoms: np.ndarray) -> np.ndarray:
    """``M[t, j] = 1`` iff atom ``j`` lies in range ``t``."""
    return np.stack([np.asarray(r.contains(atoms), dtype=float) for r in ranges], axis=0)


def fat_shatters(ranges: Sequence, atoms: np.ndarray, gamma: float) -> bool:
    """Exact γ-shattering test over discrete distributions on ``atoms``.

    Builds one LP whose variables are the shared witness values
    ``σ(R_1..R_t)`` plus a probability vector ``w^E`` over the atoms for
    each of the ``2^t`` subsets ``E``, with the γ-shattering inequalities as
    constraints.  Feasibility of the LP is exactly γ-shatterability of the
    range set by the class of discrete distributions supported on ``atoms``.

    Cost grows as ``2^t``; intended for the small ``t`` used to verify
    Lemma 2.6/2.7 empirically (``t <= 6``).
    """
    t = len(ranges)
    if t == 0:
        return True
    if t > 12:
        raise ValueError(f"refusing 2^{t} subsets; use t <= 12")
    if not 0.0 < gamma < 0.5:
        raise ValueError(f"gamma must be in (0, 1/2), got {gamma}")
    atoms_arr = np.asarray(atoms, dtype=float)
    m = atoms_arr.shape[0]
    membership = _membership_matrix(ranges, atoms_arr)  # (t, m)

    n_subsets = 1 << t
    # Variable layout: [sigma (t) | w^0 (m) | w^1 (m) | ... | w^{2^t-1} (m)]
    n_vars = t + n_subsets * m
    a_ub_rows: list[np.ndarray] = []
    b_ub: list[float] = []
    a_eq_rows: list[np.ndarray] = []
    b_eq: list[float] = []
    for subset_bits in range(n_subsets):
        w_off = t + subset_bits * m
        # Distribution constraint: sum(w^E) = 1, w >= 0 via bounds.
        eq_row = np.zeros(n_vars)
        eq_row[w_off : w_off + m] = 1.0
        a_eq_rows.append(eq_row)
        b_eq.append(1.0)
        for r_idx in range(t):
            row = np.zeros(n_vars)
            row[w_off : w_off + m] = membership[r_idx]
            if (subset_bits >> r_idx) & 1:
                # s(R) >= sigma + gamma  ->  sigma - s(R) <= -gamma
                row = -row
                row[r_idx] = 1.0
                a_ub_rows.append(row)
                b_ub.append(-gamma)
            else:
                # s(R) <= sigma - gamma  ->  s(R) - sigma <= -gamma
                row[r_idx] = -1.0
                a_ub_rows.append(row)
                b_ub.append(-gamma)

    bounds = [(0.0, 1.0)] * t + [(0.0, 1.0)] * (n_subsets * m)
    result = linprog(
        c=np.zeros(n_vars),
        A_ub=np.array(a_ub_rows),
        b_ub=np.array(b_ub),
        A_eq=np.array(a_eq_rows),
        b_eq=np.array(b_eq),
        bounds=bounds,
        method="highs",
    )
    return bool(result.status == 0)


def delta_distribution_fat_shatters(
    ranges: Sequence, candidate_points: np.ndarray, gamma: float = 0.49
) -> bool:
    """Lemma 2.7's construction: dual shattering ⟹ γ-fat shattering.

    If for every subset ``E`` of the ranges there is a point ``x_E``
    contained in exactly the ranges of ``E`` (dual shattering, searched over
    ``candidate_points``), then with witness ``σ ≡ 1/2`` the delta
    distributions at the ``x_E`` γ-shatter the ranges for every
    ``γ < 1/2``: ``s_{δ_{x_E}}(R)`` is 1 on ``E`` and 0 off it.
    """
    if not 0.0 < gamma < 0.5:
        raise ValueError(f"gamma must be in (0, 1/2), got {gamma}")
    witnesses = dual_shatters(ranges, candidate_points)
    return len(witnesses) == (1 << len(ranges))
