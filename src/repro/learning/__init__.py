"""Learning-theoretic core of the paper (Section 2).

This package operationalises the paper's theory:

* :mod:`~repro.learning.range_space` — range spaces ``(X, R)`` with exact
  *realizability oracles* per query family (can this dichotomy of a point
  set be cut out by some range?), shattering tests, and dual range spaces.
* :mod:`~repro.learning.vc` — VC-dimension certification: lower bounds via
  explicit shattered sets, upper-bound spot checks via randomized search.
* :mod:`~repro.learning.fat_shattering` — γ-fat-shattering of selectivity
  function classes: the LP-based shattering test behind Lemma 2.6, and the
  delta-distribution construction of Lemma 2.7.
* :mod:`~repro.learning.bounds` — sample-complexity bounds: Bartlett–Long's
  ``n0(ε, δ)`` and the Theorem 2.1 instantiations per query class.
* :mod:`~repro.learning.agnostic` — the agnostic-learning framework: loss
  functions and empirical/expected risk, matching Section 2.1.
"""

from repro.learning.range_space import (
    RangeSpace,
    ball_space,
    box_space,
    convex_polygon_space,
    dual_shatters,
    halfspace_space,
)
from repro.learning.vc import (
    estimate_vc_dimension,
    shatters,
    vc_dimension_lower_bound,
)
from repro.learning.fat_shattering import (
    delta_distribution_fat_shatters,
    fat_shatters,
)
from repro.learning.bounds import (
    ball_training_bound,
    bartlett_long_sample_size,
    fat_shattering_upper_bound,
    halfspace_training_bound,
    orthogonal_range_training_bound,
    theorem21_training_bound,
)
from repro.learning.agnostic import (
    empirical_risk,
    l1_loss,
    l2_loss,
    linf_loss,
)
from repro.learning.crossing import (
    crossing_counts,
    expected_crossings,
    greedy_low_crossing_order,
    max_crossing_number,
)

__all__ = [
    "RangeSpace",
    "box_space",
    "halfspace_space",
    "ball_space",
    "convex_polygon_space",
    "dual_shatters",
    "shatters",
    "vc_dimension_lower_bound",
    "estimate_vc_dimension",
    "fat_shatters",
    "delta_distribution_fat_shatters",
    "bartlett_long_sample_size",
    "fat_shattering_upper_bound",
    "theorem21_training_bound",
    "orthogonal_range_training_bound",
    "halfspace_training_bound",
    "ball_training_bound",
    "empirical_risk",
    "l1_loss",
    "l2_loss",
    "linf_loss",
    "crossing_counts",
    "max_crossing_number",
    "expected_crossings",
    "greedy_low_crossing_order",
]
