"""Range spaces and realizability oracles.

A range space ``Σ = (X, R)`` (Section 2) is represented here by a
*realizability oracle*: given a finite point set ``P`` and a target subset
``E ⊆ P``, decide whether some range ``R ∈ R`` realises exactly that
dichotomy (``P ∩ R = E``).  Shattering and VC-dimension computations reduce
to the oracle, so each query family only needs its own exact decision
procedure:

* **boxes** — ``E`` is realizable iff the bounding box of ``E`` contains no
  point of ``P \\ E`` (the classic argument behind VC-dim = 2d, Figure 2),
* **halfspaces** — realizable iff ``E`` and ``P \\ E`` are strictly linearly
  separable; decided by a feasibility LP,
* **balls** — realizable iff the points are separable after lifting to the
  paraboloid (``x -> (x, ||x||^2)``), a halfspace LP in dimension ``d+1``,
* **convex polygons** (unbounded vertex count, VC-dim = ∞) — realizable iff
  no point of ``P \\ E`` lies in the convex hull of ``E``; decided by an LP
  per excluded point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np
from scipy.optimize import linprog

__all__ = [
    "RangeSpace",
    "box_space",
    "halfspace_space",
    "ball_space",
    "convex_polygon_space",
    "dual_shatters",
]


def _subset_mask(n: int, subset: Iterable[int]) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    for i in subset:
        if i < 0 or i >= n:
            raise IndexError(f"subset index {i} out of range for {n} points")
        mask[i] = True
    return mask


@dataclass(frozen=True)
class RangeSpace:
    """A range space described by name, dimension and realizability oracle.

    Attributes
    ----------
    name:
        Human-readable family name (e.g. ``"boxes"``).
    dim:
        Ambient dimension of the ground set ``X ⊆ R^dim``.
    realizes:
        ``realizes(points, mask) -> bool`` deciding whether some range cuts
        out exactly ``points[mask]`` from ``points``.
    vc_dimension:
        Known VC dimension of the family (``None`` for unknown,
        ``float('inf')`` for unbounded).
    """

    name: str
    dim: int
    realizes: Callable[[np.ndarray, np.ndarray], bool] = field(repr=False)
    vc_dimension: float | None = None

    def realizes_subset(self, points: np.ndarray, subset: Iterable[int]) -> bool:
        """Convenience wrapper taking index iterables instead of masks."""
        pts = np.asarray(points, dtype=float)
        return self.realizes(pts, _subset_mask(pts.shape[0], subset))


def _box_realizes(points: np.ndarray, mask: np.ndarray) -> bool:
    if not mask.any():
        return True  # the empty set is cut out by a far-away box
    if mask.all():
        return True
    inside = points[mask]
    outside = points[~mask]
    lows = inside.min(axis=0)
    highs = inside.max(axis=0)
    # The minimal box containing E is [lows, highs]; E is realizable iff it
    # excludes every other point.  (Ranges are closed, so boundary contact
    # counts as containment.)
    contained = np.all((outside >= lows - 1e-12) & (outside <= highs + 1e-12), axis=1)
    return not bool(contained.any())


def _strictly_separable(
    positive: np.ndarray, negative: np.ndarray, force_last_negative: bool = False
) -> bool:
    """Strict linear separability via a hard-margin feasibility LP.

    Finds ``(a, b)`` with ``a.x - b >= 1`` on positives and ``<= -1`` on
    negatives; such a pair exists iff the sets are strictly separable
    (scaling any strict separator achieves margin 1).

    ``force_last_negative`` restricts the separator's last coefficient to be
    strictly negative, which is what genuine *balls* (rather than balls or
    their complements) need after the paraboloid lifting: the inside of a
    ball maps to the region *below* a hyperplane in lifted space.
    """
    dim = positive.shape[1] if positive.size else negative.shape[1]
    n_pos, n_neg = positive.shape[0], negative.shape[0]
    if n_pos == 0 or n_neg == 0:
        return True
    # Variables: a (dim), b (1).  linprog uses A_ub x <= b_ub.
    #   -(a.x - b) <= -1  for positives
    #    (a.x - b) <= -1  for negatives
    a_ub = np.zeros((n_pos + n_neg, dim + 1))
    a_ub[:n_pos, :dim] = -positive
    a_ub[:n_pos, dim] = 1.0
    a_ub[n_pos:, :dim] = negative
    a_ub[n_pos:, dim] = -1.0
    b_ub = -np.ones(n_pos + n_neg)
    bounds: list[tuple[float, float]] = [(-1e6, 1e6)] * (dim + 1)
    if force_last_negative:
        bounds[dim - 1] = (-1e6, -1e-9)
    result = linprog(
        c=np.zeros(dim + 1), A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
    )
    return bool(result.status == 0)


def _halfspace_realizes(points: np.ndarray, mask: np.ndarray) -> bool:
    return _strictly_separable(points[mask], points[~mask])


def _ball_realizes(points: np.ndarray, mask: np.ndarray) -> bool:
    # ||x - c||^2 <= r^2  <=>  2 c.x - ||x||^2 >= ||c||^2 - r^2: the inside
    # of a ball is the set of lifted points (x, ||x||^2) below a hyperplane
    # whose ||x||^2-coefficient is negative.  Without the sign restriction
    # the oracle would also accept *complements* of balls.
    if not mask.any():
        return True  # a far-away tiny ball excludes everything
    lifted = np.concatenate([points, np.sum(points**2, axis=1, keepdims=True)], axis=1)
    return _strictly_separable(lifted[mask], lifted[~mask], force_last_negative=True)


def _in_convex_hull(point: np.ndarray, hull_points: np.ndarray) -> bool:
    """LP test: is ``point`` a convex combination of ``hull_points``?"""
    n = hull_points.shape[0]
    if n == 0:
        return False
    a_eq = np.concatenate([hull_points.T, np.ones((1, n))], axis=0)
    b_eq = np.concatenate([point, [1.0]])
    result = linprog(
        c=np.zeros(n), A_eq=a_eq, b_eq=b_eq, bounds=[(0, None)] * n, method="highs"
    )
    return bool(result.status == 0)


def _convex_polygon_realizes(points: np.ndarray, mask: np.ndarray) -> bool:
    if not mask.any():
        return True
    inside = points[mask]
    outside = points[~mask]
    return not any(_in_convex_hull(p, inside) for p in outside)


def box_space(dim: int) -> RangeSpace:
    """Orthogonal ranges in ``R^dim``; VC-dim = 2*dim (Section 2.2)."""
    return RangeSpace("boxes", dim, _box_realizes, vc_dimension=2 * dim)


def halfspace_space(dim: int) -> RangeSpace:
    """Halfspaces in ``R^dim``; VC-dim = dim + 1 (Section 2.2)."""
    return RangeSpace("halfspaces", dim, _halfspace_realizes, vc_dimension=dim + 1)


def ball_space(dim: int) -> RangeSpace:
    """Euclidean balls in ``R^dim``.

    The exact VC dimension of closed balls is ``dim + 1``; the paper quotes
    the (weaker) classical bound ``<= dim + 2``, which is what its Theorem
    2.1 instantiation in :func:`repro.learning.bounds.ball_training_bound`
    uses.
    """
    return RangeSpace("balls", dim, _ball_realizes, vc_dimension=dim + 1)


def convex_polygon_space(dim: int = 2) -> RangeSpace:
    """Convex polygons with arbitrarily many vertices; VC-dim = ∞.

    The family for which Theorem 2.1's converse applies: points in convex
    position (e.g. on a circle) of any size are shattered.
    """
    return RangeSpace(
        "convex-polygons", dim, _convex_polygon_realizes, vc_dimension=float("inf")
    )


def dual_shatters(ranges: Sequence, candidate_points: np.ndarray) -> dict[frozenset, np.ndarray]:
    """Dual-shattering witnesses over a finite candidate point pool.

    For the dual range space ``Σ* = (R, {R_x})`` used in Lemmas 2.4/2.7, a
    set of ranges ``T`` is shattered by the duals iff for every subset
    ``E ⊆ T`` there is a point contained in exactly the ranges of ``E``.
    This function searches ``candidate_points`` for such witnesses and
    returns a map ``frozenset(subset indices) -> witness point`` for every
    subset that has one.  ``T`` is dual-shattered (over the pool) iff the
    map has ``2^len(ranges)`` entries.
    """
    pts = np.asarray(candidate_points, dtype=float)
    membership = np.stack([np.asarray(r.contains(pts)) for r in ranges], axis=1)
    witnesses: dict[frozenset, np.ndarray] = {}
    for row, point in zip(membership, pts):
        key = frozenset(int(i) for i in np.nonzero(row)[0])
        if key not in witnesses:
            witnesses[key] = point
    return witnesses
