"""The agnostic-learning framework of Section 2.1.

Training samples are pairs ``z = (R, s) ∈ R × [0,1]`` drawn from an
arbitrary distribution ``Q`` — the labels need *not* come from any data
distribution (the "Remark" after Theorem 2.1).  A hypothesis ``H`` maps
ranges to ``[0, 1]``; its quality is the expected loss ``er_Q(H)``.  Here we
provide the loss functions the paper considers (squared / L1 / L-infinity)
and empirical-risk evaluation against a finite sample.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["l2_loss", "l1_loss", "linf_loss", "empirical_risk"]


def _validate(predictions, labels) -> tuple[np.ndarray, np.ndarray]:
    preds = np.asarray(predictions, dtype=float)
    labs = np.asarray(labels, dtype=float)
    if preds.shape != labs.shape:
        raise ValueError(f"shape mismatch: predictions {preds.shape} vs labels {labs.shape}")
    if preds.size == 0:
        raise ValueError("empty sample")
    return preds, labs


def l2_loss(predictions, labels) -> float:
    """Mean squared loss ``(H(y) - w)^2`` averaged over the sample (Eq. 1)."""
    preds, labs = _validate(predictions, labels)
    return float(np.mean((preds - labs) ** 2))


def l1_loss(predictions, labels) -> float:
    """Mean absolute loss (the L1 variant noted after Theorem 2.1)."""
    preds, labs = _validate(predictions, labels)
    return float(np.mean(np.abs(preds - labs)))


def linf_loss(predictions, labels) -> float:
    """Worst-case absolute loss (the L∞ variant, used in Section 4.6)."""
    preds, labs = _validate(predictions, labels)
    return float(np.max(np.abs(preds - labs)))


def empirical_risk(
    hypothesis: Callable[[object], float],
    sample: Sequence[tuple[object, float]],
    loss: Callable[[np.ndarray, np.ndarray], float] = l2_loss,
) -> float:
    """Empirical risk of ``hypothesis`` on ``sample = [(range, label), ...]``.

    This is the quantity the learning procedure of Section 3 minimises over
    the hypothesis family (Eq. 8 for the L2 loss).
    """
    if not sample:
        raise ValueError("empty sample")
    preds = np.array([hypothesis(r) for r, _ in sample], dtype=float)
    labels = np.array([s for _, s in sample], dtype=float)
    return loss(preds, labels)
