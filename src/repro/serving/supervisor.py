"""The supervisor: pre-fork pool with health-checked restarts.

One process owns the listening socket and the worker table; N forked
workers each run :func:`repro.serving.worker.worker_main` and accept
from the shared socket, so the kernel — not a userspace proxy — spreads
connections, and a crashed worker never strands the connections it had
not yet accepted.

Supervision loop, once per ~50 ms:

* drain each worker's heartbeat pipe (liveness + health + queue depth);
* a dead process (crash, OOM-kill, chaos SIGKILL) or a silent one
  (heartbeat older than ``heartbeat_timeout_s`` — wedged, so it is
  SIGKILLed first) is scheduled for restart with exponential backoff;
* restarts flow through a per-slot
  :class:`~repro.robustness.CircuitBreaker`: ``restart_storm_threshold``
  consecutive short-lived workers open the breaker and restarting pauses
  for ``restart_storm_cooldown_s`` before a single probe respawn —  a
  poisoned snapshot must not fork-bomb the box.  A worker that stays up
  ``stable_after_s`` closes its breaker and resets the backoff.

Workers restart *warm*: their service factory restores from the shared
:class:`~repro.persistence.SnapshotStore` (33-275× cheaper than a cold
fit), so a respawn is back in service within milliseconds of the fork.

Graceful drain (``stop(drain=True)``, also wired to SIGTERM/SIGINT by
:meth:`Supervisor.run_forever`): stop restarting, SIGTERM every worker
(each stops accepting, flushes in-flight requests, snapshots), reap with
a ``drain_timeout_s`` budget, SIGKILL stragglers, close the socket.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.observability import (
    FleetAggregator,
    MetricsRegistry,
    default_registry,
    get_logger,
    log_event,
)
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.errors import WorkerSupervisionError
from repro.serving.config import ServingConfig
from repro.serving.worker import worker_main

__all__ = ["Supervisor", "WorkerSlot"]

_log = get_logger("serving.supervisor")


def _worker_entry(worker_id, service_factory, config, sock, conn, incarnation):
    # Child-side shim: a normal return exits 0 (clean drain); an escaping
    # exception exits 1 and the supervisor schedules a restart.
    worker_main(worker_id, service_factory, config, sock, conn, incarnation)


class WorkerSlot:
    """Supervision state for one worker index (survives respawns)."""

    def __init__(self, index: int, config: ServingConfig, clock=time.monotonic):
        self.index = index
        self._config = config
        self._clock = clock
        self.process = None
        self.conn = None
        self.breaker = CircuitBreaker(
            failure_threshold=config.restart_storm_threshold,
            cooldown_seconds=config.restart_storm_cooldown_s,
            clock=clock,
        )
        self.restarts = 0  # respawns after the initial start
        self.spawns = 0  # incarnation counter: every fork of this slot
        self.started_at: float | None = None
        self.last_heartbeat: float | None = None
        self.last_payload: dict | None = None
        self.next_restart_at = 0.0
        self.stable_marked = False
        self.last_exit: int | str | None = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def backoff(self) -> float:
        """Exponential restart delay from consecutive-failure count."""
        failures = max(1, self.breaker.consecutive_failures)
        delay = self._config.restart_backoff_s * (2.0 ** (failures - 1))
        return min(delay, self._config.restart_backoff_max_s)

    def to_dict(self) -> dict:
        now = self._clock()
        return {
            "index": self.index,
            "alive": self.alive,
            "pid": self.process.pid if self.process is not None else None,
            "restarts": self.restarts,
            "incarnation": self.spawns,
            "next_restart_in": (
                round(max(0.0, self.next_restart_at - now), 3)
                if not self.alive and self.next_restart_at > now
                else None
            ),
            "uptime": (
                round(now - self.started_at, 3)
                if self.alive and self.started_at is not None
                else None
            ),
            "heartbeat_age": (
                round(now - self.last_heartbeat, 3)
                if self.last_heartbeat is not None
                else None
            ),
            "breaker": self.breaker.to_dict(),
            "last_exit": self.last_exit,
            "last_payload": self.last_payload,
        }


class Supervisor:
    """Own the socket, own the workers, keep the pool serving.

    Parameters
    ----------
    service_factory:
        Zero-argument callable building each worker's
        :class:`~repro.server.EstimatorService` *after* the fork — point
        it at a shared ``snapshot_dir`` so every (re)spawn warm-starts.
    config:
        :class:`~repro.serving.ServingConfig` envelope.
    host / port:
        Listen address; ``port=0`` picks a free port (read
        :attr:`address` after :meth:`start`).
    """

    def __init__(
        self,
        service_factory,
        config: ServingConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ):
        self.config = config if config is not None else ServingConfig()
        self.host = host
        self.port = port
        self._service_factory = service_factory
        self._clock = clock
        self._ctx = multiprocessing.get_context("fork")
        self._sock: socket.socket | None = None
        self._slots = [
            WorkerSlot(i, self.config, clock) for i in range(self.config.workers)
        ]
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False
        registry = registry if registry is not None else default_registry()
        self._registry = registry
        self.aggregator = FleetAggregator()
        self._ops_server: ThreadingHTTPServer | None = None
        self._ops_thread: threading.Thread | None = None
        self._restarts_total = registry.counter(
            "repro_worker_restarts_total",
            "Worker respawns by slot and cause",
            labels=("worker", "cause"),
        )
        self._alive_gauge = registry.gauge(
            "repro_workers_alive", "Worker processes currently alive"
        )
        self._storm_gauge = registry.gauge(
            "repro_restart_storm_open",
            "Worker slots whose restart-storm breaker is open",
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._sock is None:
            raise WorkerSupervisionError("supervisor is not started")
        name = self._sock.getsockname()
        return name[0], name[1]

    @property
    def ops_address(self) -> tuple[str, int]:
        if self._ops_server is None:
            raise WorkerSupervisionError("ops endpoint is not running")
        name = self._ops_server.socket.getsockname()
        return name[0], name[1]

    def start(self) -> tuple[str, int]:
        """Bind, listen, fork the pool, start the monitor; returns the
        bound ``(host, port)``."""
        if self._started:
            raise WorkerSupervisionError("supervisor already started")
        self._started = True
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(128)
        # Non-blocking listener: several workers' selectors may wake for
        # one connection; the losers' accept() must not block (stdlib
        # socketserver swallows the resulting BlockingIOError).
        sock.setblocking(False)
        self._sock = sock
        for slot in self._slots:
            self._spawn(slot)
        if self.config.ops_port is not None:
            self._start_ops_server()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="serving-monitor", daemon=True
        )
        self._monitor.start()
        log_event(
            _log,
            "pool_started",
            workers=self.config.workers,
            address=f"{self.address[0]}:{self.address[1]}",
        )
        return self.address

    def stop(self, drain: bool = True) -> dict:
        """Stop the pool; returns ``{"drained": [...], "killed": [...]}``.

        ``drain=True`` SIGTERMs workers and waits ``drain_timeout_s`` for
        them to flush in-flight requests and exit 0; stragglers (and the
        whole pool under ``drain=False``) are SIGKILLed.
        """
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        drained: list[int] = []
        killed: list[int] = []
        if self._ops_server is not None:
            self._ops_server.shutdown()
            self._ops_server.server_close()
            self._ops_server = None
            self._ops_thread = None
        live = [slot for slot in self._slots if slot.process is not None]
        for slot in live:
            if slot.process.is_alive():
                if drain:
                    slot.process.terminate()  # SIGTERM → graceful drain
                else:
                    slot.process.kill()
        deadline = self._clock() + (self.config.drain_timeout_s if drain else 1.0)
        for slot in live:
            slot.process.join(timeout=max(0.0, deadline - self._clock()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=5.0)
                killed.append(slot.index)
            elif drain and slot.process.exitcode == 0:
                drained.append(slot.index)
            else:
                killed.append(slot.index)
            slot.last_exit = slot.process.exitcode
            # The worker's final "stopped" heartbeat (with its last metric
            # snapshot) lands after the monitor thread already exited —
            # drain once more so the fleet totals include requests served
            # during the drain window.
            self._drain_heartbeats(slot, self._clock())
            self._close_conn(slot)
            slot.process = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._alive_gauge.set(0.0)
        log_event(_log, "pool_stopped", drained=drained, killed=killed)
        return {"drained": drained, "killed": killed}

    def run_forever(self) -> dict:
        """Install SIGTERM/SIGINT handlers and supervise until signalled.

        The blocking loop for ``repro serve --workers N`` under systemd
        or a container runtime: SIGTERM triggers a graceful pool drain
        and returns the drain report.
        """
        import signal as _signal

        stop = threading.Event()

        def _on_signal(signum, frame):
            stop.set()

        _signal.signal(_signal.SIGTERM, _on_signal)
        _signal.signal(_signal.SIGINT, _on_signal)
        if not self._started:
            self.start()
        stop.wait()
        return self.stop(drain=True)

    # -- monitoring --------------------------------------------------------

    def status(self) -> dict:
        alive = sum(1 for slot in self._slots if slot.alive)
        return {
            "address": self.address if self._sock is not None else None,
            "workers": len(self._slots),
            "alive": alive,
            "config": self.config.to_dict(),
            "slots": [slot.to_dict() for slot in self._slots],
        }

    def _monitor_loop(self) -> None:
        while not self._stop.wait(0.05):
            now = self._clock()
            open_breakers = 0
            for slot in self._slots:
                self._drain_heartbeats(slot, now)
                if slot.process is not None:
                    if not slot.process.is_alive():
                        self._on_death(slot, now, cause="crash")
                    elif (
                        slot.last_heartbeat is not None
                        and now - slot.last_heartbeat
                        > self.config.heartbeat_timeout_s
                    ):
                        # Alive but silent: wedged.  Kill, then supervise
                        # the corpse like any other crash.
                        log_event(
                            _log,
                            "worker_wedged",
                            level=logging.WARNING,
                            worker=slot.index,
                            heartbeat_age=round(now - slot.last_heartbeat, 3),
                        )
                        slot.process.kill()
                        slot.process.join(timeout=5.0)
                        self._on_death(slot, now, cause="wedged")
                    elif (
                        not slot.stable_marked
                        and slot.started_at is not None
                        and now - slot.started_at >= self.config.stable_after_s
                    ):
                        slot.breaker.record_success()
                        slot.stable_marked = True
                elif now >= slot.next_restart_at and slot.breaker.allow():
                    self._spawn(slot)
                    slot.restarts += 1
                if slot.breaker.state == "open":
                    open_breakers += 1
            self._storm_gauge.set(float(open_breakers))
            self._alive_gauge.set(
                float(sum(1 for slot in self._slots if slot.alive))
            )

    def _drain_heartbeats(self, slot: WorkerSlot, now: float) -> None:
        conn = slot.conn
        if conn is None:
            return
        try:
            while conn.poll(0):
                payload = conn.recv()
                snapshot = payload.pop("metrics", None)
                if snapshot is not None:
                    self.aggregator.observe(
                        slot.index,
                        payload.get("incarnation", slot.spawns),
                        snapshot,
                    )
                slot.last_payload = payload
                slot.last_heartbeat = now
        except (EOFError, OSError):
            pass  # sender side closed; process liveness is tracked separately

    def _on_death(self, slot: WorkerSlot, now: float, cause: str) -> None:
        slot.last_exit = slot.process.exitcode if cause == "crash" else cause
        self._close_conn(slot)
        slot.process = None
        slot.breaker.record_failure()
        delay = slot.backoff()
        slot.next_restart_at = now + delay
        self._restarts_total.inc(worker=str(slot.index), cause=cause)
        log_event(
            _log,
            "worker_died",
            level=logging.WARNING,
            worker=slot.index,
            cause=cause,
            exitcode=slot.last_exit,
            consecutive_failures=slot.breaker.consecutive_failures,
            restart_in=round(delay, 3),
            storm_open=slot.breaker.state == "open",
        )

    def _spawn(self, slot: WorkerSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        slot.spawns += 1
        process = self._ctx.Process(
            target=_worker_entry,
            args=(
                slot.index,
                self._service_factory,
                self.config,
                self._sock,
                child_conn,
                slot.spawns,
            ),
            name=f"repro-worker-{slot.index}",
        )
        process.start()
        child_conn.close()
        now = self._clock()
        slot.process = process
        slot.conn = parent_conn
        slot.started_at = now
        slot.last_heartbeat = now  # grace period until the first beat
        slot.stable_marked = False
        log_event(_log, "worker_spawned", worker=slot.index, pid=process.pid)

    @staticmethod
    def _close_conn(slot: WorkerSlot) -> None:
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass
            slot.conn = None

    # -- ops endpoint ------------------------------------------------------

    def fleet_health(self) -> dict:
        """Fleet-level health: ok only when every slot is alive and no
        worker reports degraded; still HTTP 200 either way (degraded
        means "look", not "stop routing")."""
        alive = sum(1 for slot in self._slots if slot.alive)
        reasons: list[str] = []
        if alive < len(self._slots):
            reasons.append("workers_down")
        workers = {}
        for slot in self._slots:
            payload = slot.last_payload or {}
            health = payload.get("health") or {}
            workers[str(slot.index)] = {
                "alive": slot.alive,
                "status": payload.get("status"),
                "health": health,
            }
            if slot.alive and health.get("status") == "degraded":
                reasons.append(f"worker_{slot.index}_degraded")
        if any(slot.breaker.state == "open" for slot in self._slots):
            reasons.append("restart_storm")
        return {
            "status": "ok" if not reasons else "degraded",
            "reasons": reasons,
            "alive": alive,
            "workers": len(self._slots),
            "per_worker": workers,
        }

    def render_metrics(self) -> str:
        """Aggregated fleet exposition plus the supervisor's own metrics
        (restarts, alive gauge, storm breaker) for non-colliding names."""
        return self.aggregator.render(extra=self._registry)

    def _start_ops_server(self) -> None:
        supervisor = self

        class _OpsHandler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - stdlib handler contract
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path == "/metrics":
                    body = supervisor.render_metrics().encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/workers":
                    body = json.dumps(
                        {
                            "slots": [slot.to_dict() for slot in supervisor._slots],
                            "aggregator": supervisor.aggregator.workers(),
                        },
                        sort_keys=True,
                        default=str,
                    ).encode("utf-8")
                    ctype = "application/json"
                elif path == "/health":
                    body = json.dumps(
                        supervisor.fleet_health(), sort_keys=True, default=str
                    ).encode("utf-8")
                    ctype = "application/json"
                else:
                    body = json.dumps(
                        {"error": "not found", "endpoints": [
                            "/metrics", "/workers", "/health"
                        ]}
                    ).encode("utf-8")
                    self.send_response(404)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # quiet: ops scrapes
                pass

        server = ThreadingHTTPServer(
            (self.host, int(self.config.ops_port)), _OpsHandler
        )
        server.daemon_threads = True
        self._ops_server = server
        self._ops_thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serving-ops",
            daemon=True,
        )
        self._ops_thread.start()
        log_event(
            _log,
            "ops_started",
            address=f"{self.ops_address[0]}:{self.ops_address[1]}",
        )
