"""Supervised multi-worker serving for the selectivity estimator.

The :mod:`repro.server` module gives one process one HTTP estimator;
this package scales and hardens it into a supervised pre-fork pool:

* :mod:`~repro.serving.config` — one frozen :class:`ServingConfig`
  carrying every pool/admission/coalescing/supervision knob;
* :mod:`~repro.serving.supervisor` — binds the listening socket, forks
  N workers over it, restarts crashed or wedged workers with exponential
  backoff behind a per-slot restart-storm circuit breaker, merges the
  workers' heartbeat metric snapshots into one fleet registry
  (:class:`~repro.observability.FleetAggregator`), and optionally serves
  an ops endpoint — aggregated ``/metrics``, ``/workers``, fleet
  ``/health`` (``ServingConfig.ops_port``);
* :mod:`~repro.serving.worker` — one worker process: warm-start from the
  shared :class:`~repro.persistence.SnapshotStore`, heartbeats, rolling
  generation reloads, SIGTERM graceful drain;
* :mod:`~repro.serving.admission` — bounded concurrency with a finite
  waiting room, deadline-aware queueing, 429 + ``Retry-After`` shedding;
* :mod:`~repro.serving.coalescer` — micro-batching of concurrent
  single-query requests into one ``predict_many`` per flush window;
* :mod:`~repro.serving.warmup` — pre-train a snapshot so pools boot
  warm; :mod:`~repro.serving.chaos` — SIGKILL-under-load scenario.

See ``docs/serving.md`` for the supervision tree and tuning guidance.
"""

from repro.serving.admission import AdmissionController
from repro.serving.coalescer import PredictCoalescer
from repro.serving.config import ServingConfig
from repro.serving.supervisor import Supervisor, WorkerSlot
from repro.serving.warmup import pretrain_snapshot, sample_query_payloads
from repro.serving.worker import GenerationReloader, drain_server, worker_main

__all__ = [
    "AdmissionController",
    "GenerationReloader",
    "PredictCoalescer",
    "ServingConfig",
    "Supervisor",
    "WorkerSlot",
    "drain_server",
    "pretrain_snapshot",
    "sample_query_payloads",
    "worker_main",
]
