"""Micro-batching coalescer: fold concurrent lookups into one kernel call.

``predict_many`` is ~11× cheaper per query than scalar ``predict``
(``BENCH_throughput.json``), but HTTP traffic from a query optimizer
arrives as many concurrent *single* queries.  The coalescer recovers the
batch win at the serving layer: concurrent ``/v1/estimate`` and
``/v1/predict`` requests that land within one flush window are folded
into a single ``estimate_many`` call (one cache pass, one vectorised
kernel), and each caller gets back exactly its own slice.

Leader/follower scheme, no dedicated flusher thread:

* the first request to arrive while no batch is forming becomes the
  *leader*: it opens a batch, sleeps out the flush window (cut short
  when the batch hits ``max_batch`` or the leader's own deadline is
  tighter), detaches the batch, and runs the one ``estimate_many``;
* later arrivals are *followers*: they append their queries and block on
  the batch's completion event, capped by their own deadline — a
  follower that times out raises
  :class:`~repro.robustness.errors.DeadlineExceededError` while the rest
  of the batch still completes.

Because the fold happens *in front of* the service's generation-keyed
prediction cache, cache semantics are untouched: every query still
counts exactly one hit or one miss, and a retrain invalidates as before.
"""

from __future__ import annotations

import threading
import time

from repro.observability import MetricsRegistry, default_registry
from repro.robustness.deadline import Deadline
from repro.robustness.errors import DeadlineExceededError

__all__ = ["PredictCoalescer"]


class _Batch:
    """One forming/flushing batch; immutable once detached."""

    __slots__ = ("queries", "done", "full", "results", "error", "kernel_seconds")

    def __init__(self):
        self.queries: list = []
        self.done = threading.Event()
        self.full = threading.Event()
        self.results: list | None = None
        self.error: BaseException | None = None
        self.kernel_seconds: float = 0.0


class PredictCoalescer:
    """Fold concurrent estimate/predict calls into ``estimate_many``.

    Parameters
    ----------
    estimate_many:
        The batched lookup, usually
        :meth:`repro.server.EstimatorService.estimate_many` (thread-safe,
        cache-fronted).  Any exception it raises is propagated to every
        caller in the batch.
    flush_ms:
        Window the leader holds a batch open for followers.  The knee of
        the latency/throughput trade-off: see ``docs/serving.md``.
    max_batch:
        Flush immediately once this many queries are pending.
    """

    def __init__(
        self,
        estimate_many,
        flush_ms: float = 2.0,
        max_batch: int = 512,
        worker: str = "0",
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ):
        if flush_ms < 0:
            raise ValueError(f"flush_ms must be >= 0, got {flush_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._estimate_many = estimate_many
        self.flush_s = float(flush_ms) / 1000.0
        self.max_batch = int(max_batch)
        self.worker = str(worker)
        self._clock = clock
        self._lock = threading.Lock()
        self._pending: _Batch | None = None
        registry = registry if registry is not None else default_registry()
        self._batches_total = registry.counter(
            "repro_coalesced_batches_total",
            "Coalesced predict_many flushes executed",
            labels=("worker",),
        )
        self._queries_total = registry.counter(
            "repro_coalesced_queries_total",
            "Queries answered through the coalescer",
            labels=("worker",),
        )
        self._batch_size = registry.histogram(
            "repro_coalesce_batch_size",
            "Queries per coalesced flush",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
            labels=("worker",),
        )

    def submit(
        self,
        query,
        deadline: Deadline | None = None,
        stages: dict | None = None,
    ) -> float:
        """Answer one query through the current flush window."""
        return self.submit_many([query], deadline=deadline, stages=stages)[0]

    def submit_many(
        self,
        queries,
        deadline: Deadline | None = None,
        stages: dict | None = None,
    ) -> list[float]:
        """Answer a list of queries; blocks until the owning batch flushes.

        Returns results in input order.  Raises
        :class:`DeadlineExceededError` if ``deadline`` expires before the
        flush completes, or whatever ``estimate_many`` raised for the
        whole batch (e.g. ``ModelUnavailableError`` before first fit).

        ``stages``, when given, receives this caller's latency breakdown:
        ``stages["kernel"]`` is the batch's one ``estimate_many`` call and
        ``stages["coalesce"]`` is the time this caller spent waiting on
        the flush window and its siblings (elapsed minus kernel) — the
        attribution the per-request tracing exposes as
        ``repro_request_stage_seconds``.
        """
        queries = list(queries)
        if not queries:
            return []
        deadline = deadline if deadline is not None else Deadline(None)
        start_ts = self._clock() if stages is not None else 0.0
        with self._lock:
            batch = self._pending
            leader = batch is None
            if leader:
                batch = self._pending = _Batch()
            start = len(batch.queries)
            batch.queries.extend(queries)
            if len(batch.queries) >= self.max_batch:
                batch.full.set()
        try:
            if leader:
                self._lead(batch, deadline)
            else:
                self._follow(batch, deadline)
        finally:
            if stages is not None:
                elapsed = self._clock() - start_ts
                stages["kernel"] = batch.kernel_seconds
                stages["coalesce"] = max(0.0, elapsed - batch.kernel_seconds)
        if batch.error is not None:
            raise batch.error
        return batch.results[start : start + len(queries)]

    # -- leader/follower ---------------------------------------------------

    def _lead(self, batch: _Batch, deadline: Deadline) -> None:
        # Hold the window open for followers — but never longer than the
        # leader's own remaining budget, and not at all if already full.
        wait = deadline.wait_budget(self.flush_s)
        if wait > 0 and not batch.full.is_set():
            batch.full.wait(wait)
        with self._lock:
            if self._pending is batch:
                self._pending = None
        kernel_start = self._clock()
        try:
            batch.results = [float(v) for v in self._estimate_many(batch.queries)]
        except BaseException as exc:  # propagate to every caller in the batch
            batch.error = exc
        finally:
            batch.kernel_seconds = self._clock() - kernel_start
            size = len(batch.queries)
            self._batches_total.inc(worker=self.worker)
            self._queries_total.inc(size, worker=self.worker)
            self._batch_size.observe(size, worker=self.worker)
            batch.done.set()

    def _follow(self, batch: _Batch, deadline: Deadline) -> None:
        remaining = deadline.remaining()
        if remaining is None:
            batch.done.wait()
        elif remaining <= 0.0 or not batch.done.wait(remaining):
            raise DeadlineExceededError(
                "deadline expired while waiting for a coalesced flush"
            )
