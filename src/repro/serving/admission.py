"""Admission control: bounded queue, load shedding, deadline budgets.

``ThreadingHTTPServer`` happily spawns one thread per connection, which
under overload means unbounded memory, unbounded latency, and a planner
waiting on answers it no longer wants.  The admission controller turns
that failure mode into explicit backpressure:

* at most ``max_concurrency`` requests execute at once;
* at most ``queue_depth`` more may *wait* for a slot — anything beyond
  the watermark is shed immediately with
  :class:`~repro.robustness.errors.OverloadedError` (HTTP 429 +
  ``Retry-After``), because a planner retries a cheap 429 far better
  than it absorbs an unbounded queue delay;
* a queued request whose :class:`~repro.robustness.Deadline` expires is
  failed with :class:`~repro.robustness.errors.DeadlineExceededError`
  (HTTP 504) *before* it ever occupies an execution slot.

Everything is a plain condition variable — no extra threads — and every
decision is metered (queue depth, inflight, sheds, deadline expiries)
with a per-worker label.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.observability import MetricsRegistry, default_registry
from repro.robustness.deadline import Deadline
from repro.robustness.errors import DeadlineExceededError, OverloadedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Semaphore-with-a-bounded-waiting-room for one worker process."""

    def __init__(
        self,
        max_concurrency: int = 8,
        queue_depth: int = 32,
        shed_retry_after_s: float = 1.0,
        worker: str = "0",
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ):
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_concurrency = int(max_concurrency)
        self.queue_depth = int(queue_depth)
        self.shed_retry_after_s = float(shed_retry_after_s)
        self.worker = str(worker)
        self._clock = clock
        self._cond = threading.Condition()
        self._executing = 0
        self._waiting = 0
        registry = registry if registry is not None else default_registry()
        self._inflight_gauge = registry.gauge(
            "repro_admission_inflight",
            "Requests currently executing in this worker",
            labels=("worker",),
        )
        self._queue_gauge = registry.gauge(
            "repro_admission_queue_depth",
            "Requests waiting for an execution slot in this worker",
            labels=("worker",),
        )
        self._shed_total = registry.counter(
            "repro_requests_shed_total",
            "Requests shed with 429 because the admission queue was full",
            labels=("worker",),
        )
        self._deadline_total = registry.counter(
            "repro_deadline_expired_total",
            "Requests failed with 504 by stage where the deadline expired",
            labels=("worker", "stage"),
        )

    # -- introspection ----------------------------------------------------

    @property
    def executing(self) -> int:
        with self._cond:
            return self._executing

    @property
    def waiting(self) -> int:
        with self._cond:
            return self._waiting

    def note_deadline_expired(self, stage: str) -> None:
        """Meter a deadline expiry detected outside the queue (coalescer
        flush wait, pre-dispatch check)."""
        self._deadline_total.inc(worker=self.worker, stage=stage)

    # -- the gate ----------------------------------------------------------

    @contextmanager
    def admit(self, deadline: Deadline | None = None):
        """Hold an execution slot for the ``with`` body.

        Raises :class:`OverloadedError` when the waiting room is full and
        :class:`DeadlineExceededError` when ``deadline`` expires first —
        in both cases *nothing* was executed.
        """
        deadline = deadline if deadline is not None else Deadline(None)
        self._acquire(deadline)
        try:
            yield self
        finally:
            self._release()

    def _acquire(self, deadline: Deadline) -> None:
        with self._cond:
            if deadline.expired():
                self._deadline_total.inc(worker=self.worker, stage="admission")
                raise DeadlineExceededError(
                    "request deadline expired before admission"
                )
            if self._executing < self.max_concurrency:
                self._executing += 1
                self._inflight_gauge.set(self._executing, worker=self.worker)
                return
            if self._waiting >= self.queue_depth:
                self._shed_total.inc(worker=self.worker)
                raise OverloadedError(
                    f"admission queue full ({self._waiting} waiting, "
                    f"{self._executing} executing); shedding",
                    retry_after=self.shed_retry_after_s,
                )
            self._waiting += 1
            self._queue_gauge.set(self._waiting, worker=self.worker)
            try:
                while self._executing >= self.max_concurrency:
                    remaining = deadline.remaining()
                    if remaining is not None and remaining <= 0.0:
                        self._deadline_total.inc(
                            worker=self.worker, stage="queued"
                        )
                        raise DeadlineExceededError(
                            "deadline expired while queued for admission"
                        )
                    # Bounded wait so an unlimited deadline still re-checks
                    # the slot count promptly after spurious wakeups.
                    self._cond.wait(0.5 if remaining is None else min(remaining, 0.5))
            finally:
                self._waiting -= 1
                self._queue_gauge.set(self._waiting, worker=self.worker)
            self._executing += 1
            self._inflight_gauge.set(self._executing, worker=self.worker)

    def _release(self) -> None:
        with self._cond:
            self._executing -= 1
            self._inflight_gauge.set(self._executing, worker=self.worker)
            self._cond.notify()

    def snapshot(self) -> dict:
        """JSON-ready state for heartbeats and ``/v1/status``."""
        with self._cond:
            return {
                "executing": self._executing,
                "waiting": self._waiting,
                "max_concurrency": self.max_concurrency,
                "queue_depth": self.queue_depth,
            }
