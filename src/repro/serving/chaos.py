"""Chaos scenario: SIGKILL random workers under live mixed traffic.

The acceptance gate for the serving stack, runnable as a library call
(the tests use a scaled-down profile) or a CLI (CI's ``serving-smoke``
job runs the full profile)::

    PYTHONPATH=src python -m repro.serving.chaos --workers 4 \\
        --duration 20 --kill-every 2 --clients 6

What it does:

1. pre-trains a snapshot (:mod:`repro.serving.warmup`) and boots a
   :class:`~repro.serving.Supervisor` pool over it;
2. hammers the pool from client threads with mixed ``/v1/estimate`` and
   ``/v1/predict`` traffic;
3. SIGKILLs one random live worker every ``kill_every`` seconds;
4. stops killing, verifies the supervisor restores the full complement
   (every worker respawned from the shared snapshot), probes the pool
   until it answers cleanly, then gracefully drains.

The pass condition mirrors the PR's acceptance criterion: **zero HTTP
5xx responses** — a killed worker may sever in-flight connections
(counted separately as ``conn_errors``; that is the unavoidable budget
of SIGKILL) but no request may ever receive a garbage or 5xx *answer* —
plus full recovery and a clean drain inside the wall-clock budget.

The scenario also gates the *fleet aggregation* invariants under the
restart path: the supervisor's merged ``repro_service_queries_total``
is sampled throughout the kill storm and must never decrease (counter
reset tracking across incarnations), the final aggregate must satisfy
``cache hits + misses == queries`` exactly, and one aggregated
``/metrics`` page must pass the exposition linter
(:mod:`repro.observability.expolint`).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from collections import Counter
from http.client import HTTPException

from repro.core.quadhist import QuadHist
from repro.observability import MetricsRegistry, lint_exposition
from repro.server import EstimatorService
from repro.serving.config import ServingConfig
from repro.serving.supervisor import Supervisor
from repro.serving.warmup import pretrain_snapshot, sample_query_payloads

__all__ = ["run_kill_workers_scenario", "main"]


def _post(url: str, payload: dict, timeout: float) -> int:
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        response.read()
        return response.status


def _client_loop(base, payloads, stop, counts, lock, timeout):
    rng = random.Random(threading.get_ident())
    i = 0
    while not stop.is_set():
        single = rng.random() < 0.5
        if single:
            url, payload = f"{base}/v1/estimate", {"query": payloads[i % len(payloads)]}
        else:
            batch = [payloads[(i + j) % len(payloads)] for j in range(4)]
            url, payload = f"{base}/v1/predict", {"queries": batch}
        i += rng.randrange(1, 7)
        try:
            status = _post(url, payload, timeout)
            key = f"{status // 100}xx"
        except urllib.error.HTTPError as exc:
            key = f"{exc.code // 100}xx"
        except (urllib.error.URLError, HTTPException, ConnectionError, OSError):
            # Severed mid-flight by a SIGKILL — the budgeted casualty.
            key = "conn_error"
        with lock:
            counts[key] += 1


def run_kill_workers_scenario(
    workers: int = 4,
    duration_s: float = 20.0,
    kill_every_s: float = 2.0,
    clients: int = 6,
    deadline_ms: float = 10_000.0,
    request_timeout_s: float = 15.0,
    recovery_budget_s: float = 30.0,
    drain_budget_s: float = 20.0,
    seed: int = 0,
    snapshot_dir: str | None = None,
    config: ServingConfig | None = None,
) -> dict:
    """Run the scenario; returns a report dict (see module docstring).

    The report's ``passed`` field ANDs the three acceptance conditions:
    no HTTP 5xx, full recovery after the kill storm, drain within
    budget.
    """
    rng = random.Random(seed)
    own_dir = None
    if snapshot_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        snapshot_dir = own_dir.name
        pretrain_snapshot(snapshot_dir)
    payloads = sample_query_payloads(64, seed=seed)
    if config is None:
        config = ServingConfig(
            workers=workers,
            deadline_ms=deadline_ms,
            # Restarts must not be throttled mid-storm: the scenario
            # kills healthy workers, which is not a crash loop.
            restart_backoff_s=0.05,
            restart_storm_threshold=50,
            stable_after_s=0.5,
            drain_timeout_s=drain_budget_s,
            reload_check_s=5.0,
            ops_port=0,  # aggregated /metrics scraped + linted below
        )

    def factory():
        return EstimatorService(
            lambda: QuadHist(tau=0.01),
            snapshot_dir=snapshot_dir,
        )

    # Own registry: the scenario is embeddable (tests run it in-process),
    # and its restart storm must not bleed supervisor counters into the
    # caller's process-global registry.
    supervisor = Supervisor(factory, config=config, registry=MetricsRegistry())
    counts: Counter = Counter()
    lock = threading.Lock()
    stop = threading.Event()
    kills = 0
    report: dict = {"workers": workers, "duration_s": duration_s}
    try:
        host, port = supervisor.start()
        base = f"http://{host}:{port}"
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(base, payloads, stop, counts, lock, request_timeout_s),
                daemon=True,
            )
            for _ in range(clients)
        ]
        for thread in threads:
            thread.start()

        chaos_end = time.monotonic() + duration_s
        next_kill = time.monotonic() + kill_every_s
        # Fleet-counter monotonicity: the merged total must never go
        # backwards, even in the instant a killed worker's zeroed
        # replacement starts reporting.
        fleet_samples = 0
        monotone_violations = 0
        last_total = supervisor.aggregator.total("repro_service_queries_total")
        while time.monotonic() < chaos_end:
            time.sleep(0.05)
            total = supervisor.aggregator.total("repro_service_queries_total")
            fleet_samples += 1
            if total < last_total:
                monotone_violations += 1
            last_total = max(last_total, total)
            if time.monotonic() >= next_kill:
                next_kill += kill_every_s
                live = [s for s in supervisor._slots if s.alive]
                if live:
                    victim = rng.choice(live)
                    victim.process.kill()  # SIGKILL: no drain, no goodbye
                    kills += 1

        # Kill storm over: the pool must return to full complement.
        recovery_deadline = time.monotonic() + recovery_budget_s
        recovered = False
        while time.monotonic() < recovery_deadline:
            if supervisor.status()["alive"] == workers:
                recovered = True
                break
            time.sleep(0.1)

        stop.set()
        for thread in threads:
            thread.join(timeout=request_timeout_s + 5)

        # Post-chaos probe: a recovered pool answers 20/20 cleanly.
        probe_ok = 0
        for i in range(20):
            try:
                status = _post(
                    f"{base}/v1/estimate",
                    {"query": payloads[i % len(payloads)]},
                    request_timeout_s,
                )
                probe_ok += int(status == 200)
            except Exception:
                pass

        # One aggregated exposition page, scraped over the ops endpoint
        # when enabled (else rendered directly), must lint clean.
        if config.ops_port is not None:
            ops_host, ops_port = supervisor.ops_address
            with urllib.request.urlopen(
                f"http://{ops_host}:{ops_port}/metrics", timeout=request_timeout_s
            ) as response:
                exposition = response.read().decode("utf-8")
        else:
            exposition = supervisor.render_metrics()
        lint_problems = lint_exposition(exposition)

        drain_start = time.monotonic()
        drain = supervisor.stop(drain=True)
        drain_seconds = time.monotonic() - drain_start

        # Post-drain the fleet is quiescent and every worker's final
        # snapshot is folded in: the cache identity must hold exactly.
        fleet_queries = supervisor.aggregator.total("repro_service_queries_total")
        fleet_hits = supervisor.aggregator.total(
            "repro_prediction_cache_hits_total"
        )
        fleet_misses = supervisor.aggregator.total(
            "repro_prediction_cache_misses_total"
        )

        total = sum(counts.values())
        http_5xx = sum(v for k, v in counts.items() if k == "5xx")
        report.update(
            {
                "kills": kills,
                "responses": dict(counts),
                "total_requests": total,
                "http_5xx": http_5xx,
                "conn_errors": counts.get("conn_error", 0),
                "recovered": recovered,
                "probe_ok": probe_ok,
                "drain": drain,
                "drain_seconds": round(drain_seconds, 3),
                "drained_clean": len(drain["killed"]) == 0,
                "restarts": sum(s.restarts for s in supervisor._slots),
                "fleet": {
                    "samples": fleet_samples,
                    "monotone_violations": monotone_violations,
                    "queries_total": fleet_queries,
                    "cache_hits": fleet_hits,
                    "cache_misses": fleet_misses,
                    "cache_identity": fleet_queries == fleet_hits + fleet_misses,
                    "final_total": last_total,
                    "lint_problems": lint_problems,
                },
            }
        )
        report["passed"] = (
            http_5xx == 0
            and recovered
            and probe_ok == 20
            and drain_seconds <= drain_budget_s
            and report["drained_clean"]
            and monotone_violations == 0
            and report["fleet"]["cache_identity"]
            and not lint_problems
        )
        return report
    finally:
        stop.set()
        if supervisor._sock is not None:
            supervisor.stop(drain=False)
        if own_dir is not None:
            own_dir.cleanup()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL random serving workers under live load"
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--kill-every", type=float, default=2.0)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--deadline-ms", type=float, default=10_000.0)
    parser.add_argument("--recovery-budget", type=float, default=30.0)
    parser.add_argument("--drain-budget", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", help="write the report to this path")
    args = parser.parse_args(argv)
    report = run_kill_workers_scenario(
        workers=args.workers,
        duration_s=args.duration,
        kill_every_s=args.kill_every,
        clients=args.clients,
        deadline_ms=args.deadline_ms,
        recovery_budget_s=args.recovery_budget,
        drain_budget_s=args.drain_budget,
        seed=args.seed,
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    if not report["passed"]:
        print("CHAOS SCENARIO FAILED", file=sys.stderr)
        return 1
    print(
        f"chaos ok: {report['kills']} kills, {report['total_requests']} requests, "
        f"0 http 5xx, {report['conn_errors']} severed connections, "
        f"drain {report['drain_seconds']}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
