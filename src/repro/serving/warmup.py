"""Warm-start fixtures: pre-train a snapshot for a worker pool to serve.

A pool's workers are constructed *from the snapshot store*, so anything
that boots a pool — the chaos harness, the serving benchmark, tests, an
operator bootstrapping a fresh box — first needs a store holding at
least one trained generation.  This module builds that in one call, on
the paper's standard configuration (a QuadHist over a 2-D projection of
the power-like dataset), plus a helper that yields JSON-encoded query
payloads for driving HTTP traffic at the pool.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.core.config import QuadHistConfig
from repro.core.quadhist import QuadHist
from repro.data.io import range_to_dict
from repro.data.selectivity import label_queries
from repro.data.synthetic import power_like
from repro.data.workloads import WorkloadSpec, generate_workload
from repro.persistence.snapshots import SnapshotStore

__all__ = ["pretrain_snapshot", "sample_query_payloads"]


def pretrain_snapshot(
    snapshot_dir: str | os.PathLike,
    rows: int = 4_000,
    train_queries: int = 120,
    tau: float = 0.01,
    seed: int = 7,
    generation: int = 1,
) -> Path:
    """Fit a small QuadHist and persist it as ``generation`` in
    ``snapshot_dir``; returns the artifact path.

    Every worker whose service factory points at the same directory then
    warm-starts from this artifact instead of cold-fitting.
    """
    dataset = power_like(rows=rows).project([0, 3])
    rng = np.random.default_rng(seed)
    spec = WorkloadSpec(query_kind="box", center_kind="data")
    queries = generate_workload(train_queries, 2, rng, spec=spec, dataset=dataset)
    labels = label_queries(dataset, queries)
    model = QuadHist.from_config(QuadHistConfig(tau=tau))
    model.fit(queries, labels)
    store = SnapshotStore(snapshot_dir, keep=None)
    return store.save(model, generation, training=(queries, labels))


def sample_query_payloads(n: int, seed: int = 0, dim: int = 2) -> list[dict]:
    """``n`` random box queries in the tagged JSON encoding the HTTP
    surface accepts — traffic fuel for benches and chaos runs."""
    rng = np.random.default_rng(seed)
    spec = WorkloadSpec(query_kind="box", center_kind="random")
    queries = generate_workload(n, dim, rng, spec=spec)
    return [range_to_dict(query) for query in queries]
