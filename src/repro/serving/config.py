"""Tuning knobs for the supervised multi-worker serving stack.

One frozen dataclass shared by the supervisor, the workers, and the CLI,
so a pool's whole operating envelope is a single picklable value.  The
defaults favour a small sidecar next to a query optimizer: shallow
queues (shed early, the planner can fall back to its native estimator),
tight flush windows (coalescing must not add visible latency), and
restart supervision that tolerates crashes but refuses to fork-bomb a
box with a poisoned snapshot (the restart-storm breaker reuses
:class:`repro.robustness.CircuitBreaker` semantics).

See ``docs/serving.md`` for the tuning table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["ServingConfig"]


@dataclass(frozen=True)
class ServingConfig:
    """Operating envelope for one worker pool."""

    #: Worker processes accepting from the shared listening socket.
    workers: int = 2
    #: Concurrent requests one worker executes; beyond this they queue.
    max_concurrency: int = 8
    #: Queued (admitted-but-waiting) requests per worker before shedding
    #: with 429 + ``Retry-After``.
    queue_depth: int = 32
    #: Default per-request deadline budget in milliseconds (None =
    #: unlimited); callers override per request via ``X-Deadline-Ms``.
    deadline_ms: float | None = 1000.0
    #: Advisory ``Retry-After`` (seconds) sent with shed responses.
    shed_retry_after_s: float = 1.0
    #: Micro-batching flush window for concurrent estimate/predict
    #: traffic, in milliseconds.  0 disables coalescing.
    flush_ms: float = 2.0
    #: Hard cap on one coalesced ``predict_many`` batch.
    max_batch: int = 512
    #: Seconds between worker heartbeats to the supervisor.
    heartbeat_interval_s: float = 0.25
    #: Silence past which a live worker counts as wedged and is killed.
    heartbeat_timeout_s: float = 10.0
    #: First restart delay after a crash; doubles per consecutive crash.
    restart_backoff_s: float = 0.1
    #: Exponential-backoff ceiling.
    restart_backoff_max_s: float = 5.0
    #: Consecutive crashes (without a stable run in between) that open
    #: the restart-storm breaker for ``restart_storm_cooldown_s``.
    restart_storm_threshold: int = 5
    #: Open-breaker cooldown before a single probe restart is allowed.
    restart_storm_cooldown_s: float = 10.0
    #: Uptime after which a worker counts as stable (resets the storm
    #: breaker and the backoff sequence).
    stable_after_s: float = 5.0
    #: Graceful-drain budget: SIGTERM → this long to flush → SIGKILL.
    drain_timeout_s: float = 10.0
    #: How often workers poll the snapshot store for a newer generation
    #: (rolling reload).  0 disables the reloader.
    reload_check_s: float = 1.0
    #: Structured access log (one line per HTTP request) in each worker.
    access_log: bool = False
    #: Supervisor ops endpoint port (aggregated ``/metrics``, ``/workers``,
    #: fleet ``/health``).  ``None`` disables it; 0 picks a free port
    #: (read :attr:`Supervisor.ops_address` after start).
    ops_port: int | None = None
    #: Extra worker environment (merged over the inherited one).
    worker_env: dict = field(default_factory=dict)

    def __post_init__(self):
        positive = {
            "workers": self.workers,
            "max_concurrency": self.max_concurrency,
            "max_batch": self.max_batch,
            "restart_storm_threshold": self.restart_storm_threshold,
        }
        for name, value in positive.items():
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        non_negative = {
            "queue_depth": self.queue_depth,
            "shed_retry_after_s": self.shed_retry_after_s,
            "flush_ms": self.flush_ms,
            "restart_backoff_s": self.restart_backoff_s,
            "restart_backoff_max_s": self.restart_backoff_max_s,
            "restart_storm_cooldown_s": self.restart_storm_cooldown_s,
            "stable_after_s": self.stable_after_s,
            "drain_timeout_s": self.drain_timeout_s,
            "reload_check_s": self.reload_check_s,
        }
        for name, value in non_negative.items():
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive or None, got {self.deadline_ms}"
            )
        if self.ops_port is not None and not 0 <= self.ops_port <= 65535:
            raise ValueError(
                f"ops_port must be in [0, 65535] or None, got {self.ops_port}"
            )
        for name, value in (
            ("heartbeat_interval_s", self.heartbeat_interval_s),
            ("heartbeat_timeout_s", self.heartbeat_timeout_s),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s "
                f"({self.heartbeat_timeout_s} <= {self.heartbeat_interval_s})"
            )

    @property
    def coalesce(self) -> bool:
        return self.flush_ms > 0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}
