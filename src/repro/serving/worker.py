"""One serving worker: an embeddable, drainable estimator process.

A worker is the unit of fault isolation in the pool: it owns one
:class:`~repro.server.EstimatorService` (warm-started from the shared
:class:`~repro.persistence.SnapshotStore`), one admission controller,
one coalescer, and one HTTP server accepting from the supervisor's
shared listening socket.  Everything here also works single-process —
the CLI's ``serve`` without ``--workers`` runs exactly this module's
machinery minus the fork, which is how ``repro serve`` under
systemd/containers gets the same SIGTERM drain semantics as the pool.

Lifecycle of one worker::

    fork → service_factory() (restore from snapshot store, 33-275×
    cheaper than fit) → accept loop + heartbeat thread + generation
    reloader → SIGTERM → draining flag (new requests get 503) → stop
    accepting → join in-flight request threads → best-effort snapshot →
    exit 0

SIGKILL (crash, OOM, chaos) skips everything after "accept loop"; the
supervisor notices the silent heartbeat / dead process and respawns —
state lives in the snapshot store, not the worker.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time

from repro.observability import (
    default_registry,
    get_logger,
    log_event,
    set_worker_label,
)
from repro.server import EstimatorService, make_server
from repro.serving.admission import AdmissionController
from repro.serving.coalescer import PredictCoalescer
from repro.serving.config import ServingConfig

__all__ = ["worker_main", "GenerationReloader", "drain_server"]

_log = get_logger("serving.worker")


class GenerationReloader(threading.Thread):
    """Rolling-generation watcher: restore when the store moves ahead.

    Polls the service's snapshot store every ``interval`` seconds; when a
    generation newer than the one being served appears (written by a
    sibling worker's retrain, or by an operator training out-of-band),
    installs it via :meth:`EstimatorService.restore` — an atomic model
    swap, so traffic never drops during the reload.
    """

    def __init__(self, service: EstimatorService, interval: float = 1.0):
        super().__init__(name="generation-reloader", daemon=True)
        self.service = service
        self.interval = float(interval)
        self._stop = threading.Event()
        self.reloads = 0
        #: Reloads whose artifact was a delta snapshot — written by the
        #: incremental ``update()`` fast path rather than a full retrain.
        self.delta_reloads = 0

    def stop(self) -> None:
        self._stop.set()

    def poll_once(self) -> bool:
        """One check; returns True when a newer generation was installed."""
        store = self.service.snapshot_store
        if store is None:
            return False
        try:
            latest = store.latest_generation()
            if latest is not None and latest > self.service.store_generation:
                result = self.service.restore()
                self.reloads += 1
                if result.get("incremental"):
                    self.delta_reloads += 1
                return True
        except Exception as exc:  # a broken artifact must not kill serving
            log_event(
                _log,
                "generation_reload_failed",
                level=logging.WARNING,
                error=f"{type(exc).__name__}: {exc}",
            )
        return False

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll_once()


def drain_server(server, service: EstimatorService | None = None) -> None:
    """Graceful drain: stop accepting, flush in-flight, snapshot.

    ``server.shutdown()`` exits the accept loop; ``server_close()`` joins
    every in-flight request thread (stdlib ``block_on_close``) and closes
    this process's handle on the listening socket.  The final snapshot is
    best-effort — an untrained or persistence-less service drains without
    one.
    """
    server.shutdown()
    server.server_close()
    if service is not None and service.snapshot_store is not None:
        try:
            service.snapshot()
        except Exception:
            pass  # nothing trained yet, or the store is gone — still drain


def worker_main(
    worker_id: int,
    service_factory,
    config: ServingConfig,
    sock,
    heartbeat_conn=None,
    incarnation: int = 0,
) -> None:
    """Run one worker until SIGTERM (returns) or SIGKILL (doesn't).

    ``sock`` is the shared pre-bound listening socket; ``heartbeat_conn``
    (a write end of a ``multiprocessing.Pipe``) carries periodic liveness
    payloads — plus compact metric-registry snapshots for the fleet
    aggregator — to the supervisor and is optional for embedded use.
    ``incarnation`` is the supervisor's spawn count for this slot; the
    aggregator uses it to fold a dead incarnation's final counters into
    a monotone base instead of letting fleet totals regress.
    """
    label = str(worker_id)
    os.environ["REPRO_WORKER_ID"] = label
    if heartbeat_conn is not None:
        # Supervised pool: attribute every exposed series to this slot so
        # even direct scrapes through the shared socket are identifiable.
        # Single-process serving (heartbeat_conn=None) stays label-free.
        set_worker_label(label)
        # The fork inherited the parent's process-global registry —
        # warmup traffic, the supervisor's own counters, whatever ran
        # before the pool started.  Each incarnation must report only
        # its own work, or the fleet aggregate counts the parent's
        # history once per worker.
        default_registry().reset()

    # Latch SIGTERM/SIGINT before anything expensive (the warm restore in
    # service_factory takes milliseconds): a drain signal that lands while
    # the worker is still booting must produce a clean exit 0, not the
    # default signal death.
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    service: EstimatorService = service_factory()
    registry = service.registry
    registry.gauge(
        "repro_worker_up",
        "1 while this worker process is serving",
        labels=("worker",),
    ).set(1.0, worker=label)
    admission = AdmissionController(
        max_concurrency=config.max_concurrency,
        queue_depth=config.queue_depth,
        shed_retry_after_s=config.shed_retry_after_s,
        worker=label,
        registry=registry,
    )
    coalescer = (
        PredictCoalescer(
            service.estimate_many,
            flush_ms=config.flush_ms,
            max_batch=config.max_batch,
            worker=label,
            registry=registry,
        )
        if config.coalesce
        else None
    )
    draining = threading.Event()
    server = make_server(
        service,
        access_log=config.access_log,
        sock=sock,
        admission=admission,
        coalescer=coalescer,
        default_deadline_ms=config.deadline_ms,
        draining=draining,
    )

    serve_thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name=f"worker-{label}-accept",
        daemon=True,
    )
    serve_thread.start()

    reloader = None
    if service.snapshot_store is not None and config.reload_check_s > 0:
        reloader = GenerationReloader(service, interval=config.reload_check_s)
        reloader.start()

    send_lock = threading.Lock()

    def _send(status: str) -> bool:
        if heartbeat_conn is None:
            return True
        payload = {
            "worker": worker_id,
            "pid": os.getpid(),
            "incarnation": incarnation,
            "ts": time.time(),
            "status": status,
            "health": service.health(),
            "admission": admission.snapshot(),
            # Registry snapshot piggybacked for the supervisor's fleet
            # aggregator; taken under the service state lock so the
            # query/hit/miss counters are captured between requests.
            "metrics": service.metrics_snapshot(),
        }
        try:
            with send_lock:
                heartbeat_conn.send(payload)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _heartbeat_loop():
        while not stop.wait(config.heartbeat_interval_s):
            if not _send("draining" if draining.is_set() else "ready"):
                stop.set()  # supervisor is gone; shut down
                return

    _send("ready")
    beat_thread = threading.Thread(
        target=_heartbeat_loop, name=f"worker-{label}-heartbeat", daemon=True
    )
    beat_thread.start()
    log_event(_log, "worker_started", worker=worker_id, pid=os.getpid())

    stop.wait()

    draining.set()  # new requests on open connections get 503
    drain_server(server, service)
    if reloader is not None:
        reloader.stop()
    _send("stopped")
    log_event(_log, "worker_drained", worker=worker_id, pid=os.getpid())
