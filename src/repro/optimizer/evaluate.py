"""Workload-level plan quality of a selectivity estimator.

Turns estimation error into the currency optimizers care about: how often
did the estimate pick the right access path, and how much execution cost
did wrong picks waste?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.estimator import SelectivityEstimator
from repro.geometry.ranges import Range
from repro.optimizer.cost import TableStats
from repro.optimizer.planner import choose_plan, plan_regret

__all__ = ["PlanQuality", "evaluate_plan_quality"]


@dataclass(frozen=True)
class PlanQuality:
    """Summary of an estimator's plan-choice performance on a workload."""

    correct_choice_rate: float
    mean_regret: float
    max_regret: float
    queries: int

    def row(self) -> dict[str, object]:
        return {
            "correct_plans": round(self.correct_choice_rate, 4),
            "mean_regret": round(self.mean_regret, 4),
            "max_regret": round(self.max_regret, 4),
            "queries": self.queries,
        }


def evaluate_plan_quality(
    estimator: SelectivityEstimator,
    queries: Sequence[Range],
    true_selectivities: Sequence[float],
    stats: TableStats,
) -> PlanQuality:
    """Plan-choice accuracy and regret over a labeled workload."""
    truths = np.asarray(true_selectivities, dtype=float)
    if truths.shape != (len(queries),):
        raise ValueError(
            f"{len(queries)} queries but selectivities of shape {truths.shape}"
        )
    if len(queries) == 0:
        raise ValueError("empty workload")
    correct = 0
    regrets = []
    for query, truth in zip(queries, truths):
        estimate = estimator.predict(query)
        if choose_plan(stats, estimate) is choose_plan(stats, float(truth)):
            correct += 1
        regrets.append(plan_regret(stats, estimate, float(truth)))
    regrets_arr = np.asarray(regrets)
    return PlanQuality(
        correct_choice_rate=correct / len(queries),
        mean_regret=float(regrets_arr.mean()),
        max_regret=float(regrets_arr.max()),
        queries=len(queries),
    )
