"""Plan choice and plan regret.

The optimizer picks the access path whose cost is lower *under the
estimated selectivity*; the query then executes at the cost determined by
the *true* selectivity.  *Plan regret* is the executed-over-optimal cost
ratio — 1.0 when the estimate led to the right choice, > 1 when a
mis-estimate pushed the optimizer across the crossover.
"""

from __future__ import annotations

from repro.optimizer.cost import AccessPath, TableStats, index_scan_cost, seq_scan_cost

__all__ = ["choose_plan", "plan_cost", "plan_regret", "crossover_selectivity"]


def plan_cost(plan: AccessPath, stats: TableStats, selectivity: float) -> float:
    """Cost of executing ``plan`` at the given (true) selectivity."""
    if plan is AccessPath.SEQ_SCAN:
        return seq_scan_cost(stats, selectivity)
    if plan is AccessPath.INDEX_SCAN:
        return index_scan_cost(stats, selectivity)
    raise ValueError(f"unknown plan {plan!r}")


def choose_plan(stats: TableStats, estimated_selectivity: float) -> AccessPath:
    """Cost-based choice between the two access paths."""
    seq = seq_scan_cost(stats, estimated_selectivity)
    index = index_scan_cost(stats, estimated_selectivity)
    return AccessPath.INDEX_SCAN if index < seq else AccessPath.SEQ_SCAN


def crossover_selectivity(stats: TableStats) -> float:
    """The selectivity at which the two plans cost the same.

    Below it the index scan wins, above it the sequential scan does.
    Solving ``descent + s*rows*(cpu + rand) = pages*seq`` for ``s``.
    """
    per_tuple = stats.index_cpu_cost + stats.random_page_cost
    descent = 2.0 * stats.random_page_cost
    numerator = stats.pages * stats.seq_page_cost - descent
    if numerator <= 0:
        return 0.0
    return min(1.0, numerator / (stats.rows * per_tuple))


def plan_regret(
    stats: TableStats, estimated_selectivity: float, true_selectivity: float
) -> float:
    """Executed cost / optimal cost for the plan chosen from the estimate.

    Always >= 1; equals 1 whenever the estimate falls on the same side of
    the crossover as the truth (estimates need not be accurate, only
    *decision-equivalent* — the practical bar for selectivity estimation).
    """
    chosen = choose_plan(stats, estimated_selectivity)
    executed = plan_cost(chosen, stats, true_selectivity)
    optimal = min(
        plan_cost(AccessPath.SEQ_SCAN, stats, true_selectivity),
        plan_cost(AccessPath.INDEX_SCAN, stats, true_selectivity),
    )
    return executed / optimal if optimal > 0 else 1.0
