"""A miniature cost-based query optimizer (the paper's motivating use).

Section 1: selectivity estimates let cost-based optimizers "gauge the
intermediate result sizes and choose low-cost query execution plans".
This package provides the smallest end-to-end substrate in which that
matters: a single-table access-path choice (sequential scan vs index scan)
driven by a classical cost model, plus metrics quantifying how much plan
quality an estimator's errors cost.

* :mod:`~repro.optimizer.cost` — table statistics and the access-path
  cost model (with the textbook seq-scan/index-scan crossover).
* :mod:`~repro.optimizer.planner` — plan choice from an estimate, plan
  cost under the truth, and per-query *plan regret*.
* :mod:`~repro.optimizer.evaluate` — workload-level plan-choice accuracy
  and mean regret for a fitted selectivity estimator.
"""

from repro.optimizer.cost import AccessPath, TableStats, index_scan_cost, seq_scan_cost
from repro.optimizer.planner import choose_plan, crossover_selectivity, plan_cost, plan_regret
from repro.optimizer.evaluate import PlanQuality, evaluate_plan_quality

__all__ = [
    "AccessPath",
    "TableStats",
    "seq_scan_cost",
    "index_scan_cost",
    "choose_plan",
    "plan_cost",
    "plan_regret",
    "crossover_selectivity",
    "PlanQuality",
    "evaluate_plan_quality",
]
