"""Access-path cost model.

The classical single-table trade-off (Selinger et al. 1979, and every
textbook since):

* **sequential scan** reads every page once: cost is linear in the table
  size and independent of selectivity;
* **index scan** pays a per-matching-tuple price (index traversal plus a
  random page fetch), so its cost is linear in ``selectivity * rows`` with
  a much larger per-tuple constant.

With the defaults below the crossover sits at selectivity
``seq_page_cost / (random_page_cost * tuples_per_page)`` — matching the
folklore that index scans only win for selective predicates.
Costs are in abstract I/O units; only *ratios* matter for plan choice.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["AccessPath", "TableStats", "seq_scan_cost", "index_scan_cost"]


class AccessPath(enum.Enum):
    """The two single-table access paths the mini-optimizer chooses among."""

    SEQ_SCAN = "seq_scan"
    INDEX_SCAN = "index_scan"


@dataclass(frozen=True)
class TableStats:
    """Physical statistics of a table.

    Attributes
    ----------
    rows:
        Number of tuples.
    tuples_per_page:
        Tuples packed per disk page (seq scan reads ``rows/tuples_per_page``
        pages).
    seq_page_cost:
        Cost of one sequential page read.
    random_page_cost:
        Cost of one random page read (index probes); the classical setting
        is several times ``seq_page_cost``.
    index_cpu_cost:
        Per-matching-tuple CPU cost of the index traversal.
    """

    rows: int
    tuples_per_page: int = 100
    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    index_cpu_cost: float = 0.005

    def __post_init__(self):
        if self.rows < 1:
            raise ValueError(f"rows must be >= 1, got {self.rows}")
        if self.tuples_per_page < 1:
            raise ValueError(f"tuples_per_page must be >= 1, got {self.tuples_per_page}")
        if min(self.seq_page_cost, self.random_page_cost) <= 0:
            raise ValueError("page costs must be positive")
        if self.index_cpu_cost < 0:
            raise ValueError("index_cpu_cost must be non-negative")

    @property
    def pages(self) -> int:
        return max(1, math.ceil(self.rows / self.tuples_per_page))


def _check_selectivity(selectivity: float) -> float:
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
    return float(selectivity)


def seq_scan_cost(stats: TableStats, selectivity: float) -> float:
    """Cost of a full sequential scan (selectivity only affects CPU noise,
    which we fold into the page cost, so the scan cost is flat)."""
    _check_selectivity(selectivity)
    return stats.pages * stats.seq_page_cost


def index_scan_cost(stats: TableStats, selectivity: float) -> float:
    """Cost of an index scan returning ``selectivity * rows`` tuples.

    Each matching tuple pays an index CPU cost plus (pessimistically, the
    classical uncorrelated-index assumption) one random page fetch.
    A small constant accounts for the index descent.
    """
    matching = _check_selectivity(selectivity) * stats.rows
    descent = 2.0 * stats.random_page_cost  # root-to-leaf page reads
    # Uncorrelated-index pessimism: every matching tuple may land on a
    # fresh page, so each pays one random page read plus index CPU.
    return descent + matching * (stats.index_cpu_cost + stats.random_page_cost)
