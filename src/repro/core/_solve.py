"""Shared weight-estimation entry point for the learners.

QuadHist, PtsHist and ArrangementERM all end their fit with the same
step — solve Eq. (8) on a design matrix — and all want the same
robustness semantics: route through the fallback ladder so a
non-converging solve degrades the model instead of aborting the fit, and
keep a :class:`~repro.solvers.simplex_ls.SolveReport` for inspection.

The L∞ objective (Section 4.6) has no ladder of its own: a failing LP
falls back to the robust L2 ladder, which the report records.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.linf import fit_simplex_weights_linf
from repro.solvers.simplex_ls import (
    SolveAttempt,
    SolveReport,
    fit_simplex_weights_robust,
)

__all__ = ["solve_weights"]


def solve_weights(
    design: np.ndarray,
    selectivities: np.ndarray,
    objective: str = "l2",
    solver: str = "penalty",
    deadline_seconds: float | None = None,
) -> tuple[np.ndarray, SolveReport]:
    """Fit simplex weights under ``objective`` with full fallback.

    Returns ``(weights, report)``; never raises on numerical failure.
    """
    if objective == "linf":
        try:
            weights = fit_simplex_weights_linf(design, selectivities)
            if np.all(np.isfinite(weights)) and weights.size:
                report = SolveReport(requested="linf", rung="linf")
                report.attempts.append(SolveAttempt(rung="linf", ok=True, seconds=0.0))
                report.residual = float(
                    np.max(np.abs(design @ weights - selectivities))
                )
                return weights, report
            raise RuntimeError("linf solve returned non-finite weights")
        except Exception as exc:
            weights, report = fit_simplex_weights_robust(
                design, selectivities, method=solver, deadline_seconds=deadline_seconds
            )
            report.requested = "linf"
            report.fallback = True
            report.attempts.insert(
                0, SolveAttempt(rung="linf", ok=False, seconds=0.0, error=str(exc))
            )
            return weights, report
    return fit_simplex_weights_robust(
        design, selectivities, method=solver, deadline_seconds=deadline_seconds
    )
