"""Shared weight-estimation entry point for the learners.

QuadHist, PtsHist and ArrangementERM all end their fit with the same
step — solve Eq. (8) on a design matrix — and all want the same
robustness semantics: route through the fallback ladder so a
non-converging solve degrades the model instead of aborting the fit, and
keep a :class:`~repro.solvers.simplex_ls.SolveReport` for inspection.

The L∞ objective (Section 4.6) has no ladder of its own: a failing LP
falls back to the robust L2 ladder, which the report records.

Every solve runs under a ``fit/solve`` tracing span and feeds the
solver-layer metrics (``repro_solve_total{rung=...}``,
``repro_solve_fallback_total``, ``repro_solve_seconds``) so the ladder's
behaviour in production is visible on ``GET /metrics`` instead of only
in per-model ``solve_report_`` attributes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.observability.metrics import default_registry
from repro.observability.tracing import span
from repro.solvers.linf import fit_simplex_weights_linf
from repro.solvers.simplex_ls import (
    SolveAttempt,
    SolveReport,
    fit_simplex_weights_robust,
)

__all__ = ["solve_weights"]

_SOLVE_TOTAL = default_registry().counter(
    "repro_solve_total",
    "Weight solves by the fallback-ladder rung that produced the answer",
    labels=("rung",),
)
_SOLVE_FALLBACK = default_registry().counter(
    "repro_solve_fallback_total",
    "Weight solves that fell back from the requested method",
)
_SOLVE_SECONDS = default_registry().histogram(
    "repro_solve_seconds", "Wall time of one Eq. (8) weight solve in seconds"
)


def _record(report: SolveReport, started_at: float) -> None:
    _SOLVE_TOTAL.inc(rung=report.rung)
    if report.fallback:
        _SOLVE_FALLBACK.inc()
    _SOLVE_SECONDS.observe(time.perf_counter() - started_at)


def solve_weights(
    design: np.ndarray,
    selectivities: np.ndarray,
    objective: str = "l2",
    solver: str = "penalty",
    deadline_seconds: float | None = None,
    warm_start: np.ndarray | None = None,
) -> tuple[np.ndarray, SolveReport]:
    """Fit simplex weights under ``objective`` with full fallback.

    ``warm_start`` resumes the solve from a previous weight vector
    (already remapped to the current column order) — see
    :func:`~repro.solvers.simplex_ls.fit_simplex_weights_robust`.

    Returns ``(weights, report)``; never raises on numerical failure.
    """
    with span(
        "fit/solve", objective=objective, rows=int(np.asarray(design).shape[0])
    ) as solve_span:
        if objective == "linf":
            try:
                weights = fit_simplex_weights_linf(
                    design, selectivities, warm_start=warm_start
                )
                if np.all(np.isfinite(weights)) and weights.size:
                    report = SolveReport(requested="linf", rung="linf")
                    report.attempts.append(
                        SolveAttempt(rung="linf", ok=True, seconds=0.0)
                    )
                    report.residual = float(
                        np.max(np.abs(design @ weights - selectivities))
                    )
                    solve_span.annotate(rung=report.rung, fallback=False)
                    _record(report, solve_span.start)
                    return weights, report
                raise RuntimeError("linf solve returned non-finite weights")
            except Exception as exc:
                weights, report = fit_simplex_weights_robust(
                    design,
                    selectivities,
                    method=solver,
                    deadline_seconds=deadline_seconds,
                    warm_start=warm_start,
                )
                report.requested = "linf"
                report.fallback = True
                report.attempts.insert(
                    0, SolveAttempt(rung="linf", ok=False, seconds=0.0, error=str(exc))
                )
                solve_span.annotate(rung=report.rung, fallback=True)
                _record(report, solve_span.start)
                return weights, report
        weights, report = fit_simplex_weights_robust(
            design,
            selectivities,
            method=solver,
            deadline_seconds=deadline_seconds,
            warm_start=warm_start,
        )
        solve_span.annotate(rung=report.rung, fallback=report.fallback)
        _record(report, solve_span.start)
        return weights, report
