"""Training-sample containers.

A training sample is a sequence ``z^n = (z_1, ..., z_n)`` with
``z_i = (R_i, s_i) ∈ R × [0, 1]`` (Section 2.1).  The labels need not come
from any actual data distribution — the agnostic model allows noisy or even
adversarial labels — so :class:`TrainingSet` only validates ranges and the
``[0, 1]`` label domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.ranges import Range

__all__ = ["LabeledQuery", "TrainingSet"]


@dataclass(frozen=True)
class LabeledQuery:
    """One training sample ``z = (R, s)``."""

    query: Range
    selectivity: float

    def __post_init__(self):
        if not isinstance(self.query, Range):
            raise TypeError(f"query must be a Range, got {type(self.query).__name__}")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {self.selectivity}")


class TrainingSet:
    """A finite sequence of labeled queries sharing one ambient dimension."""

    def __init__(self, queries: Sequence[Range], selectivities: Sequence[float]):
        if len(queries) == 0:
            raise ValueError("a training set needs at least one query")
        if len(queries) != len(selectivities):
            raise ValueError(
                f"{len(queries)} queries but {len(selectivities)} selectivities"
            )
        dims = {q.dim for q in queries}
        if len(dims) != 1:
            raise ValueError(f"queries must share one dimension, got {sorted(dims)}")
        labels = np.asarray(selectivities, dtype=float)
        if not np.all(np.isfinite(labels)):
            raise ValueError("selectivities must be finite")
        if np.any(labels < -1e-12) or np.any(labels > 1.0 + 1e-12):
            raise ValueError("selectivities must lie in [0, 1]")
        self.queries = list(queries)
        self.selectivities = np.clip(labels, 0.0, 1.0)

    @property
    def dim(self) -> int:
        return self.queries[0].dim

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[LabeledQuery]:
        for query, sel in zip(self.queries, self.selectivities):
            yield LabeledQuery(query, float(sel))

    def __getitem__(self, index: int) -> LabeledQuery:
        return LabeledQuery(self.queries[index], float(self.selectivities[index]))

    def subset(self, indices: Sequence[int]) -> "TrainingSet":
        """A new training set restricted to the given indices."""
        return TrainingSet(
            [self.queries[i] for i in indices], self.selectivities[list(indices)]
        )
