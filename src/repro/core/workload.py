"""Training-sample containers.

A training sample is a sequence ``z^n = (z_1, ..., z_n)`` with
``z_i = (R_i, s_i) ∈ R × [0, 1]`` (Section 2.1).  The labels need not come
from any actual data distribution — the agnostic model allows noisy or even
adversarial labels — so by default :class:`TrainingSet` only validates
ranges and the ``[0, 1]`` label domain.

Deployed feedback loops additionally produce *malformed* samples (NaN
labels, degenerate ranges, contradictory duplicates).  Passing a
``policy`` ("raise" / "drop" / "clamp") runs the full sanitizer of
:mod:`repro.robustness.sanitize` and records the quarantine outcome on
``TrainingSet.sanitization``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.ranges import Range
from repro.robustness.errors import DataValidationError
from repro.robustness.sanitize import SanitizationReport, sanitize_training_data

__all__ = ["LabeledQuery", "TrainingSet"]


@dataclass(frozen=True)
class LabeledQuery:
    """One training sample ``z = (R, s)``."""

    query: Range
    selectivity: float

    def __post_init__(self):
        if not isinstance(self.query, Range):
            raise TypeError(f"query must be a Range, got {type(self.query).__name__}")
        if not 0.0 <= self.selectivity <= 1.0:
            raise DataValidationError(
                f"selectivity must be in [0, 1], got {self.selectivity}"
            )


class TrainingSet:
    """A finite sequence of labeled queries sharing one ambient dimension.

    Parameters
    ----------
    queries, selectivities:
        The labeled workload (parallel sequences).
    policy:
        ``None`` (default) keeps the historical strict behaviour: labels
        must be finite and in ``[0, 1]`` (up to float noise) or
        :class:`DataValidationError` is raised.  ``"raise"`` / ``"drop"``
        / ``"clamp"`` run the full sanitizer first — screening NaN and
        out-of-range labels, zero-volume/inverted ranges, and conflicting
        duplicate labels — and expose its :class:`SanitizationReport` as
        ``self.sanitization``.
    """

    def __init__(
        self,
        queries: Sequence[Range],
        selectivities: Sequence[float],
        policy: str | None = None,
    ):
        self.sanitization: SanitizationReport | None = None
        if policy is not None:
            queries, selectivities, self.sanitization = sanitize_training_data(
                queries, selectivities, policy=policy
            )
        if len(queries) == 0:
            raise DataValidationError("a training set needs at least one query")
        if len(queries) != len(selectivities):
            raise DataValidationError(
                f"{len(queries)} queries but {len(selectivities)} selectivities"
            )
        dims = {q.dim for q in queries}
        if len(dims) != 1:
            raise DataValidationError(
                f"queries must share one dimension, got {sorted(dims)}"
            )
        labels = np.asarray(selectivities, dtype=float)
        if not np.all(np.isfinite(labels)):
            raise DataValidationError("selectivities must be finite")
        if np.any(labels < -1e-12) or np.any(labels > 1.0 + 1e-12):
            raise DataValidationError("selectivities must lie in [0, 1]")
        self.queries = list(queries)
        self.selectivities = np.clip(labels, 0.0, 1.0)

    @property
    def dim(self) -> int:
        return self.queries[0].dim

    @property
    def quarantined(self) -> int:
        """Samples removed by sanitization (0 without a policy)."""
        return self.sanitization.quarantined if self.sanitization else 0

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[LabeledQuery]:
        for query, sel in zip(self.queries, self.selectivities):
            yield LabeledQuery(query, float(sel))

    def __getitem__(self, index: int) -> LabeledQuery:
        return LabeledQuery(self.queries[index], float(self.selectivities[index]))

    def subset(self, indices: Sequence[int]) -> "TrainingSet":
        """A new training set restricted to the given indices."""
        return TrainingSet(
            [self.queries[i] for i in indices], self.selectivities[list(indices)]
        )
