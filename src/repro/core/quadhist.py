"""QuadHist — the quadtree histogram of Section 3.2 (Algorithms 1 & 2).

Bucket design builds a quadtree (a ``2^d``-ary tree in ``d`` dimensions)
over the data domain.  Processing training sample ``(R, s)``, every leaf
``u`` whose *estimated density share*

.. math:: \\frac{Vol(u \\cap R)}{Vol(R)} \\cdot s(R)

exceeds the threshold ``τ`` is split into its ``2^d`` children, recursively
(Algorithm 2).  The final leaves become histogram buckets, and weights are
estimated by the generic simplex-constrained least squares of Eq. (8).

Properties reproduced from the paper:

* **Stability (Lemma A.4):** the partition is invariant to the order in
  which training queries are processed (when no leaf cap binds) — tested in
  ``tests/core/test_quadhist.py``.
* **Model-size control:** either via ``τ`` or a hard ``max_leaves`` cap, as
  described at the end of Section 3.2.
* **Query-class genericity:** the splitting rule and the design matrix only
  need ``Vol(box ∩ R)``, so orthogonal ranges, halfspaces and balls (exact
  in 2-D) all work unchanged.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Iterator, Sequence

import numpy as np

from repro.core.config import QuadHistConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.incremental import IncrementalTreeHistogram
from repro.core.workload import TrainingSet
from repro.distributions.histogram import HistogramDistribution
from repro.geometry.batch import coverage_dot
from repro.geometry.index import BucketIndex, build_bucket_index
from repro.geometry.sparse import sparse_coverage_dot
from repro.geometry.ranges import Box, Range, unit_box
from repro.geometry.volume import (
    batch_intersection_volumes,
    intersection_volume,
    range_volume,
)
from repro.observability.tracing import span
from repro.solvers.simplex_ls import SolveReport

__all__ = ["QuadHist"]


class _Node:
    """A quadtree node covering an axis-aligned box."""

    __slots__ = ("box", "children")

    def __init__(self, box: Box):
        self.box = box
        self.children: list[_Node] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def split(self) -> None:
        self.children = [_Node(child) for child in self.box.split()]

    def leaves(self) -> Iterator["_Node"]:
        if self.is_leaf:
            yield self
        else:
            for child in self.children:
                yield from child.leaves()


class QuadHist(IncrementalTreeHistogram, SelectivityEstimator):
    """The paper's QuadHist estimator.

    Parameters
    ----------
    tau:
        Density-share splitting threshold of Algorithm 2 (smaller ⟹ finer
        partition ⟹ larger model).
    max_leaves:
        Optional hard cap on the number of buckets ("hard termination
        condition on the number of leaves", Section 3.2).  ``None`` = no cap.
    max_depth:
        Safety cap on tree depth (the paper's domain-normalised workloads
        never approach it; it guards against adversarial degenerate
        queries).
    objective:
        ``"l2"`` (Eq. 8, the default) or ``"linf"`` (Section 4.6).
    solver:
        Simplex-LS method for the L2 objective (see
        :func:`repro.solvers.simplex_ls.fit_simplex_weights`).
    domain:
        Data domain; defaults to the unit cube of the training dimension.
    """

    Config: ClassVar = QuadHistConfig

    def __init__(
        self,
        tau: float = 0.01,
        max_leaves: int | None = None,
        max_depth: int = 20,
        objective: str = "l2",
        solver: str = "penalty",
        domain: Box | None = None,
    ):
        super().__init__()
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        if max_leaves is not None and max_leaves < 1:
            raise ValueError(f"max_leaves must be >= 1, got {max_leaves}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if objective not in ("l2", "linf"):
            raise ValueError(f"objective must be 'l2' or 'linf', got {objective!r}")
        self.tau = float(tau)
        self.max_leaves = max_leaves
        self.max_depth = int(max_depth)
        self.objective = objective
        self.solver = solver
        self.domain = domain
        #: How the last weight solve was produced (fallback ladder record).
        self.solve_report_: SolveReport | None = None
        self._root: _Node | None = None
        self._history: TrainingSet | None = None
        self._distribution: HistogramDistribution | None = None
        self._leaf_lows: np.ndarray | None = None
        self._leaf_highs: np.ndarray | None = None
        self._leaf_volumes: np.ndarray | None = None
        self._index: BucketIndex | None = None
        self._weights: np.ndarray | None = None
        self._design_cache: np.ndarray | None = None
        self.update_report_ = None

    # ------------------------------------------------------------------
    # Bucket design (Algorithms 1 & 2)
    # ------------------------------------------------------------------
    # partial_fit (incremental refinement: append-only design rows,
    # split-only column remaps, optional warm-started solve) comes from
    # IncrementalTreeHistogram.

    def _fit(self, training: TrainingSet) -> None:
        domain = self.domain if self.domain is not None else unit_box(training.dim)
        if domain.dim != training.dim:
            raise ValueError("domain dimension does not match the training queries")
        self._root = _Node(domain)
        self._leaf_count = 1
        self._history = training
        self._absorb(training, domain)

    def _absorb(self, training: TrainingSet, domain: Box) -> None:
        """Refine the tree with ``training`` and re-estimate the weights."""
        with span("fit/partition") as partition_span:
            for sample in training:
                volume = range_volume(sample.query, domain)
                if volume <= 0.0 or sample.selectivity <= 0.0:
                    continue  # degenerate query: no density information to split on
                density = sample.selectivity / volume
                self._update_quad(self._root, sample.query, density, depth=0)

            leaves = list(self._root.leaves())
            partition_span.annotate(leaves=len(leaves))
        self._leaf_lows = np.stack([leaf.box.lows for leaf in leaves])
        self._leaf_highs = np.stack([leaf.box.highs for leaf in leaves])
        self._leaf_volumes = np.prod(self._leaf_highs - self._leaf_lows, axis=1)
        self._index = build_bucket_index(self._leaf_lows, self._leaf_highs)
        self._estimate_weights(training)

    def _update_quad(self, node: _Node, query: Range, density: float, depth: int) -> None:
        """Algorithm 2, generalised to ``2^d``-way splits."""
        overlap = intersection_volume(node.box, query)
        if overlap * density <= self.tau:
            return
        if node.is_leaf:
            if depth >= self.max_depth:
                return
            if self.max_leaves is not None and self._leaf_count + (1 << node.box.dim) - 1 > self.max_leaves:
                return
            node.split()
            self._leaf_count += (1 << node.box.dim) - 1
            self._note_split(node)
        for child in node.children:
            self._update_quad(child, query, density, depth + 1)

    # The shared incremental machinery descends via this alias.
    _descend = _update_quad

    def _fraction_row(self, query: Range) -> np.ndarray:
        """Per-bucket coverage fractions ``Vol(B_j ∩ R)/Vol(B_j)``."""
        overlaps = batch_intersection_volumes(self._leaf_lows, self._leaf_highs, query)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(self._leaf_volumes > 0, overlaps / self._leaf_volumes, 0.0)
        return np.clip(fractions, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def _predict_one(self, query: Range) -> float:
        return float(self._fraction_row(query) @ self._weights)

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray:
        if self._index is not None:
            return sparse_coverage_dot(
                queries, self._index, self._leaf_volumes, self._weights
            )
        return coverage_dot(
            queries, self._leaf_lows, self._leaf_highs, self._leaf_volumes, self._weights
        )

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return int(self._weights.shape[0])

    @property
    def distribution(self) -> HistogramDistribution:
        """The learned histogram distribution (a valid member of 𝒟)."""
        self._check_fitted()
        return self._distribution

    def leaf_boxes(self) -> list[Box]:
        """The quadtree leaves = histogram buckets (for inspection/plots)."""
        self._check_fitted()
        return list(self._distribution.buckets)

    # ------------------------------------------------------------------
    # Persistence (repro.persistence)
    # ------------------------------------------------------------------

    def _state_dict(self) -> Dict[str, object]:
        state: Dict[str, object] = {
            "leaf_lows": self._leaf_lows,
            "leaf_highs": self._leaf_highs,
            "leaf_volumes": self._leaf_volumes,
            "weights": self._weights,
        }
        for key, value in self._distribution.to_state().items():
            state[f"distribution.{key}"] = value
        return state

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        self._leaf_lows = np.asarray(state["leaf_lows"], dtype=float)
        self._leaf_highs = np.asarray(state["leaf_highs"], dtype=float)
        self._leaf_volumes = np.asarray(state["leaf_volumes"], dtype=float)
        self._weights = np.asarray(state["weights"], dtype=float)
        # Rebuilt deterministically from the persisted bucket arrays; the
        # index itself is never serialised.
        self._index = build_bucket_index(self._leaf_lows, self._leaf_highs)
        self._distribution = HistogramDistribution.from_state(
            {
                key.split(".", 1)[1]: value
                for key, value in state.items()
                if key.startswith("distribution.")
            }
        )
        # The tree, feedback history and design cache are fit-time
        # structures; a restored model predicts from the leaf arrays and
        # cannot partial_fit.
        self._root = None
        self._history = None
        self._design_cache = None
