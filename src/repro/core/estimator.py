"""Public estimator API.

Every learner — QuadHist, PtsHist, the arrangement ERM, and the ISOMER /
QuickSel baselines — implements the same sklearn-flavoured interface:

.. code-block:: python

    est = QuadHist(tau=0.01)
    est.fit(train_queries, train_selectivities)
    predictions = est.predict_many(test_queries)

All estimators are *query-driven*: ``fit`` sees only queries and their
observed selectivities, never the underlying data (the paper's "fair
comparison" constraint in Section 4).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.workload import TrainingSet
from repro.geometry.ranges import Range

__all__ = ["SelectivityEstimator", "NotFittedError"]


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


class SelectivityEstimator(abc.ABC):
    """Base class for query-driven selectivity estimators."""

    def __init__(self):
        self._fitted = False

    def fit(
        self, queries: Sequence[Range], selectivities: Sequence[float]
    ) -> "SelectivityEstimator":
        """Learn a model from ``(query, selectivity)`` pairs.

        Returns ``self`` for chaining.
        """
        training = TrainingSet(queries, selectivities)
        self._fit(training)
        self._fitted = True
        return self

    @abc.abstractmethod
    def _fit(self, training: TrainingSet) -> None:
        """Subclass hook: fit from a validated training set."""

    @abc.abstractmethod
    def _predict_one(self, query: Range) -> float:
        """Subclass hook: estimate the selectivity of one query."""

    def predict(self, query: Range) -> float:
        """Estimated selectivity of ``query`` in ``[0, 1]``."""
        self._check_fitted()
        return float(np.clip(self._predict_one(query), 0.0, 1.0))

    def predict_many(self, queries: Sequence[Range]) -> np.ndarray:
        """Estimated selectivities for a sequence of queries."""
        self._check_fitted()
        return np.array([self.predict(q) for q in queries])

    @property
    @abc.abstractmethod
    def model_size(self) -> int:
        """Model complexity: the number of buckets / mixture components."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before predicting")

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({state})"
