"""Public estimator API.

Every learner — QuadHist, PtsHist, the arrangement ERM, and the ISOMER /
QuickSel baselines — implements the same sklearn-flavoured interface:

.. code-block:: python

    est = QuadHist(tau=0.01)
    est.fit(train_queries, train_selectivities)
    predictions = est.predict_many(test_queries)

All estimators are *query-driven*: ``fit`` sees only queries and their
observed selectivities, never the underlying data (the paper's "fair
comparison" constraint in Section 4).
"""

from __future__ import annotations

import abc
import contextlib
import dataclasses
import threading
import warnings
from typing import ClassVar, Dict, Sequence

import numpy as np

from repro.core.config import EstimatorConfig
from repro.core.workload import TrainingSet
from repro.geometry.ranges import Range
from repro.observability.metrics import default_registry
from repro.observability.tracing import span
from repro.robustness.errors import ModelUnavailableError
from repro.robustness.sanitize import SanitizationReport

__all__ = ["SelectivityEstimator", "NotFittedError"]

_FROM_CONFIG = threading.local()


def _in_from_config() -> bool:
    return getattr(_FROM_CONFIG, "depth", 0) > 0


@contextlib.contextmanager
def _from_config_scope():
    _FROM_CONFIG.depth = getattr(_FROM_CONFIG, "depth", 0) + 1
    try:
        yield
    finally:
        _FROM_CONFIG.depth -= 1

_PREDICT_QUERIES = default_registry().counter(
    "repro_predict_queries_total",
    "Queries answered through predict/predict_many across all estimators",
)


class NotFittedError(ModelUnavailableError):
    """Raised when ``predict`` is called before ``fit``.

    (A :class:`~repro.robustness.errors.ModelUnavailableError`, and — for
    backward compatibility — still a ``RuntimeError``.)
    """


class SelectivityEstimator(abc.ABC):
    """Base class for query-driven selectivity estimators."""

    #: Typed config dataclass for this estimator, when it has one.  Set on
    #: registry estimators (``QuadHist.Config = QuadHistConfig`` etc.); the
    #: canonical construction path is then ``cls.from_config(cfg)``, and
    #: direct keyword construction emits a :class:`DeprecationWarning`.
    Config: ClassVar[type[EstimatorConfig] | None] = None

    def __init__(self):
        self._fitted = False
        #: Quarantine outcome of the last ``fit`` (None without a policy).
        self.sanitization_: SanitizationReport | None = None
        if type(self).Config is not None and not _in_from_config():
            warnings.warn(
                f"constructing {type(self).__name__} with keyword arguments is "
                f"deprecated; use {type(self).__name__}.from_config"
                f"({type(self).Config.__name__}(...))",
                DeprecationWarning,
                stacklevel=3,
            )

    @classmethod
    def from_config(cls, config: EstimatorConfig) -> "SelectivityEstimator":
        """Canonical constructor: build an estimator from its typed config."""
        if cls.Config is None:
            raise TypeError(f"{cls.__name__} has no Config dataclass")
        if not isinstance(config, cls.Config):
            raise TypeError(
                f"{cls.__name__}.from_config needs a {cls.Config.__name__}, "
                f"got {type(config).__name__}"
            )
        with _from_config_scope():
            return cls(**config.kwargs())

    @property
    def config(self) -> EstimatorConfig:
        """The typed config this estimator was constructed from.

        Reconstructed field-for-field from the constructor attributes, so
        it reflects the *actual* construction arguments and round-trips:
        ``type(est).from_config(est.config)`` builds an equivalent
        (unfitted) estimator.
        """
        cfg_cls = type(self).Config
        if cfg_cls is None:
            raise TypeError(f"{type(self).__name__} has no Config dataclass")
        values = {}
        for f in dataclasses.fields(cfg_cls):
            value = getattr(self, f.name)
            if isinstance(value, list):
                value = tuple(value)
            values[f.name] = value
        return cfg_cls(**values)

    # ------------------------------------------------------------------
    # Persistence hooks (see repro.persistence)
    # ------------------------------------------------------------------

    def _state_dict(self) -> Dict[str, object]:
        """Fitted state as a flat dict of arrays and JSON-able scalars.

        ``np.ndarray`` values land in the artifact's npz payload; plain
        scalars/strings/lists land in the manifest.  Keys prefixed with
        ``"distribution."`` carry nested distribution state.  Must contain
        everything :meth:`_load_state_dict` needs to reproduce
        ``predict_many`` bitwise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support persistence"
        )

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore fitted state produced by :meth:`_state_dict`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support persistence"
        )

    def fit(
        self,
        queries: Sequence[Range],
        selectivities: Sequence[float],
        policy: str | None = None,
    ) -> "SelectivityEstimator":
        """Learn a model from ``(query, selectivity)`` pairs.

        ``policy`` ("raise" / "drop" / "clamp") runs training-set
        sanitization first (see :class:`~repro.core.workload.TrainingSet`);
        the resulting quarantine report lands on ``self.sanitization_``.

        Returns ``self`` for chaining.

        The whole fit runs under a ``fit`` tracing span (labelled with
        the concrete estimator class); subclass stages open child spans
        (``fit/partition``, ``fit/design-matrix``, ``fit/solve``), so one
        trace shows where training time went.
        """
        with span("fit", estimator=type(self).__name__) as fit_span:
            with span("fit/sanitize"):
                training = TrainingSet(queries, selectivities, policy=policy)
            self.sanitization_ = training.sanitization
            fit_span.annotate(samples=len(training))
            self._fit(training)
            self._fitted = True
        return self

    @abc.abstractmethod
    def _fit(self, training: TrainingSet) -> None:
        """Subclass hook: fit from a validated training set."""

    @abc.abstractmethod
    def _predict_one(self, query: Range) -> float:
        """Subclass hook: estimate the selectivity of one query."""

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray | None:
        """Subclass hook: raw estimates for a whole workload at once.

        Returning ``None`` (the default) makes :meth:`predict_many` fall
        back to the per-query scalar loop.  Implementations return the
        *raw* (unclamped) estimates; the base class applies the same
        NaN→0.5 / [0, 1]-clamp semantics as :meth:`predict` in one
        vectorised pass, so batch and scalar predictions agree exactly.
        """
        return None

    def predict(self, query: Range) -> float:
        """Estimated selectivity of ``query``, always in ``[0, 1]``.

        The base class enforces the unit-interval invariant for every
        learner and baseline: finite raw estimates are clamped, and a
        non-finite raw estimate (a numerically broken model state) maps
        to 0.5 — the maximum-uncertainty answer — rather than leaking NaN
        into an optimizer's cost model.
        """
        self._check_fitted()
        raw = float(self._predict_one(query))
        if not np.isfinite(raw):
            return 0.5
        return float(np.clip(raw, 0.0, 1.0))

    def predict_many(self, queries: Sequence[Range]) -> np.ndarray:
        """Estimated selectivities for a sequence of queries.

        Runs the estimator's vectorised batch path when it provides one
        (:meth:`_predict_batch`), falling back to the scalar loop
        otherwise.  Either way the per-query semantics of
        :meth:`predict` hold: finite raw estimates are clamped to
        ``[0, 1]`` and non-finite ones map to 0.5.
        """
        self._check_fitted()
        queries = list(queries)
        if not queries:
            return np.zeros(0)
        _PREDICT_QUERIES.inc(len(queries))
        raw = self._predict_batch(queries)
        if raw is None:
            return np.array([self.predict(q) for q in queries])
        raw = np.asarray(raw, dtype=float)
        if raw.shape != (len(queries),):
            raise ValueError(
                f"_predict_batch returned shape {raw.shape}, expected ({len(queries)},)"
            )
        with np.errstate(invalid="ignore"):
            return np.where(np.isfinite(raw), np.clip(raw, 0.0, 1.0), 0.5)

    @property
    @abc.abstractmethod
    def model_size(self) -> int:
        """Model complexity: the number of buckets / mixture components."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before predicting")

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({state})"
