"""Public estimator API.

Every learner — QuadHist, PtsHist, the arrangement ERM, and the ISOMER /
QuickSel baselines — implements the same sklearn-flavoured interface:

.. code-block:: python

    est = QuadHist(tau=0.01)
    est.fit(train_queries, train_selectivities)
    predictions = est.predict_many(test_queries)

All estimators are *query-driven*: ``fit`` sees only queries and their
observed selectivities, never the underlying data (the paper's "fair
comparison" constraint in Section 4).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.workload import TrainingSet
from repro.geometry.ranges import Range
from repro.observability.metrics import default_registry
from repro.observability.tracing import span
from repro.robustness.errors import ModelUnavailableError
from repro.robustness.sanitize import SanitizationReport

__all__ = ["SelectivityEstimator", "NotFittedError"]

_PREDICT_QUERIES = default_registry().counter(
    "repro_predict_queries_total",
    "Queries answered through predict/predict_many across all estimators",
)


class NotFittedError(ModelUnavailableError):
    """Raised when ``predict`` is called before ``fit``.

    (A :class:`~repro.robustness.errors.ModelUnavailableError`, and — for
    backward compatibility — still a ``RuntimeError``.)
    """


class SelectivityEstimator(abc.ABC):
    """Base class for query-driven selectivity estimators."""

    def __init__(self):
        self._fitted = False
        #: Quarantine outcome of the last ``fit`` (None without a policy).
        self.sanitization_: SanitizationReport | None = None

    def fit(
        self,
        queries: Sequence[Range],
        selectivities: Sequence[float],
        policy: str | None = None,
    ) -> "SelectivityEstimator":
        """Learn a model from ``(query, selectivity)`` pairs.

        ``policy`` ("raise" / "drop" / "clamp") runs training-set
        sanitization first (see :class:`~repro.core.workload.TrainingSet`);
        the resulting quarantine report lands on ``self.sanitization_``.

        Returns ``self`` for chaining.

        The whole fit runs under a ``fit`` tracing span (labelled with
        the concrete estimator class); subclass stages open child spans
        (``fit/partition``, ``fit/design-matrix``, ``fit/solve``), so one
        trace shows where training time went.
        """
        with span("fit", estimator=type(self).__name__) as fit_span:
            with span("fit/sanitize"):
                training = TrainingSet(queries, selectivities, policy=policy)
            self.sanitization_ = training.sanitization
            fit_span.annotate(samples=len(training))
            self._fit(training)
            self._fitted = True
        return self

    @abc.abstractmethod
    def _fit(self, training: TrainingSet) -> None:
        """Subclass hook: fit from a validated training set."""

    @abc.abstractmethod
    def _predict_one(self, query: Range) -> float:
        """Subclass hook: estimate the selectivity of one query."""

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray | None:
        """Subclass hook: raw estimates for a whole workload at once.

        Returning ``None`` (the default) makes :meth:`predict_many` fall
        back to the per-query scalar loop.  Implementations return the
        *raw* (unclamped) estimates; the base class applies the same
        NaN→0.5 / [0, 1]-clamp semantics as :meth:`predict` in one
        vectorised pass, so batch and scalar predictions agree exactly.
        """
        return None

    def predict(self, query: Range) -> float:
        """Estimated selectivity of ``query``, always in ``[0, 1]``.

        The base class enforces the unit-interval invariant for every
        learner and baseline: finite raw estimates are clamped, and a
        non-finite raw estimate (a numerically broken model state) maps
        to 0.5 — the maximum-uncertainty answer — rather than leaking NaN
        into an optimizer's cost model.
        """
        self._check_fitted()
        raw = float(self._predict_one(query))
        if not np.isfinite(raw):
            return 0.5
        return float(np.clip(raw, 0.0, 1.0))

    def predict_many(self, queries: Sequence[Range]) -> np.ndarray:
        """Estimated selectivities for a sequence of queries.

        Runs the estimator's vectorised batch path when it provides one
        (:meth:`_predict_batch`), falling back to the scalar loop
        otherwise.  Either way the per-query semantics of
        :meth:`predict` hold: finite raw estimates are clamped to
        ``[0, 1]`` and non-finite ones map to 0.5.
        """
        self._check_fitted()
        queries = list(queries)
        if not queries:
            return np.zeros(0)
        _PREDICT_QUERIES.inc(len(queries))
        raw = self._predict_batch(queries)
        if raw is None:
            return np.array([self.predict(q) for q in queries])
        raw = np.asarray(raw, dtype=float)
        if raw.shape != (len(queries),):
            raise ValueError(
                f"_predict_batch returned shape {raw.shape}, expected ({len(queries)},)"
            )
        with np.errstate(invalid="ignore"):
            return np.where(np.isfinite(raw), np.clip(raw, 0.0, 1.0), 0.5)

    @property
    @abc.abstractmethod
    def model_size(self) -> int:
        """Model complexity: the number of buckets / mixture components."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before predicting")

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({state})"
