"""Public estimator API.

Every learner — QuadHist, PtsHist, the arrangement ERM, and the ISOMER /
QuickSel baselines — implements the same sklearn-flavoured interface:

.. code-block:: python

    est = QuadHist(tau=0.01)
    est.fit(train_queries, train_selectivities)
    predictions = est.predict_many(test_queries)

All estimators are *query-driven*: ``fit`` sees only queries and their
observed selectivities, never the underlying data (the paper's "fair
comparison" constraint in Section 4).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.workload import TrainingSet
from repro.geometry.ranges import Range
from repro.robustness.errors import ModelUnavailableError
from repro.robustness.sanitize import SanitizationReport

__all__ = ["SelectivityEstimator", "NotFittedError"]


class NotFittedError(ModelUnavailableError):
    """Raised when ``predict`` is called before ``fit``.

    (A :class:`~repro.robustness.errors.ModelUnavailableError`, and — for
    backward compatibility — still a ``RuntimeError``.)
    """


class SelectivityEstimator(abc.ABC):
    """Base class for query-driven selectivity estimators."""

    def __init__(self):
        self._fitted = False
        #: Quarantine outcome of the last ``fit`` (None without a policy).
        self.sanitization_: SanitizationReport | None = None

    def fit(
        self,
        queries: Sequence[Range],
        selectivities: Sequence[float],
        policy: str | None = None,
    ) -> "SelectivityEstimator":
        """Learn a model from ``(query, selectivity)`` pairs.

        ``policy`` ("raise" / "drop" / "clamp") runs training-set
        sanitization first (see :class:`~repro.core.workload.TrainingSet`);
        the resulting quarantine report lands on ``self.sanitization_``.

        Returns ``self`` for chaining.
        """
        training = TrainingSet(queries, selectivities, policy=policy)
        self.sanitization_ = training.sanitization
        self._fit(training)
        self._fitted = True
        return self

    @abc.abstractmethod
    def _fit(self, training: TrainingSet) -> None:
        """Subclass hook: fit from a validated training set."""

    @abc.abstractmethod
    def _predict_one(self, query: Range) -> float:
        """Subclass hook: estimate the selectivity of one query."""

    def predict(self, query: Range) -> float:
        """Estimated selectivity of ``query``, always in ``[0, 1]``.

        The base class enforces the unit-interval invariant for every
        learner and baseline: finite raw estimates are clamped, and a
        non-finite raw estimate (a numerically broken model state) maps
        to 0.5 — the maximum-uncertainty answer — rather than leaking NaN
        into an optimizer's cost model.
        """
        self._check_fitted()
        raw = float(self._predict_one(query))
        if not np.isfinite(raw):
            return 0.5
        return float(np.clip(raw, 0.0, 1.0))

    def predict_many(self, queries: Sequence[Range]) -> np.ndarray:
        """Estimated selectivities for a sequence of queries."""
        self._check_fitted()
        return np.array([self.predict(q) for q in queries])

    @property
    @abc.abstractmethod
    def model_size(self) -> int:
        """Model complexity: the number of buckets / mixture components."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before predicting")

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({state})"
