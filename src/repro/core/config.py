"""Typed estimator configurations.

Every registry estimator is constructed from a frozen dataclass config
(``QuadHistConfig``, ``PtsHistConfig``, …) via
``Estimator.from_config(cfg)``; a fitted estimator exposes the exact
config it was built from as ``estimator.config``.  This makes model
construction *explicit and replayable*: a persisted artifact
(:mod:`repro.persistence`) records ``(registry name, config dict)`` in
its manifest and can therefore name its exact constructor when the
model is reloaded in another process, months later.

Design rules:

* Config field names map 1:1 to the estimator's constructor keywords
  (and to the attributes the constructor stores), so
  ``cls.from_config(cfg)`` and ``est.config`` round-trip losslessly.
* Configs are JSON-serialisable through :meth:`EstimatorConfig.to_dict`
  / :meth:`EstimatorConfig.from_dict`.  The only non-scalar field types
  are the optional ``domain`` :class:`~repro.geometry.ranges.Box`
  (encoded as ``{"lows": [...], "highs": [...]}``) and numeric tuples
  (encoded as JSON lists).
* The legacy keyword constructors (``QuadHist(tau=0.01)``) keep working
  as thin aliases but emit a :class:`DeprecationWarning`; new code goes
  through ``from_config``.

The mapping from registry names to config classes lives in
``CONFIG_TYPES`` so artifact manifests can be validated without
importing every estimator module.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict

from repro.geometry.ranges import Box

__all__ = [
    "EstimatorConfig",
    "QuadHistConfig",
    "KdHistConfig",
    "PtsHistConfig",
    "GaussianMixtureConfig",
    "ArrangementERMConfig",
    "IsomerConfig",
    "QuickSelConfig",
    "STHolesConfig",
    "UniformConfig",
    "MeanConfig",
    "CONFIG_TYPES",
    "config_from_dict",
]


@dataclass(frozen=True)
class EstimatorConfig:
    """Base class for typed, JSON-round-trippable estimator configs."""

    #: Registry name of the estimator this config constructs.
    estimator: ClassVar[str] = ""

    def kwargs(self) -> dict:
        """Constructor keyword arguments, field-for-field."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_dict(self) -> dict:
        """JSON-serialisable rendering (inverse of :meth:`from_dict`)."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Box):
                value = {"lows": value.lows.tolist(), "highs": value.highs.tolist()}
            elif isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "EstimatorConfig":
        """Rebuild a config from its :meth:`to_dict` encoding.

        Unknown keys raise — a manifest naming fields this version does
        not know about is a format skew, not something to ignore.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"{cls.__name__}.from_dict needs a dict, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} field(s) {unknown}; known: {sorted(known)}"
            )
        kwargs: dict = {}
        for name, value in data.items():
            if name == "domain" and isinstance(value, dict):
                value = Box(value["lows"], value["highs"])
            elif name == "bandwidths" and isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class QuadHistConfig(EstimatorConfig):
    """Config for :class:`~repro.core.quadhist.QuadHist` (Section 3.2)."""

    estimator: ClassVar[str] = "quadhist"

    tau: float = 0.01
    max_leaves: int | None = None
    max_depth: int = 20
    objective: str = "l2"
    solver: str = "penalty"
    domain: Box | None = None


@dataclass(frozen=True)
class KdHistConfig(EstimatorConfig):
    """Config for :class:`~repro.core.kdhist.KdHist`."""

    estimator: ClassVar[str] = "kdhist"

    tau: float = 0.01
    max_leaves: int | None = None
    max_depth: int = 60
    objective: str = "l2"
    solver: str = "penalty"
    domain: Box | None = None


@dataclass(frozen=True)
class PtsHistConfig(EstimatorConfig):
    """Config for :class:`~repro.core.ptshist.PtsHist` (Section 3.3)."""

    estimator: ClassVar[str] = "ptshist"

    size: int = 400
    interior_fraction: float = 0.9
    seed: int = 0
    objective: str = "l2"
    solver: str = "penalty"
    domain: Box | None = None


@dataclass(frozen=True)
class GaussianMixtureConfig(EstimatorConfig):
    """Config for :class:`~repro.core.gmm.GaussianMixtureHist`."""

    estimator: ClassVar[str] = "gmm"

    components: int = 200
    bandwidths: tuple[float, ...] = (0.02, 0.05, 0.12)
    interior_fraction: float = 0.9
    seed: int = 0
    objective: str = "l2"
    solver: str = "penalty"
    domain: Box | None = None


@dataclass(frozen=True)
class ArrangementERMConfig(EstimatorConfig):
    """Config for :class:`~repro.core.arrangement_erm.ArrangementERM`."""

    estimator: ClassVar[str] = "arrangement"

    mode: str = "discrete"
    seed: int = 0
    samples: int = 4096
    max_cells: int = 250_000
    solver: str = "pgd"
    domain: Box | None = None


@dataclass(frozen=True)
class IsomerConfig(EstimatorConfig):
    """Config for :class:`~repro.baselines.isomer.Isomer`."""

    estimator: ClassVar[str] = "isomer"

    max_buckets: int = 20_000
    slack: float = 1e-3
    domain: Box | None = None


@dataclass(frozen=True)
class QuickSelConfig(EstimatorConfig):
    """Config for :class:`~repro.baselines.quicksel.QuickSel`."""

    estimator: ClassVar[str] = "quicksel"

    constraint_weight: float = 1e4
    ridge: float = 1e-8
    domain: Box | None = None


@dataclass(frozen=True)
class STHolesConfig(EstimatorConfig):
    """Config for :class:`~repro.baselines.stholes.STHoles`."""

    estimator: ClassVar[str] = "stholes"

    max_buckets: int = 500
    domain: Box | None = None


@dataclass(frozen=True)
class UniformConfig(EstimatorConfig):
    """Config for :class:`~repro.baselines.trivial.UniformEstimator`."""

    estimator: ClassVar[str] = "uniform"

    domain: Box | None = None


@dataclass(frozen=True)
class MeanConfig(EstimatorConfig):
    """Config for :class:`~repro.baselines.trivial.MeanEstimator`."""

    estimator: ClassVar[str] = "mean"


#: Registry name → config class (what an artifact manifest's ``estimator``
#: field resolves to when rebuilding the constructor arguments).
CONFIG_TYPES: Dict[str, type[EstimatorConfig]] = {
    cfg.estimator: cfg
    for cfg in (
        QuadHistConfig,
        KdHistConfig,
        PtsHistConfig,
        GaussianMixtureConfig,
        ArrangementERMConfig,
        IsomerConfig,
        QuickSelConfig,
        STHolesConfig,
        UniformConfig,
        MeanConfig,
    )
}


def config_from_dict(estimator: str, data: dict) -> EstimatorConfig:
    """Rebuild the config for registry estimator ``estimator`` from JSON."""
    try:
        cfg_cls = CONFIG_TYPES[estimator]
    except KeyError:
        raise KeyError(
            f"no config class for estimator {estimator!r}; "
            f"known: {sorted(CONFIG_TYPES)}"
        ) from None
    return cfg_cls.from_dict(data)
