"""Append-only design matrices and delta refinement for incremental fits.

A full refit of a histogram learner repeats three phases over the whole
feedback history: re-partitioning (one Python tree descent per training
query — the dominant cost), rebuilding the ``(n_queries × n_buckets)``
design matrix, and a cold Eq. (8) solve.  When a feedback batch arrives,
almost all of that work reproduces state the model already has: the
partition rule is order-invariant (Lemma A.4), so old queries cannot
refine the tree further, and a design-matrix entry depends only on its
(query, bucket) pair, so rows for old queries against unchanged buckets
are already known.

This module holds the shared machinery for the cheap path:

* :class:`UpdateReport` — what one incremental update actually did
  (rows appended, leaves split, columns reused vs recomputed, solve
  residual), mirrored by the service metrics.
* :func:`assemble_design` — build the post-update design matrix from the
  cached block, recomputed columns for split buckets, and appended rows
  for the new feedback queries.
* :func:`split_warm_start` — remap the previous weight vector onto the
  refined partition (children of a split leaf inherit the parent weight
  by volume share) so the solver can resume instead of starting cold.
* :class:`IncrementalTreeHistogram` — the ``partial_fit`` implementation
  shared by the tree-partition histograms (QuadHist, KdHist).

The ``warm_start=False`` default keeps ``partial_fit`` numerically
equivalent to a from-scratch refit on the union history (box kernels are
bitwise identical between the cached and recomputed paths); passing
``warm_start=True`` buys the solver resume at the cost of a documented
tolerance — see ``docs/online_learning.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core._solve import solve_weights
from repro.core.workload import TrainingSet
from repro.distributions.histogram import HistogramDistribution
from repro.geometry.index import build_bucket_index
from repro.geometry.ranges import Range
from repro.geometry.sparse import sparse_coverage_matrix
from repro.geometry.volume import range_volume
from repro.observability.tracing import span

__all__ = [
    "UpdateReport",
    "assemble_design",
    "split_warm_start",
    "IncrementalTreeHistogram",
]


@dataclass
class UpdateReport:
    """What one incremental ``partial_fit`` actually did."""

    rows_appended: int
    rows_total: int
    buckets_before: int
    buckets_after: int
    columns_reused: int
    columns_recomputed: int
    warm_started: bool
    full_rebuild: bool
    seconds: float
    residual: float
    rung: str

    @property
    def leaves_split(self) -> int:
        """Net buckets added by this update's partition refinement."""
        return max(0, self.buckets_after - self.buckets_before)

    def to_dict(self) -> dict:
        return {
            "rows_appended": self.rows_appended,
            "rows_total": self.rows_total,
            "buckets_before": self.buckets_before,
            "buckets_after": self.buckets_after,
            "leaves_split": self.leaves_split,
            "columns_reused": self.columns_reused,
            "columns_recomputed": self.columns_recomputed,
            "warm_started": self.warm_started,
            "full_rebuild": self.full_rebuild,
            "seconds": round(self.seconds, 6),
            "residual": None if np.isnan(self.residual) else round(self.residual, 6),
            "rung": self.rung,
        }


def assemble_design(
    cached: np.ndarray,
    reused: np.ndarray,
    origin: np.ndarray,
    fresh_block: np.ndarray,
    new_rows: np.ndarray,
) -> np.ndarray:
    """Assemble the post-update design matrix without recomputing the
    cached block.

    Parameters
    ----------
    cached:
        Previous design matrix, shape ``(n_old, m_old)``.
    reused:
        Bool mask over the *new* columns: True where the bucket is
        unchanged and its old column can be copied verbatim.
    origin:
        For each new column, the old column index it maps to (itself for
        reused buckets, the split ancestor for fresh ones, ``-1`` for
        buckets with no predecessor).  Only the reused entries are read
        here.
    fresh_block:
        ``(n_old, n_fresh)`` — recomputed columns for the non-reused
        buckets, in new-column order.
    new_rows:
        ``(n_new, m_new)`` — design rows for the appended feedback
        queries against the full new bucket set.
    """
    n_old = cached.shape[0]
    m_new = reused.shape[0]
    top = np.empty((n_old, m_new), dtype=float)
    if reused.any():
        top[:, reused] = cached[:, origin[reused]]
    fresh = ~reused
    if fresh.any():
        top[:, fresh] = fresh_block
    if new_rows.shape[0] == 0:
        return top
    return np.concatenate([top, new_rows], axis=0)


def split_warm_start(
    old_weights: np.ndarray,
    reused: np.ndarray,
    origin: np.ndarray,
    new_volumes: np.ndarray,
    old_volumes: np.ndarray,
) -> np.ndarray:
    """Remap a weight vector onto the refined partition.

    Unchanged buckets keep their weight; children of a split bucket
    share the parent's weight proportionally to volume, so the remapped
    vector represents the *same* density function on the finer partition
    and still sums to one.
    """
    m_new = reused.shape[0]
    w0 = np.zeros(m_new)
    w0[reused] = old_weights[origin[reused]]
    fresh = ~reused & (origin >= 0)
    if fresh.any():
        parent_vol = old_volumes[origin[fresh]]
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(parent_vol > 0.0, new_volumes[fresh] / parent_vol, 0.0)
        w0[fresh] = old_weights[origin[fresh]] * np.clip(share, 0.0, 1.0)
    total = float(w0.sum())
    if total <= 0.0:
        return np.full(m_new, 1.0 / m_new)
    return w0 / total


class IncrementalTreeHistogram:
    """Shared incremental ``partial_fit`` for tree-partition histograms.

    Host classes (QuadHist, KdHist) provide: ``_root`` (nodes with
    ``.box``, ``.children``, ``.leaves()``), ``_descend`` (the per-query
    Algorithm 2 refinement, which must call :meth:`_note_split` after
    splitting a node), ``_history``, leaf arrays + ``_index``, and the
    ``objective`` / ``solver`` attributes consumed by
    :func:`~repro.core._solve.solve_weights`.
    """

    #: When not None, a dict mapping node id → old column index; the
    #: refinement loop records every node born during an incremental
    #: update so new leaves can be traced back to the bucket they split
    #: out of.  None during full fits (no recording overhead).
    _split_origin: dict | None = None
    #: Cached design matrix over the current history (row i = query i,
    #: column j = bucket j).  Doubles as the append-only row store; costs
    #: ``8 * n_history * n_buckets`` bytes while the model is mutable.
    _design_cache: np.ndarray | None = None
    #: What the last ``partial_fit`` did; None after a full fit.
    update_report_: UpdateReport | None = None

    def _note_split(self, node) -> None:
        """Record the old-column ancestry of a node's fresh children."""
        origins = self._split_origin
        if origins is None:
            return
        base = origins.get(id(node), -1)
        for child in node.children:
            origins[id(child)] = base

    def _refine(self, training: TrainingSet) -> None:
        """Run the per-query splitting rule for ``training`` only."""
        domain = self._root.box
        for sample in training:
            volume = range_volume(sample.query, domain)
            if volume <= 0.0 or sample.selectivity <= 0.0:
                continue
            density = sample.selectivity / volume
            self._descend(self._root, sample.query, density, 0)

    def _estimate_weights(
        self,
        training: TrainingSet,
        warm_start: np.ndarray | None = None,
    ) -> None:
        """Full design build + Eq. (8) solve (the cold path)."""
        leaves = list(self._root.leaves()) if self._root is not None else None
        with span(
            "fit/design-matrix",
            rows=len(training),
            buckets=int(self._leaf_volumes.shape[0]),
        ):
            design = sparse_coverage_matrix(
                training.queries, self._index, self._leaf_volumes
            )
        self._design_cache = design
        weights, self.solve_report_ = solve_weights(
            design,
            training.selectivities,
            objective=self.objective,
            solver=self.solver,
            warm_start=warm_start,
        )
        self._weights = weights
        boxes = [leaf.box for leaf in leaves] if leaves is not None else []
        self._distribution = HistogramDistribution(boxes, weights)

    def partial_fit(
        self,
        queries: Sequence[Range],
        selectivities: Sequence[float],
        warm_start: bool = False,
    ):
        """Incrementally absorb new query feedback.

        Bucket design is naturally incremental (Algorithm 1 processes
        queries one at a time, and by Lemma A.4 the final partition does
        not depend on arrival order), so new feedback only *refines* the
        existing tree: only the new batch descends the tree, only the
        columns of split buckets are recomputed, and the new queries'
        design rows are appended to the cached matrix.

        With ``warm_start=False`` (default) the weights are re-solved
        cold and the result matches refitting from scratch on the
        concatenated feedback (when no ``max_leaves`` cap binds).  With
        ``warm_start=True`` the solver resumes from the previous weight
        vector remapped onto the refined partition — much cheaper, equal
        to the cold solve within the solver tolerance.

        Calling ``partial_fit`` on an unfitted estimator is equivalent
        to ``fit``.
        """
        new = TrainingSet(queries, selectivities)
        if not self._fitted:
            self.fit(queries, selectivities)
            return self
        if self._root is None or self._history is None:
            raise RuntimeError(
                "partial_fit needs the partition tree and feedback history, "
                "which persisted artifacts do not carry; refit from scratch "
                "instead"
            )
        if new.dim != self._history.dim:
            raise ValueError("partial_fit dimension mismatch with earlier feedback")
        combined = TrainingSet(
            list(self._history.queries) + list(new.queries),
            np.concatenate([self._history.selectivities, new.selectivities]),
        )
        self._history = combined
        self._absorb_incremental(new, combined, warm_start=warm_start)
        return self

    def _absorb_incremental(
        self, new: TrainingSet, combined: TrainingSet, warm_start: bool
    ) -> None:
        started = time.perf_counter()
        old_leaves = list(self._root.leaves())
        old_col = {id(leaf): i for i, leaf in enumerate(old_leaves)}
        old_volumes = self._leaf_volumes
        old_weights = self._weights
        cached = self._design_cache
        n_new = len(new)
        n_old = len(combined) - n_new

        # Refine with the new batch only, recording which old bucket each
        # freshly created node descends from.
        self._split_origin = dict(old_col)
        try:
            with span("fit/partition", incremental=True) as partition_span:
                self._refine(new)
                leaves = list(self._root.leaves())
                partition_span.annotate(leaves=len(leaves))
            origins_map = self._split_origin
        finally:
            self._split_origin = None

        self._leaf_lows = np.stack([leaf.box.lows for leaf in leaves])
        self._leaf_highs = np.stack([leaf.box.highs for leaf in leaves])
        self._leaf_volumes = np.prod(self._leaf_highs - self._leaf_lows, axis=1)
        self._index = build_bucket_index(self._leaf_lows, self._leaf_highs)

        m_new = len(leaves)
        reused = np.fromiter(
            (id(leaf) in old_col for leaf in leaves), dtype=bool, count=m_new
        )
        origin = np.fromiter(
            (origins_map.get(id(leaf), -1) for leaf in leaves),
            dtype=np.int64,
            count=m_new,
        )

        usable_cache = cached is not None and cached.shape == (n_old, len(old_leaves))
        w0 = (
            split_warm_start(old_weights, reused, origin, self._leaf_volumes, old_volumes)
            if warm_start
            else None
        )
        if usable_cache:
            fresh = ~reused
            n_fresh = int(fresh.sum())
            with span(
                "fit/design-matrix",
                rows=n_new,
                buckets=m_new,
                incremental=True,
                fresh_columns=n_fresh,
            ):
                if n_fresh and n_old:
                    sub_index = build_bucket_index(
                        self._leaf_lows[fresh], self._leaf_highs[fresh]
                    )
                    fresh_block = sparse_coverage_matrix(
                        combined.queries[:n_old], sub_index, self._leaf_volumes[fresh]
                    )
                else:
                    fresh_block = np.zeros((n_old, n_fresh))
                if n_new:
                    new_rows = sparse_coverage_matrix(
                        new.queries, self._index, self._leaf_volumes
                    )
                else:
                    new_rows = np.zeros((0, m_new))
                design = assemble_design(cached, reused, origin, fresh_block, new_rows)
            self._design_cache = design
            weights, self.solve_report_ = solve_weights(
                design,
                combined.selectivities,
                objective=self.objective,
                solver=self.solver,
                warm_start=w0,
            )
            self._weights = weights
            self._distribution = HistogramDistribution(
                [leaf.box for leaf in leaves], weights
            )
        else:
            # No usable cached rows (e.g. history replaced out-of-band):
            # rebuild the matrix, but the warm start still applies.
            self._estimate_weights(combined, warm_start=w0)
        report = self.solve_report_
        self.update_report_ = UpdateReport(
            rows_appended=n_new,
            rows_total=len(combined),
            buckets_before=len(old_leaves),
            buckets_after=m_new,
            columns_reused=int(reused.sum()),
            columns_recomputed=int((~reused).sum()),
            warm_started=warm_start,
            full_rebuild=not usable_cache,
            seconds=time.perf_counter() - started,
            residual=report.residual if report is not None else float("nan"),
            rung=report.rung if report is not None else "",
        )
