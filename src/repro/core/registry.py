"""Estimator registry: one canonical name per learner/baseline.

The CLI, the property-test suite, and the serving layer all need "every
estimator we ship, by name, with sensible default hyper-parameters for a
given training size".  Keeping that list in one place means a newly added
estimator is automatically covered by the registry-wide invariant tests
(``tests/core/test_estimator_properties.py``) and selectable from the
command line.

Factories take the training-set size ``n`` (several models peg their
complexity to ``4 × n``, the paper's Section 4.1 convention) and return a
fresh, unfitted estimator.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.estimator import SelectivityEstimator

__all__ = ["register_estimator", "estimator_factories", "make_estimator"]

Factory = Callable[[int], SelectivityEstimator]

_FACTORIES: Dict[str, Factory] = {}
_DEFAULTS_LOADED = False


def register_estimator(name: str, factory: Factory) -> Factory:
    """Register ``factory`` under ``name`` (overwrites an existing entry)."""
    _FACTORIES[name] = factory
    return factory


def _load_defaults() -> None:
    # Imports are deferred so this module can live inside ``repro.core``
    # without creating an import cycle with ``repro.baselines``.
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    from repro.baselines import Isomer, MeanEstimator, QuickSel, UniformEstimator
    from repro.core.gmm import GaussianMixtureHist
    from repro.core.kdhist import KdHist
    from repro.core.ptshist import PtsHist
    from repro.core.quadhist import QuadHist

    defaults: Dict[str, Factory] = {
        "quadhist": lambda n: QuadHist(tau=0.005, max_leaves=4 * n),
        "kdhist": lambda n: KdHist(tau=0.005, max_leaves=4 * n),
        "ptshist": lambda n: PtsHist(size=4 * n, seed=0),
        "gmm": lambda n: GaussianMixtureHist(components=4 * n, seed=0),
        "isomer": lambda n: Isomer(max_buckets=10_000),
        "quicksel": lambda n: QuickSel(),
        "uniform": lambda n: UniformEstimator(),
        "mean": lambda n: MeanEstimator(),
    }
    for name, factory in defaults.items():
        _FACTORIES.setdefault(name, factory)
    _DEFAULTS_LOADED = True


def estimator_factories() -> Dict[str, Factory]:
    """All registered factories, name → factory (defaults included)."""
    _load_defaults()
    return dict(_FACTORIES)


def make_estimator(name: str, train_size: int = 200) -> SelectivityEstimator:
    """Instantiate the named estimator sized for ``train_size`` samples."""
    _load_defaults()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown estimator {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory(train_size)
