"""Estimator registry: one canonical name per learner/baseline.

The CLI, the property-test suite, the persistence layer, and the serving
layer all need "every estimator we ship, by name, with sensible default
hyper-parameters for a given training size".  Keeping that list in one
place means a newly added estimator is automatically covered by the
registry-wide invariant tests (``tests/core/test_estimator_properties.py``,
``tests/persistence/test_roundtrip.py``) and selectable from the command
line.

Each entry binds a registry name to an estimator class and a *sizer* —
a function mapping the training-set size ``n`` to a typed
:class:`~repro.core.config.EstimatorConfig` (several models peg their
complexity to ``4 × n``, the paper's Section 4.1 convention).
Construction always goes through ``cls.from_config(config)``, so a
registry-made estimator can always name its exact constructor — which is
what lets :mod:`repro.persistence` record ``(name, config)`` in an
artifact manifest and rebuild the estimator elsewhere.

``register_estimator`` still accepts a bare ``n -> estimator`` factory
for ad-hoc entries (tests, experiments); those are not config-driven and
therefore not persistable through the registry path.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, NamedTuple

from repro.core.config import EstimatorConfig
from repro.core.estimator import SelectivityEstimator

__all__ = [
    "register_estimator",
    "estimator_factories",
    "make_estimator",
    "available_estimators",
    "estimator_class",
    "default_config",
]

Factory = Callable[[int], SelectivityEstimator]


class _Entry(NamedTuple):
    cls: type[SelectivityEstimator]
    sizer: Callable[[int], EstimatorConfig]


_ENTRIES: Dict[str, _Entry] = {}
_CUSTOM_FACTORIES: Dict[str, Factory] = {}
_DEFAULTS_LOADED = False


def register_estimator(name: str, factory: Factory) -> Factory:
    """Register a bare ``n -> estimator`` factory under ``name``.

    Overwrites an existing entry of either kind.  For config-driven
    (persistable) registration, add a typed config class and an ``_ENTRIES``
    row instead.
    """
    _CUSTOM_FACTORIES[name] = factory
    _ENTRIES.pop(name, None)
    return factory


def _load_defaults() -> None:
    # Imports are deferred so this module can live inside ``repro.core``
    # without creating an import cycle with ``repro.baselines``.
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    from repro.baselines import Isomer, MeanEstimator, QuickSel, UniformEstimator
    from repro.baselines.stholes import STHoles
    from repro.core.arrangement_erm import ArrangementERM
    from repro.core.config import (
        ArrangementERMConfig,
        GaussianMixtureConfig,
        IsomerConfig,
        KdHistConfig,
        MeanConfig,
        PtsHistConfig,
        QuadHistConfig,
        QuickSelConfig,
        STHolesConfig,
        UniformConfig,
    )
    from repro.core.gmm import GaussianMixtureHist
    from repro.core.kdhist import KdHist
    from repro.core.ptshist import PtsHist
    from repro.core.quadhist import QuadHist

    defaults: Dict[str, _Entry] = {
        "quadhist": _Entry(
            QuadHist, lambda n: QuadHistConfig(tau=0.005, max_leaves=4 * n)
        ),
        "kdhist": _Entry(KdHist, lambda n: KdHistConfig(tau=0.005, max_leaves=4 * n)),
        "ptshist": _Entry(PtsHist, lambda n: PtsHistConfig(size=4 * n, seed=0)),
        "gmm": _Entry(
            GaussianMixtureHist,
            lambda n: GaussianMixtureConfig(components=4 * n, seed=0),
        ),
        "arrangement": _Entry(
            ArrangementERM, lambda n: ArrangementERMConfig(mode="discrete")
        ),
        "isomer": _Entry(Isomer, lambda n: IsomerConfig(max_buckets=10_000)),
        "quicksel": _Entry(QuickSel, lambda n: QuickSelConfig()),
        "stholes": _Entry(STHoles, lambda n: STHolesConfig(max_buckets=4 * n)),
        "uniform": _Entry(UniformEstimator, lambda n: UniformConfig()),
        "mean": _Entry(MeanEstimator, lambda n: MeanConfig()),
    }
    for name, entry in defaults.items():
        if name not in _ENTRIES and name not in _CUSTOM_FACTORIES:
            _ENTRIES[name] = entry
    _DEFAULTS_LOADED = True


def available_estimators() -> list[str]:
    """Sorted names of every registered estimator."""
    _load_defaults()
    return sorted({**_ENTRIES, **_CUSTOM_FACTORIES})


def estimator_class(name: str) -> type[SelectivityEstimator]:
    """The estimator class registered under ``name`` (config-driven entries)."""
    _load_defaults()
    try:
        return _ENTRIES[name].cls
    except KeyError:
        raise KeyError(
            f"unknown estimator {name!r}; choose from {available_estimators()}"
        ) from None


def default_config(name: str, train_size: int = 200) -> EstimatorConfig:
    """The default config for ``name`` sized for ``train_size`` samples."""
    _load_defaults()
    try:
        entry = _ENTRIES[name]
    except KeyError:
        raise KeyError(
            f"unknown estimator {name!r}; choose from {available_estimators()}"
        ) from None
    return entry.sizer(train_size)


def estimator_factories() -> Dict[str, Factory]:
    """All registered factories, name → factory (defaults included)."""
    _load_defaults()

    def bind(entry: _Entry) -> Factory:
        return lambda n: entry.cls.from_config(entry.sizer(n))

    factories: Dict[str, Factory] = {
        name: bind(entry) for name, entry in _ENTRIES.items()
    }
    factories.update(_CUSTOM_FACTORIES)
    return factories


def make_estimator(
    name: str,
    train_size: int = 200,
    config: EstimatorConfig | None = None,
    **overrides,
) -> SelectivityEstimator:
    """Instantiate the named estimator sized for ``train_size`` samples.

    ``config`` replaces the default config outright; ``overrides`` patch
    individual fields of the default (e.g. ``make_estimator("quadhist",
    train_size=100, tau=0.02)``).  Unknown names raise :class:`KeyError`
    listing every registered estimator, so typos fail at construction
    time rather than surfacing later as a missing model.
    """
    _load_defaults()
    if name in _CUSTOM_FACTORIES:
        if config is not None or overrides:
            raise ValueError(
                f"estimator {name!r} uses a custom factory; config/overrides "
                "do not apply"
            )
        return _CUSTOM_FACTORIES[name](train_size)
    try:
        entry = _ENTRIES[name]
    except KeyError:
        raise KeyError(
            f"unknown estimator {name!r}; choose from {available_estimators()}"
        ) from None
    if config is None:
        config = entry.sizer(train_size)
    if overrides:
        config = replace(config, **overrides)
    return entry.cls.from_config(config)
