"""KdHist — a kd-tree variant of QuadHist for higher dimensions.

QuadHist splits a leaf into ``2^d`` children, which breaks down as ``d``
grows: a single split at ``d = 10`` creates 1024 buckets, instantly
exhausting any reasonable model-size budget (our Figure 18/19 benchmark
measures exactly that degeneration).  KdHist keeps the paper's bucket-
design *rule* — split a leaf whose estimated density share
``Vol(u ∩ R)/Vol(R) · s(R)`` exceeds ``τ`` — but replaces the split
*shape* with a kd-tree bisection: one leaf becomes two halves along a
single axis (cycling through axes by depth, halving at the midpoint).

Everything else is identical to QuadHist: the buckets are disjoint boxes
partitioning the domain, weights solve Eq. (8) on the simplex, and the
model supports any query class with computable box-intersection volumes.

Like QuadHist, the partition is order-invariant: the split rule for a
fixed node depends only on whether *some* training query pushes it over
``τ``, and splitting is monotone (more refinement never prevents other
refinement) — the same argument as Lemma A.4.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Iterator, Sequence

import numpy as np

from repro.core.config import KdHistConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.incremental import IncrementalTreeHistogram
from repro.core.workload import TrainingSet
from repro.distributions.histogram import HistogramDistribution
from repro.geometry.batch import coverage_dot
from repro.geometry.index import BucketIndex, build_bucket_index
from repro.geometry.sparse import sparse_coverage_dot
from repro.observability.tracing import span
from repro.geometry.ranges import Box, Range, unit_box
from repro.geometry.volume import (
    batch_intersection_volumes,
    intersection_volume,
    range_volume,
)
from repro.solvers.simplex_ls import SolveReport

__all__ = ["KdHist"]


class _KdNode:
    """A kd-tree node covering an axis-aligned box."""

    __slots__ = ("box", "axis", "children")

    def __init__(self, box: Box, axis: int):
        self.box = box
        self.axis = axis  # the axis this node splits on (when split)
        self.children: list[_KdNode] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def split(self) -> None:
        mid = 0.5 * (self.box.lows[self.axis] + self.box.highs[self.axis])
        left_highs = self.box.highs.copy()
        left_highs[self.axis] = mid
        right_lows = self.box.lows.copy()
        right_lows[self.axis] = mid
        next_axis = (self.axis + 1) % self.box.dim
        self.children = [
            _KdNode(Box(self.box.lows.copy(), left_highs), next_axis),
            _KdNode(Box(right_lows, self.box.highs.copy()), next_axis),
        ]

    def leaves(self) -> Iterator["_KdNode"]:
        if self.is_leaf:
            yield self
        else:
            for child in self.children:
                yield from child.leaves()


class KdHist(IncrementalTreeHistogram, SelectivityEstimator):
    """Binary-split histogram: QuadHist's rule with kd-tree geometry.

    Parameters mirror :class:`~repro.core.quadhist.QuadHist`; ``max_depth``
    defaults higher because each level only halves one axis (depth ``d*k``
    in KdHist reaches the granularity of depth ``k`` in QuadHist).

    Like QuadHist, KdHist supports incremental ``partial_fit`` (from
    :class:`~repro.core.incremental.IncrementalTreeHistogram`): binary
    splits are order-invariant under the same Lemma A.4 argument, so a
    feedback batch refines the existing kd-tree in place.
    """

    Config: ClassVar = KdHistConfig

    def __init__(
        self,
        tau: float = 0.01,
        max_leaves: int | None = None,
        max_depth: int = 60,
        objective: str = "l2",
        solver: str = "penalty",
        domain: Box | None = None,
    ):
        super().__init__()
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        if max_leaves is not None and max_leaves < 1:
            raise ValueError(f"max_leaves must be >= 1, got {max_leaves}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if objective not in ("l2", "linf"):
            raise ValueError(f"objective must be 'l2' or 'linf', got {objective!r}")
        self.tau = float(tau)
        self.max_leaves = max_leaves
        self.max_depth = int(max_depth)
        self.objective = objective
        self.solver = solver
        self.domain = domain
        #: How the last weight solve was produced (fallback ladder record).
        self.solve_report_: SolveReport | None = None
        self._root: _KdNode | None = None
        self._history: TrainingSet | None = None
        self._distribution: HistogramDistribution | None = None
        self._leaf_lows: np.ndarray | None = None
        self._leaf_highs: np.ndarray | None = None
        self._leaf_volumes: np.ndarray | None = None
        self._index: BucketIndex | None = None
        self._weights: np.ndarray | None = None
        self._design_cache: np.ndarray | None = None
        self.update_report_ = None

    def _fit(self, training: TrainingSet) -> None:
        domain = self.domain if self.domain is not None else unit_box(training.dim)
        if domain.dim != training.dim:
            raise ValueError("domain dimension does not match the training queries")
        self._root = _KdNode(domain, axis=0)
        self._leaf_count = 1
        self._history = training
        with span("fit/partition") as partition_span:
            for sample in training:
                volume = range_volume(sample.query, domain)
                if volume <= 0.0 or sample.selectivity <= 0.0:
                    continue
                density = sample.selectivity / volume
                self._update(self._root, sample.query, density, depth=0)

            leaves = list(self._root.leaves())
            partition_span.annotate(leaves=len(leaves))
        self._leaf_lows = np.stack([leaf.box.lows for leaf in leaves])
        self._leaf_highs = np.stack([leaf.box.highs for leaf in leaves])
        self._leaf_volumes = np.prod(self._leaf_highs - self._leaf_lows, axis=1)
        self._index = build_bucket_index(self._leaf_lows, self._leaf_highs)
        self._estimate_weights(training)

    def _update(self, node: _KdNode, query: Range, density: float, depth: int) -> None:
        overlap = intersection_volume(node.box, query)
        if overlap * density <= self.tau:
            return
        if node.is_leaf:
            if depth >= self.max_depth:
                return
            if self.max_leaves is not None and self._leaf_count + 1 > self.max_leaves:
                return
            node.split()
            self._leaf_count += 1
            self._note_split(node)
        for child in node.children:
            self._update(child, query, density, depth + 1)

    # The shared incremental machinery descends via this alias.
    _descend = _update

    def _fraction_row(self, query: Range) -> np.ndarray:
        overlaps = batch_intersection_volumes(self._leaf_lows, self._leaf_highs, query)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(self._leaf_volumes > 0, overlaps / self._leaf_volumes, 0.0)
        return np.clip(fractions, 0.0, 1.0)

    def _predict_one(self, query: Range) -> float:
        return float(self._fraction_row(query) @ self._weights)

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray:
        if self._index is not None:
            return sparse_coverage_dot(
                queries, self._index, self._leaf_volumes, self._weights
            )
        return coverage_dot(
            queries, self._leaf_lows, self._leaf_highs, self._leaf_volumes, self._weights
        )

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return int(self._weights.shape[0])

    @property
    def distribution(self) -> HistogramDistribution:
        """The learned histogram distribution."""
        self._check_fitted()
        return self._distribution

    def leaf_boxes(self) -> list[Box]:
        """The kd-tree leaves = histogram buckets."""
        self._check_fitted()
        return list(self._distribution.buckets)

    def _state_dict(self) -> Dict[str, object]:
        state: Dict[str, object] = {
            "leaf_lows": self._leaf_lows,
            "leaf_highs": self._leaf_highs,
            "leaf_volumes": self._leaf_volumes,
            "weights": self._weights,
        }
        for key, value in self._distribution.to_state().items():
            state[f"distribution.{key}"] = value
        return state

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        self._leaf_lows = np.asarray(state["leaf_lows"], dtype=float)
        self._leaf_highs = np.asarray(state["leaf_highs"], dtype=float)
        self._leaf_volumes = np.asarray(state["leaf_volumes"], dtype=float)
        self._weights = np.asarray(state["weights"], dtype=float)
        # Rebuilt deterministically from the persisted bucket arrays; the
        # index itself is never serialised.
        self._index = build_bucket_index(self._leaf_lows, self._leaf_highs)
        self._distribution = HistogramDistribution.from_state(
            {
                key.split(".", 1)[1]: value
                for key, value in state.items()
                if key.startswith("distribution.")
            }
        )
        self._root = None
        self._history = None
        self._design_cache = None
