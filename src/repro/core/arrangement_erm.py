"""Arrangement-based exact empirical-risk minimiser (Section 3.1).

The generic procedure of Section 3.1 chooses buckets from the arrangement
of the training ranges, then estimates weights with Eq. (8).  By Lemma 3.1
the result minimises the empirical loss over *all* histograms (resp. all
discrete distributions) — no bounded-complexity family can do better on the
training sample.  Its cost grows exponentially with dimension, which is the
paper's motivation for the bounded-complexity QuadHist/PtsHist learners.

Two modes:

* ``mode="histogram"`` — exact grid refinement of the box arrangement
  (orthogonal ranges only; low dimension),
* ``mode="discrete"`` — one representative point per distinct arrangement
  cell, discovered by Monte-Carlo sign vectors (any query class).
"""

from __future__ import annotations

from typing import ClassVar, Dict, Sequence

import numpy as np

from repro.core.config import ArrangementERMConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.workload import TrainingSet
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.geometry.arrangement import box_arrangement_cells, sign_vector_cells
from repro.geometry.batch import coverage_dot
from repro.geometry.index import BucketIndex, build_bucket_index
from repro.geometry.sparse import (
    sparse_containment_matrix,
    sparse_coverage_dot,
    sparse_coverage_matrix,
)
from repro.geometry.ranges import Box, Range, unit_box
from repro.geometry.volume import batch_intersection_volumes
from repro.core._solve import solve_weights
from repro.observability.tracing import span
from repro.solvers.simplex_ls import SolveReport

__all__ = ["ArrangementERM"]


class ArrangementERM(SelectivityEstimator):
    """Exact ERM over histograms / discrete distributions (Lemma 3.1).

    Parameters
    ----------
    mode:
        ``"histogram"`` (boxes only) or ``"discrete"`` (any ranges).
    seed:
        Seed for the sign-vector sampler in discrete mode.
    samples:
        Monte-Carlo points used to discover arrangement cells in discrete
        mode.
    max_cells:
        Guard on the exact grid size in histogram mode.
    solver:
        Simplex-LS method (``"pgd"`` by default: Lemma 3.1's optimality
        claim needs the exact constrained minimiser, not the penalty
        approximation).
    """

    Config: ClassVar = ArrangementERMConfig

    def __init__(
        self,
        mode: str = "discrete",
        seed: int = 0,
        samples: int = 4096,
        max_cells: int = 250_000,
        solver: str = "pgd",
        domain: Box | None = None,
    ):
        super().__init__()
        if mode not in ("histogram", "discrete"):
            raise ValueError(f"mode must be 'histogram' or 'discrete', got {mode!r}")
        self.mode = mode
        self.seed = int(seed)
        self.samples = int(samples)
        self.max_cells = int(max_cells)
        self.solver = solver
        self.domain = domain
        #: How the last weight solve was produced (fallback ladder record).
        self.solve_report_: SolveReport | None = None
        self._histogram: HistogramDistribution | None = None
        self._discrete: DiscreteDistribution | None = None
        self._cell_lows: np.ndarray | None = None
        self._cell_highs: np.ndarray | None = None
        self._cell_volumes: np.ndarray | None = None
        self._index: BucketIndex | None = None
        self._weights: np.ndarray | None = None

    def _fit(self, training: TrainingSet) -> None:
        domain = self.domain if self.domain is not None else unit_box(training.dim)
        if self.mode == "histogram":
            if not all(isinstance(q, Box) for q in training.queries):
                raise TypeError("histogram mode requires orthogonal-range (Box) queries")
            with span("fit/partition", mode=self.mode) as partition_span:
                cells = box_arrangement_cells(
                    list(training.queries), domain=domain, max_cells=self.max_cells
                )
                cells = [c for c in cells if c.volume() > 0.0]
                partition_span.annotate(cells=len(cells))
            self._cell_lows = np.stack([c.lows for c in cells])
            self._cell_highs = np.stack([c.highs for c in cells])
            self._cell_volumes = np.prod(self._cell_highs - self._cell_lows, axis=1)
            self._index = build_bucket_index(self._cell_lows, self._cell_highs)
            with span("fit/design-matrix", rows=len(training), buckets=len(cells)):
                design = sparse_coverage_matrix(
                    training.queries, self._index, self._cell_volumes
                )
            weights, self.solve_report_ = solve_weights(
                design, training.selectivities, solver=self.solver
            )
            self._weights = weights
            self._histogram = HistogramDistribution(cells, weights)
        else:
            rng = np.random.default_rng(self.seed)
            with span("fit/partition", mode=self.mode) as partition_span:
                points = sign_vector_cells(
                    list(training.queries), rng, domain=domain, samples=self.samples
                )
                partition_span.annotate(cells=len(points))
            point_index = build_bucket_index(points, points)
            with span("fit/design-matrix", rows=len(training), buckets=len(points)):
                design = sparse_containment_matrix(training.queries, point_index)
            weights, self.solve_report_ = solve_weights(
                design, training.selectivities, solver=self.solver
            )
            self._discrete = DiscreteDistribution(points, weights)
            self._discrete._index = point_index

    def _fraction_row(self, query: Range) -> np.ndarray:
        overlaps = batch_intersection_volumes(self._cell_lows, self._cell_highs, query)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(self._cell_volumes > 0, overlaps / self._cell_volumes, 0.0)
        return np.clip(fractions, 0.0, 1.0)

    def _predict_one(self, query: Range) -> float:
        if self.mode == "histogram":
            return float(self._fraction_row(query) @ self._weights)
        return self._discrete.selectivity(query)

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray:
        if self.mode == "histogram":
            if self._index is not None:
                return sparse_coverage_dot(
                    queries, self._index, self._cell_volumes, self._weights
                )
            return coverage_dot(
                queries, self._cell_lows, self._cell_highs, self._cell_volumes, self._weights
            )
        return self._discrete.selectivity_many(queries)

    @property
    def model_size(self) -> int:
        self._check_fitted()
        if self.mode == "histogram":
            return int(self._weights.shape[0])
        return self._discrete.size

    @property
    def distribution(self):
        """The learned distribution (histogram or discrete, per ``mode``)."""
        self._check_fitted()
        return self._histogram if self.mode == "histogram" else self._discrete

    def _state_dict(self) -> Dict[str, object]:
        if self.mode == "histogram":
            state: Dict[str, object] = {
                "cell_lows": self._cell_lows,
                "cell_highs": self._cell_highs,
                "cell_volumes": self._cell_volumes,
                "weights": self._weights,
            }
            for key, value in self._histogram.to_state().items():
                state[f"distribution.{key}"] = value
            return state
        return {
            f"distribution.{key}": value
            for key, value in self._discrete.to_state().items()
        }

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        nested = {
            key.split(".", 1)[1]: value
            for key, value in state.items()
            if key.startswith("distribution.")
        }
        if self.mode == "histogram":
            self._cell_lows = np.asarray(state["cell_lows"], dtype=float)
            self._cell_highs = np.asarray(state["cell_highs"], dtype=float)
            self._cell_volumes = np.asarray(state["cell_volumes"], dtype=float)
            self._weights = np.asarray(state["weights"], dtype=float)
            # Rebuilt deterministically from the persisted cell arrays; the
            # index itself is never serialised.
            self._index = build_bucket_index(self._cell_lows, self._cell_highs)
            self._histogram = HistogramDistribution.from_state(nested)
        else:
            self._discrete = DiscreteDistribution.from_state(nested)
            self._discrete.attach_index()
