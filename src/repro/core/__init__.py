"""The paper's primary contribution: generic learned selectivity estimators.

* :class:`~repro.core.estimator.SelectivityEstimator` — the public
  fit/predict API shared by our learners and the baselines.
* :class:`~repro.core.quadhist.QuadHist` — Section 3.2's quadtree histogram.
* :class:`~repro.core.ptshist.PtsHist` — Section 3.3's discrete model.
* :class:`~repro.core.arrangement_erm.ArrangementERM` — Section 3.1's
  arrangement-based exact empirical-risk minimiser (Lemma 3.1).
"""

from repro.core.config import (
    ArrangementERMConfig,
    EstimatorConfig,
    GaussianMixtureConfig,
    IsomerConfig,
    KdHistConfig,
    MeanConfig,
    PtsHistConfig,
    QuadHistConfig,
    QuickSelConfig,
    STHolesConfig,
    UniformConfig,
)
from repro.core.estimator import SelectivityEstimator
from repro.core.quadhist import QuadHist
from repro.core.ptshist import PtsHist
from repro.core.arrangement_erm import ArrangementERM
from repro.core.gmm import GaussianMixtureHist
from repro.core.kdhist import KdHist
from repro.core.registry import (
    available_estimators,
    default_config,
    estimator_class,
    make_estimator,
)
from repro.core.workload import LabeledQuery, TrainingSet

__all__ = [
    "SelectivityEstimator",
    "QuadHist",
    "PtsHist",
    "ArrangementERM",
    "GaussianMixtureHist",
    "KdHist",
    "LabeledQuery",
    "TrainingSet",
    "EstimatorConfig",
    "QuadHistConfig",
    "KdHistConfig",
    "PtsHistConfig",
    "GaussianMixtureConfig",
    "ArrangementERMConfig",
    "IsomerConfig",
    "QuickSelConfig",
    "STHolesConfig",
    "UniformConfig",
    "MeanConfig",
    "available_estimators",
    "default_config",
    "estimator_class",
    "make_estimator",
]
