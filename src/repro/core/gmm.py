"""GaussianMixtureHist — the paper's future-work model, as an extension.

Section 6 lists "developing an algorithm that computes a Gaussian mixture
(or another model) with a small loss given a training sample" as an open
problem.  This module contributes a practical instance that stays inside
the paper's own two-phase recipe:

1. **Component design** (mirrors PtsHist's bucket design): component means
   are sampled from training-query interiors proportionally to selectivity
   (plus a uniform share), and each component gets a diagonal covariance
   drawn from a small bandwidth grid.
2. **Weight estimation** (identical to Eq. 8): the mixture weights solve
   the simplex-constrained least squares over the design matrix
   ``A[i, j] = mass_j(R_i)``, the probability mass of component ``j``
   inside query ``i``.

Component masses are exact for orthogonal ranges and halfspaces (Gaussian
CDFs; a 1-D projection for halfspaces since diagonal Gaussians are jointly
normal along any direction) and quasi-Monte-Carlo for other ranges.

Because the weights live on the probability simplex and each component is
a genuine (diagonal) Gaussian, the learned model is a *bona fide* Gaussian
mixture — a member of a distribution family with unbounded support, which
the paper points out its framework already covers.
"""

from __future__ import annotations

from typing import ClassVar, Dict

import numpy as np
from scipy.stats import norm, qmc

from repro.core.config import GaussianMixtureConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.workload import TrainingSet
from repro.geometry.ranges import Box, Halfspace, Range, unit_box
from repro.geometry.sampling import rejection_sample, sample_in_box
from repro.observability.tracing import span
from repro.solvers.linf import fit_simplex_weights_linf
from repro.solvers.simplex_ls import fit_simplex_weights

__all__ = ["GaussianMixtureHist"]

#: Quasi-MC sample size for component masses of non-box/halfspace ranges.
_QMC_POINTS = 2048


class GaussianMixtureHist(SelectivityEstimator):
    """A query-driven Gaussian-mixture selectivity estimator.

    Parameters
    ----------
    components:
        Number of mixture components ``k``.
    bandwidths:
        Candidate per-axis standard deviations; each component draws its
        diagonal covariance entries from this grid.  Smaller bandwidths
        give spikier mixtures (more histogram-like), larger ones smooth.
    interior_fraction:
        Share of component means sampled from query interiors
        (vs uniformly), as in PtsHist.
    seed / objective / solver / domain:
        As in :class:`~repro.core.ptshist.PtsHist`.
    """

    Config: ClassVar = GaussianMixtureConfig

    def __init__(
        self,
        components: int = 200,
        bandwidths: tuple[float, ...] = (0.02, 0.05, 0.12),
        interior_fraction: float = 0.9,
        seed: int = 0,
        objective: str = "l2",
        solver: str = "penalty",
        domain: Box | None = None,
    ):
        super().__init__()
        if components < 1:
            raise ValueError(f"components must be >= 1, got {components}")
        if not bandwidths or any(b <= 0 for b in bandwidths):
            raise ValueError(f"bandwidths must be positive, got {bandwidths}")
        if not 0.0 <= interior_fraction <= 1.0:
            raise ValueError(
                f"interior_fraction must be in [0, 1], got {interior_fraction}"
            )
        if objective not in ("l2", "linf"):
            raise ValueError(f"objective must be 'l2' or 'linf', got {objective!r}")
        self.components = int(components)
        self.bandwidths = tuple(float(b) for b in bandwidths)
        self.interior_fraction = float(interior_fraction)
        self.seed = int(seed)
        self.objective = objective
        self.solver = solver
        self.domain = domain
        self._means: np.ndarray | None = None
        self._sigmas: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self._qmc_normal: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Component design
    # ------------------------------------------------------------------

    def _fit(self, training: TrainingSet) -> None:
        domain = self.domain if self.domain is not None else unit_box(training.dim)
        if domain.dim != training.dim:
            raise ValueError("domain dimension does not match the training queries")
        rng = np.random.default_rng(self.seed)
        with span("fit/partition", components=self.components):
            means = self._design_means(training, domain, rng)
            sigma_choices = rng.choice(
                len(self.bandwidths), size=(self.components, training.dim)
            )
            sigmas = np.asarray(self.bandwidths)[sigma_choices]
            self._means = means
            self._sigmas = sigmas
            # Fixed standard-normal QMC points for non-analytic range masses.
            sampler = qmc.Sobol(d=training.dim, scramble=True, seed=self.seed + 1)
            uniform = np.clip(sampler.random(_QMC_POINTS), 1e-9, 1 - 1e-9)
            self._qmc_normal = norm.ppf(uniform)

        with span("fit/design-matrix", rows=len(training), buckets=self.components):
            design = np.stack([self._mass_row(q) for q in training.queries])
        with span("fit/solve", objective=self.objective, rows=len(training)):
            if self.objective == "linf":
                weights = fit_simplex_weights_linf(design, training.selectivities)
            else:
                weights = fit_simplex_weights(
                    design, training.selectivities, method=self.solver
                )
        self._weights = weights

    def _design_means(
        self, training: TrainingSet, domain: Box, rng: np.random.Generator
    ) -> np.ndarray:
        n_interior = int(round(self.interior_fraction * self.components))
        n_uniform = self.components - n_interior
        total_sel = float(training.selectivities.sum())
        chunks: list[np.ndarray] = []
        if n_interior > 0 and total_sel > 0:
            raw = training.selectivities / total_sel * n_interior
            counts = np.floor(raw).astype(int)
            shortfall = n_interior - int(counts.sum())
            if shortfall > 0:
                order = np.argsort(-(raw - counts))
                counts[order[:shortfall]] += 1
            for query, count in zip(training.queries, counts):
                if count > 0:
                    chunks.append(rejection_sample(query, int(count), rng, domain))
        else:
            n_uniform = self.components
        if n_uniform > 0:
            chunks.append(sample_in_box(domain, n_uniform, rng))
        means = np.concatenate(chunks, axis=0)
        if means.shape[0] < self.components:
            extra = sample_in_box(domain, self.components - means.shape[0], rng)
            means = np.concatenate([means, extra], axis=0)
        return means[: self.components]

    # ------------------------------------------------------------------
    # Component masses
    # ------------------------------------------------------------------

    def _mass_row(self, query: Range) -> np.ndarray:
        """``P[X_j in R]`` for every component ``j`` (one design row)."""
        if isinstance(query, Box):
            return self._box_masses(query)
        if isinstance(query, Halfspace):
            return self._halfspace_masses(query)
        return self._qmc_masses(query)

    def _box_masses(self, box: Box) -> np.ndarray:
        upper = norm.cdf((box.highs[None, :] - self._means) / self._sigmas)
        lower = norm.cdf((box.lows[None, :] - self._means) / self._sigmas)
        return np.prod(np.maximum(upper - lower, 0.0), axis=1)

    def _halfspace_masses(self, halfspace: Halfspace) -> np.ndarray:
        # a.X is normal with mean a.mu and variance sum_i a_i^2 sigma_i^2
        # for a diagonal Gaussian X; P[a.X >= b] = 1 - Phi((b - mu')/s').
        mean_proj = self._means @ halfspace.normal
        var_proj = (self._sigmas**2) @ (halfspace.normal**2)
        std_proj = np.sqrt(np.maximum(var_proj, 1e-30))
        return 1.0 - norm.cdf((halfspace.offset - mean_proj) / std_proj)

    def _qmc_masses(self, query: Range) -> np.ndarray:
        masses = np.empty(self.components)
        for j in range(self.components):
            points = self._means[j] + self._qmc_normal * self._sigmas[j]
            masses[j] = float(np.mean(query.contains(points)))
        return masses

    # ------------------------------------------------------------------
    # Prediction & introspection
    # ------------------------------------------------------------------

    def _predict_one(self, query: Range) -> float:
        return float(self._mass_row(query) @ self._weights)

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return int(self._weights.shape[0])

    def density(self, points: np.ndarray) -> np.ndarray:
        """Mixture density at the given points (unbounded support)."""
        self._check_fitted()
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        # (n, k): per-component densities via the diagonal-Gaussian product.
        z = (pts[:, None, :] - self._means[None, :, :]) / self._sigmas[None, :, :]
        log_norm = -0.5 * np.sum(z**2, axis=2) - np.sum(
            np.log(self._sigmas[None, :, :] * np.sqrt(2 * np.pi)), axis=2
        )
        values = np.exp(log_norm) @ self._weights
        return float(values[0]) if single else values

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` points from the learned mixture."""
        self._check_fitted()
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        choices = rng.choice(self.components, size=count, p=self._weights)
        noise = rng.normal(size=(count, self._means.shape[1]))
        return self._means[choices] + noise * self._sigmas[choices]

    def _state_dict(self) -> Dict[str, object]:
        # _qmc_normal is part of the fitted model: it fixes the QMC masses
        # used for non-analytic ranges, so persisting it keeps predictions
        # bitwise-identical across save/load.
        return {
            "means": self._means,
            "sigmas": self._sigmas,
            "weights": self._weights,
            "qmc_normal": self._qmc_normal,
        }

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        self._means = np.asarray(state["means"], dtype=float)
        self._sigmas = np.asarray(state["sigmas"], dtype=float)
        self._weights = np.asarray(state["weights"], dtype=float)
        self._qmc_normal = np.asarray(state["qmc_normal"], dtype=float)
