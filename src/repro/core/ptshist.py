"""PtsHist — the discrete-distribution learner of Section 3.3.

Designed for higher dimensions, where boxes are poor representations of
data distributions and box∩range volumes get expensive.  Buckets are
*points* in the data space:

1. ``interior_fraction * k`` points are drawn from the interiors of the
   training ranges, each range receiving a share of points proportional to
   its observed selectivity (``s_i / Σ_j s_j``);
2. the remaining points are drawn uniformly from the whole domain, so
   density can be allocated to regions no training query covers.

Sampling from non-box ranges uses the rejection sampler of Appendix A.2.
Weights are then fitted by the same generic simplex-constrained least
squares (Eq. 8) on the 0/1 membership design matrix (Eq. 7).
"""

from __future__ import annotations

from typing import ClassVar, Dict, Sequence

import numpy as np

from repro.core.config import PtsHistConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.workload import TrainingSet
from repro.distributions.discrete import DiscreteDistribution
from repro.geometry.index import build_bucket_index
from repro.geometry.sparse import sparse_containment_matrix
from repro.geometry.ranges import Box, Range, unit_box
from repro.geometry.sampling import rejection_sample, sample_in_box
from repro.core._solve import solve_weights
from repro.observability.tracing import span
from repro.solvers.simplex_ls import SolveReport

__all__ = ["PtsHist"]


class PtsHist(SelectivityEstimator):
    """The paper's PtsHist estimator.

    Parameters
    ----------
    size:
        Target model size ``k`` (number of support points).  The paper pegs
        this to ``4 ×`` the number of training queries in most experiments.
    interior_fraction:
        Share of points drawn from query interiors (paper: 0.9; the rest is
        uniform over the domain).
    seed:
        Seed for the bucket-sampling generator; fitting is deterministic
        given the seed.
    objective / solver / domain:
        As in :class:`~repro.core.quadhist.QuadHist`.
    """

    Config: ClassVar = PtsHistConfig

    def __init__(
        self,
        size: int = 400,
        interior_fraction: float = 0.9,
        seed: int = 0,
        objective: str = "l2",
        solver: str = "penalty",
        domain: Box | None = None,
    ):
        super().__init__()
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not 0.0 <= interior_fraction <= 1.0:
            raise ValueError(
                f"interior_fraction must be in [0, 1], got {interior_fraction}"
            )
        if objective not in ("l2", "linf"):
            raise ValueError(f"objective must be 'l2' or 'linf', got {objective!r}")
        self.size = int(size)
        self.interior_fraction = float(interior_fraction)
        self.seed = int(seed)
        self.objective = objective
        self.solver = solver
        self.domain = domain
        #: How the last weight solve was produced (fallback ladder record).
        self.solve_report_: SolveReport | None = None
        self._distribution: DiscreteDistribution | None = None

    def _fit(self, training: TrainingSet) -> None:
        domain = self.domain if self.domain is not None else unit_box(training.dim)
        if domain.dim != training.dim:
            raise ValueError("domain dimension does not match the training queries")
        rng = np.random.default_rng(self.seed)
        with span("fit/partition", size=self.size):
            points = self._design_buckets(training, domain, rng)
        index = build_bucket_index(points, points)
        with span("fit/design-matrix", rows=len(training), buckets=len(points)):
            design = sparse_containment_matrix(training.queries, index)
        weights, self.solve_report_ = solve_weights(
            design, training.selectivities, objective=self.objective, solver=self.solver
        )
        self._distribution = DiscreteDistribution(points, weights)
        self._distribution._index = index

    def _design_buckets(
        self, training: TrainingSet, domain: Box, rng: np.random.Generator
    ) -> np.ndarray:
        """The two-step point-generation procedure of Section 3.3."""
        n_interior_total = int(round(self.interior_fraction * self.size))
        n_uniform = self.size - n_interior_total
        selectivities = training.selectivities
        total_sel = float(selectivities.sum())
        chunks: list[np.ndarray] = []
        if n_interior_total > 0 and total_sel > 0:
            # Proportional allocation with largest-remainder rounding so the
            # shares sum exactly to n_interior_total.
            raw = selectivities / total_sel * n_interior_total
            counts = np.floor(raw).astype(int)
            shortfall = n_interior_total - int(counts.sum())
            if shortfall > 0:
                order = np.argsort(-(raw - counts))
                counts[order[:shortfall]] += 1
            for query, count in zip(training.queries, counts):
                if count > 0:
                    chunks.append(rejection_sample(query, int(count), rng, domain))
        else:
            n_uniform = self.size
        if n_uniform > 0:
            chunks.append(sample_in_box(domain, n_uniform, rng))
        points = np.concatenate(chunks, axis=0) if chunks else sample_in_box(domain, self.size, rng)
        if points.shape[0] < self.size:  # only if total_sel == 0 edge cases
            extra = sample_in_box(domain, self.size - points.shape[0], rng)
            points = np.concatenate([points, extra], axis=0)
        return points[: self.size]

    def _predict_one(self, query: Range) -> float:
        return self._distribution.selectivity(query)

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray:
        return self._distribution.selectivity_many(queries)

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return self._distribution.size

    @property
    def distribution(self) -> DiscreteDistribution:
        """The learned discrete distribution (a valid member of 𝒟)."""
        self._check_fitted()
        return self._distribution

    def _state_dict(self) -> Dict[str, object]:
        return {
            f"distribution.{key}": value
            for key, value in self._distribution.to_state().items()
        }

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        self._distribution = DiscreteDistribution.from_state(
            {
                key.split(".", 1)[1]: value
                for key, value in state.items()
                if key.startswith("distribution.")
            }
        )
        # Spatial index over the support points: rebuilt, never persisted.
        self._distribution.attach_index()
