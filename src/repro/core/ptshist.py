"""PtsHist — the discrete-distribution learner of Section 3.3.

Designed for higher dimensions, where boxes are poor representations of
data distributions and box∩range volumes get expensive.  Buckets are
*points* in the data space:

1. ``interior_fraction * k`` points are drawn from the interiors of the
   training ranges, each range receiving a share of points proportional to
   its observed selectivity (``s_i / Σ_j s_j``);
2. the remaining points are drawn uniformly from the whole domain, so
   density can be allocated to regions no training query covers.

Sampling from non-box ranges uses the rejection sampler of Appendix A.2.
Weights are then fitted by the same generic simplex-constrained least
squares (Eq. 8) on the 0/1 membership design matrix (Eq. 7).
"""

from __future__ import annotations

import time
from typing import ClassVar, Dict, Sequence

import numpy as np

from repro.core.config import PtsHistConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.incremental import UpdateReport
from repro.core.workload import TrainingSet
from repro.distributions.discrete import DiscreteDistribution
from repro.geometry.index import build_bucket_index
from repro.geometry.sparse import sparse_containment_matrix
from repro.geometry.ranges import Box, Range, unit_box
from repro.geometry.sampling import rejection_sample, sample_in_box
from repro.core._solve import solve_weights
from repro.observability.tracing import span
from repro.solvers.simplex_ls import SolveReport

__all__ = ["PtsHist"]


class PtsHist(SelectivityEstimator):
    """The paper's PtsHist estimator.

    Parameters
    ----------
    size:
        Target model size ``k`` (number of support points).  The paper pegs
        this to ``4 ×`` the number of training queries in most experiments.
    interior_fraction:
        Share of points drawn from query interiors (paper: 0.9; the rest is
        uniform over the domain).
    seed:
        Seed for the bucket-sampling generator; fitting is deterministic
        given the seed.
    objective / solver / domain:
        As in :class:`~repro.core.quadhist.QuadHist`.
    """

    Config: ClassVar = PtsHistConfig

    def __init__(
        self,
        size: int = 400,
        interior_fraction: float = 0.9,
        seed: int = 0,
        objective: str = "l2",
        solver: str = "penalty",
        domain: Box | None = None,
    ):
        super().__init__()
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not 0.0 <= interior_fraction <= 1.0:
            raise ValueError(
                f"interior_fraction must be in [0, 1], got {interior_fraction}"
            )
        if objective not in ("l2", "linf"):
            raise ValueError(f"objective must be 'l2' or 'linf', got {objective!r}")
        self.size = int(size)
        self.interior_fraction = float(interior_fraction)
        self.seed = int(seed)
        self.objective = objective
        self.solver = solver
        self.domain = domain
        #: How the last weight solve was produced (fallback ladder record).
        self.solve_report_: SolveReport | None = None
        #: What the last ``partial_fit`` did; None after a full fit.
        self.update_report_: UpdateReport | None = None
        self._distribution: DiscreteDistribution | None = None
        self._history: TrainingSet | None = None
        self._design_cache: np.ndarray | None = None

    def _fit(self, training: TrainingSet) -> None:
        domain = self.domain if self.domain is not None else unit_box(training.dim)
        if domain.dim != training.dim:
            raise ValueError("domain dimension does not match the training queries")
        rng = np.random.default_rng(self.seed)
        with span("fit/partition", size=self.size):
            points = self._design_buckets(training, domain, rng)
        index = build_bucket_index(points, points)
        with span("fit/design-matrix", rows=len(training), buckets=len(points)):
            design = sparse_containment_matrix(training.queries, index)
        self._history = training
        self._design_cache = design
        weights, self.solve_report_ = solve_weights(
            design, training.selectivities, objective=self.objective, solver=self.solver
        )
        self._distribution = DiscreteDistribution(points, weights)
        self._distribution._index = index

    def partial_fit(
        self,
        queries: Sequence[Range],
        selectivities: Sequence[float],
        warm_start: bool = False,
    ) -> "PtsHist":
        """Incrementally absorb new query feedback.

        The point support is frozen at the initial fit (it was sampled
        from the first training workload), so an update only appends the
        new queries' 0/1 membership rows to the cached design matrix and
        re-solves the weights — with ``warm_start=True`` resuming from
        the current weight vector.  Unlike the tree histograms this is
        *not* equivalent to a refit on the union workload (a refit would
        re-sample the support); it trades that for an update cost
        independent of history size.

        Calling ``partial_fit`` on an unfitted estimator is equivalent
        to ``fit``.
        """
        new = TrainingSet(queries, selectivities)
        if not self._fitted:
            self.fit(queries, selectivities)
            return self
        if self._history is None or self._design_cache is None:
            raise RuntimeError(
                "partial_fit needs the feedback history and design cache, "
                "which persisted artifacts do not carry; refit from scratch "
                "instead"
            )
        if new.dim != self._history.dim:
            raise ValueError("partial_fit dimension mismatch with earlier feedback")
        started = time.perf_counter()
        combined = TrainingSet(
            list(self._history.queries) + list(new.queries),
            np.concatenate([self._history.selectivities, new.selectivities]),
        )
        index = self._distribution._index
        if index is None:
            index = build_bucket_index(
                self._distribution.points, self._distribution.points
            )
            self._distribution._index = index
        with span(
            "fit/design-matrix", rows=len(new), buckets=self._distribution.size,
            incremental=True,
        ):
            new_rows = sparse_containment_matrix(new.queries, index)
        design = np.concatenate([self._design_cache, new_rows], axis=0)
        w0 = self._distribution.weights if warm_start else None
        weights, self.solve_report_ = solve_weights(
            design,
            combined.selectivities,
            objective=self.objective,
            solver=self.solver,
            warm_start=w0,
        )
        self._history = combined
        self._design_cache = design
        size = self._distribution.size
        self._distribution = DiscreteDistribution(self._distribution.points, weights)
        self._distribution._index = index
        self.update_report_ = UpdateReport(
            rows_appended=len(new),
            rows_total=len(combined),
            buckets_before=size,
            buckets_after=size,
            columns_reused=size,
            columns_recomputed=0,
            warm_started=warm_start,
            full_rebuild=False,
            seconds=time.perf_counter() - started,
            residual=self.solve_report_.residual,
            rung=self.solve_report_.rung,
        )
        return self

    def _design_buckets(
        self, training: TrainingSet, domain: Box, rng: np.random.Generator
    ) -> np.ndarray:
        """The two-step point-generation procedure of Section 3.3."""
        n_interior_total = int(round(self.interior_fraction * self.size))
        n_uniform = self.size - n_interior_total
        selectivities = training.selectivities
        total_sel = float(selectivities.sum())
        chunks: list[np.ndarray] = []
        if n_interior_total > 0 and total_sel > 0:
            # Proportional allocation with largest-remainder rounding so the
            # shares sum exactly to n_interior_total.
            raw = selectivities / total_sel * n_interior_total
            counts = np.floor(raw).astype(int)
            shortfall = n_interior_total - int(counts.sum())
            if shortfall > 0:
                order = np.argsort(-(raw - counts))
                counts[order[:shortfall]] += 1
            for query, count in zip(training.queries, counts):
                if count > 0:
                    chunks.append(rejection_sample(query, int(count), rng, domain))
        else:
            n_uniform = self.size
        if n_uniform > 0:
            chunks.append(sample_in_box(domain, n_uniform, rng))
        points = np.concatenate(chunks, axis=0) if chunks else sample_in_box(domain, self.size, rng)
        if points.shape[0] < self.size:  # only if total_sel == 0 edge cases
            extra = sample_in_box(domain, self.size - points.shape[0], rng)
            points = np.concatenate([points, extra], axis=0)
        return points[: self.size]

    def _predict_one(self, query: Range) -> float:
        return self._distribution.selectivity(query)

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray:
        return self._distribution.selectivity_many(queries)

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return self._distribution.size

    @property
    def distribution(self) -> DiscreteDistribution:
        """The learned discrete distribution (a valid member of 𝒟)."""
        self._check_fitted()
        return self._distribution

    def _state_dict(self) -> Dict[str, object]:
        return {
            f"distribution.{key}": value
            for key, value in self._distribution.to_state().items()
        }

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        self._distribution = DiscreteDistribution.from_state(
            {
                key.split(".", 1)[1]: value
                for key, value in state.items()
                if key.startswith("distribution.")
            }
        )
        # Spatial index over the support points: rebuilt, never persisted.
        self._distribution.attach_index()
        # Feedback history and cached design rows are fit-time structures;
        # a restored model cannot partial_fit.
        self._history = None
        self._design_cache = None
