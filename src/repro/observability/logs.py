"""Structured logging: one event + fields per line, JSON or key=value.

Thin sugar over :mod:`logging`: everything lives under the ``"repro"``
logger namespace, and :func:`log_event` attaches machine-readable fields
to each record (``record.fields``).  Nothing is emitted until
:func:`configure_logging` installs a handler — so the test suite and
library users stay quiet by default, and ``repro serve --log-json``
turns every access line, trace tree and retrain outcome into one JSON
object per line for a log pipeline to ingest.
"""

from __future__ import annotations

import contextlib
import json
import logging
import sys
import threading
from typing import IO, Iterator

__all__ = [
    "JsonFormatter",
    "KeyValueFormatter",
    "configure_logging",
    "reset_logging",
    "get_logger",
    "log_event",
    "bind_request_id",
    "current_request_id",
]

_ROOT_NAME = "repro"
_HANDLER_FLAG = "_repro_observability_handler"

_REQUEST_CONTEXT = threading.local()


@contextlib.contextmanager
def bind_request_id(request_id: str | None) -> Iterator[None]:
    """Attach ``request_id`` to every :func:`log_event` on this thread.

    The HTTP handler binds the request's ``X-Request-Id`` for the
    duration of dispatch, so admission waits, coalescer flushes and
    kernel spans logged anywhere down-stack carry the id without
    plumbing it through each call signature.  Nestable; ``None`` is a
    no-op binding (inherits whatever is already bound).
    """
    if request_id is None:
        yield
        return
    previous = getattr(_REQUEST_CONTEXT, "request_id", None)
    _REQUEST_CONTEXT.request_id = str(request_id)
    try:
        yield
    finally:
        _REQUEST_CONTEXT.request_id = previous


def current_request_id() -> str | None:
    """The request id bound on this thread (``None`` outside a request)."""
    return getattr(_REQUEST_CONTEXT, "request_id", None)


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, event, then fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, value)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class KeyValueFormatter(logging.Formatter):
    """Human-oriented fallback: ``level logger event k=v k=v``."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [record.levelname.lower(), record.name, record.getMessage()]
        fields = getattr(record, "fields", None)
        if fields:
            parts.extend(
                f"{key}={json.dumps(value, default=str, sort_keys=True)}"
                for key, value in fields.items()
            )
        return " ".join(parts)


def configure_logging(
    json_mode: bool = False,
    level: int = logging.INFO,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install a stream handler on the ``repro`` logger namespace.

    Replaces any handler a previous call installed (idempotent), leaves
    foreign handlers alone, and stops propagation so records are not
    double-printed by a configured root logger.
    """
    logger = logging.getLogger(_ROOT_NAME)
    reset_logging()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else KeyValueFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def reset_logging() -> None:
    """Remove handlers previously installed by :func:`configure_logging`."""
    logger = logging.getLogger(_ROOT_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
            handler.close()


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``repro`` namespace (``get_logger("http.access")``)."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def log_event(
    logger: logging.Logger | str,
    event: str,
    level: int = logging.INFO,
    **fields,
) -> None:
    """Log ``event`` with structured ``fields`` attached to the record.

    A request id bound via :func:`bind_request_id` is injected as a
    ``request_id`` field unless the caller already supplied one.
    """
    if isinstance(logger, str):
        logger = get_logger(logger)
    if logger.isEnabledFor(level):
        request_id = current_request_id()
        if request_id is not None and "request_id" not in fields:
            fields["request_id"] = request_id
        logger.log(level, event, extra={"fields": fields})
