"""Fleet-wide metric aggregation: mergeable registry snapshots.

A pre-fork pool (:mod:`repro.serving`) gives every worker its own
process-local :class:`~repro.observability.MetricsRegistry`, so a
``GET /metrics`` scrape through the kernel-balanced shared socket
returns one arbitrary worker's counters — useless for fleet-level
signals like total queries, aggregate cache-hit rate, or tail latency.
This module makes registries *mergeable*:

* :func:`snapshot_registry` / :func:`snapshot_registries` — a compact,
  picklable snapshot of every counter, gauge and histogram series.
  Workers piggyback these on the heartbeat pipe they already own.
* :class:`FleetAggregator` — the supervisor-side merge.  Counters sum
  across workers; gauges keep a per-``worker`` label plus a fleet
  reduction (sum by default, max where that is the meaningful fleet
  value — e.g. the newest model generation); fixed-bucket histograms
  merge *exactly* bucket-by-bucket.

**Reset tracking.**  A SIGKILLed worker restarts with zeroed counters.
Naively summing the latest snapshots would make fleet totals go
*backwards* at every respawn — poison for rate() queries and for the
monotonicity invariant the chaos harness asserts.  The aggregator
therefore tracks a per-slot *incarnation* number (bumped by the
supervisor on every spawn): when a new incarnation reports in, the
previous incarnation's final counter and histogram values are folded
into a per-slot monotone *base*, and fleet totals are always
``base + current``.  Totals never decrease, and nothing a dead
incarnation reported is ever lost.

The aggregator renders the merged fleet in the Prometheus text
exposition format (the supervisor's ops endpoint serves it) and as a
JSON dict (``/workers``, ``repro top``).
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _format_labels,
    _format_value,
)

__all__ = [
    "snapshot_registry",
    "snapshot_registries",
    "merge_snapshots",
    "FleetAggregator",
    "GAUGE_MAX_REDUCTIONS",
]

#: Gauges whose meaningful fleet reduction is ``max`` rather than
#: ``sum`` — "the newest generation anywhere" / "the most recent
#: snapshot anywhere".  Everything else (inflight, queue depth, pending
#: feedback, worker-up flags ...) sums.
GAUGE_MAX_REDUCTIONS = frozenset(
    {
        "repro_model_generation",
        "repro_model_size",
        "repro_snapshot_generation",
        "repro_snapshot_timestamp_seconds",
        "repro_breaker_state",
        "repro_drift_statistic",
        "repro_sparse_crossover",
    }
)


def snapshot_registry(registry: MetricsRegistry) -> dict:
    """Compact, picklable snapshot of every series in ``registry``.

    Shape (all values plain Python scalars/lists/tuples)::

        {
          "counters":   {name: {"help": ..., "labels": (...),
                                "series": {key_tuple: value}}},
          "gauges":     {... same ...},
          "histograms": {name: {"help": ..., "labels": (...),
                                "buckets": (...),
                                "series": {key_tuple: (counts, sum, count)}}},
        }
    """
    snap: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for metric in registry.collect():
        if isinstance(metric, Histogram):
            snap["histograms"][metric.name] = {
                "help": metric.help,
                "labels": metric.label_names,
                "buckets": metric.buckets,
                "series": {
                    key: (list(state.counts), state.sum, state.count)
                    for key, state in metric.series()
                },
            }
        elif isinstance(metric, (Counter, Gauge)):
            kind = "counters" if isinstance(metric, Counter) else "gauges"
            snap[kind][metric.name] = {
                "help": metric.help,
                "labels": metric.label_names,
                "series": {key: float(value) for key, value in metric.series()},
            }
    return snap


def snapshot_registries(*registries: MetricsRegistry) -> dict:
    """Snapshot several registries into one (first registry wins on a
    metric-name collision) — the worker-side analogue of rendering the
    service registry plus the process-global one in a single scrape."""
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for registry in registries:
        snap = snapshot_registry(registry)
        for kind in merged:
            for name, entry in snap[kind].items():
                merged[kind].setdefault(name, entry)
    return merged


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Pure merge of registry snapshots (no reset tracking): counters and
    histogram buckets sum element-wise, gauges keep the last value seen.

    Used by tests to state the aggregation-correctness invariant
    ("merged ≡ sum of the parts") and by offline tooling; the live
    supervisor path goes through :class:`FleetAggregator`, which adds
    per-incarnation reset handling on top of exactly this arithmetic.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for name, entry in snap.get("counters", {}).items():
            slot = out["counters"].setdefault(
                name, {"help": entry["help"], "labels": entry["labels"], "series": {}}
            )
            for key, value in entry["series"].items():
                slot["series"][key] = slot["series"].get(key, 0.0) + value
        for name, entry in snap.get("gauges", {}).items():
            slot = out["gauges"].setdefault(
                name, {"help": entry["help"], "labels": entry["labels"], "series": {}}
            )
            slot["series"].update(entry["series"])
        for name, entry in snap.get("histograms", {}).items():
            slot = out["histograms"].setdefault(
                name,
                {
                    "help": entry["help"],
                    "labels": entry["labels"],
                    "buckets": tuple(entry["buckets"]),
                    "series": {},
                },
            )
            if tuple(entry["buckets"]) != slot["buckets"]:
                continue  # incompatible layout: first writer wins
            for key, (counts, acc, total) in entry["series"].items():
                existing = slot["series"].get(key)
                if existing is None:
                    slot["series"][key] = (list(counts), float(acc), int(total))
                else:
                    merged_counts = [a + b for a, b in zip(existing[0], counts)]
                    slot["series"][key] = (
                        merged_counts,
                        existing[1] + float(acc),
                        existing[2] + int(total),
                    )
    return out


class _SlotState:
    """Latest snapshot + monotone base for one worker slot."""

    __slots__ = ("incarnation", "current", "base")

    def __init__(self):
        self.incarnation = -1
        self.current: dict | None = None
        # base: {"counters": {name: {key: value}},
        #        "histograms": {name: {key: (counts, sum, count)}}}
        self.base: dict = {"counters": {}, "histograms": {}}

    def fold_current_into_base(self) -> None:
        """Retire the current incarnation: its final counter/histogram
        values join the permanent base so fleet totals never regress."""
        if self.current is None:
            return
        for name, entry in self.current.get("counters", {}).items():
            slot = self.base["counters"].setdefault(name, {})
            for key, value in entry["series"].items():
                slot[key] = slot.get(key, 0.0) + value
        for name, entry in self.current.get("histograms", {}).items():
            slot = self.base["histograms"].setdefault(name, {})
            for key, (counts, acc, total) in entry["series"].items():
                existing = slot.get(key)
                if existing is None:
                    slot[key] = (list(counts), float(acc), int(total))
                else:
                    slot[key] = (
                        [a + b for a, b in zip(existing[0], counts)],
                        existing[1] + float(acc),
                        existing[2] + int(total),
                    )
        self.current = None


class FleetAggregator:
    """Supervisor-side merged view over per-worker registry snapshots.

    Thread-safe: the supervisor's monitor thread calls :meth:`observe`
    while the ops HTTP server calls :meth:`render`/:meth:`to_dict`
    concurrently.
    """

    def __init__(self, gauge_max: Iterable[str] = GAUGE_MAX_REDUCTIONS):
        self._lock = threading.Lock()
        self._slots: dict[str, _SlotState] = {}
        self._gauge_max = frozenset(gauge_max)
        self._updates = 0

    # -- ingest ------------------------------------------------------------

    def observe(self, worker: str | int, incarnation: int, snapshot: dict) -> None:
        """Record ``worker``'s latest snapshot.

        A higher ``incarnation`` than previously seen for this slot folds
        the old incarnation's final values into the slot's base first; a
        *lower* one is a stale out-of-order heartbeat and is dropped.
        """
        worker = str(worker)
        incarnation = int(incarnation)
        with self._lock:
            state = self._slots.setdefault(worker, _SlotState())
            if incarnation < state.incarnation:
                return  # stale heartbeat from a dead incarnation
            if incarnation > state.incarnation:
                state.fold_current_into_base()
                state.incarnation = incarnation
            state.current = snapshot
            self._updates += 1

    def forget(self, worker: str | int) -> None:
        """Retire a slot permanently (its totals stay in the base)."""
        with self._lock:
            state = self._slots.get(str(worker))
            if state is not None:
                state.fold_current_into_base()

    # -- merged views ------------------------------------------------------

    def _merged_locked(self) -> dict:
        """Counters/histograms: base + current summed across slots.
        Gauges: latest value per slot, keyed by worker.  Caller holds
        the lock."""
        merged = merge_snapshots(
            state.current for state in self._slots.values() if state.current
        )
        # Fold the retired incarnations' bases into the live sums.
        for worker, state in self._slots.items():
            for name, series in state.base["counters"].items():
                slot = merged["counters"].get(name)
                if slot is None:
                    # Every live registry declares its metrics up front,
                    # but a metric can exist only in a dead incarnation
                    # (e.g. a renamed series): carry it with no help text.
                    slot = merged["counters"][name] = {
                        "help": "",
                        "labels": self._base_labels(name),
                        "series": {},
                    }
                for key, value in series.items():
                    slot["series"][key] = slot["series"].get(key, 0.0) + value
            for name, series in state.base["histograms"].items():
                slot = merged["histograms"].get(name)
                if slot is None:
                    continue  # bucket layout unknown without a live twin
                for key, (counts, acc, total) in series.items():
                    existing = slot["series"].get(key)
                    if existing is None:
                        slot["series"][key] = (list(counts), float(acc), int(total))
                    elif len(existing[0]) == len(counts):
                        slot["series"][key] = (
                            [a + b for a, b in zip(existing[0], counts)],
                            existing[1] + float(acc),
                            existing[2] + int(total),
                        )
        # Gauges: re-derive per-worker series (merge_snapshots collapsed
        # them last-writer-wins, which is wrong across workers).
        merged["gauges"] = {}
        for worker, state in sorted(self._slots.items()):
            if not state.current:
                continue
            for name, entry in state.current.get("gauges", {}).items():
                slot = merged["gauges"].setdefault(
                    name,
                    {"help": entry["help"], "labels": entry["labels"], "series": {}},
                )
                for key, value in entry["series"].items():
                    slot["series"][(worker,) + tuple(key)] = value
        return merged

    def _base_labels(self, name: str) -> tuple:
        for state in self._slots.values():
            if state.current and name in state.current.get("counters", {}):
                return state.current["counters"][name]["labels"]
        return ()

    def total(self, name: str, **labels) -> float:
        """Fleet total of one counter series (or the sum over all its
        series when no labels are given) — the chaos harness's
        monotonicity probe."""
        with self._lock:
            merged = self._merged_locked()
        entry = merged["counters"].get(name)
        if entry is None:
            return 0.0
        if labels:
            key = tuple(str(labels[n]) for n in entry["labels"])
            return float(entry["series"].get(key, 0.0))
        return float(sum(entry["series"].values()))

    def workers(self) -> dict:
        """Per-slot bookkeeping: incarnation and snapshot freshness."""
        with self._lock:
            return {
                worker: {
                    "incarnation": state.incarnation,
                    "has_snapshot": state.current is not None,
                }
                for worker, state in sorted(self._slots.items())
            }

    def to_dict(self) -> dict:
        """JSON-ready merged fleet view (``repro top``, tests)."""
        with self._lock:
            merged = self._merged_locked()
            updates = self._updates
        out: dict = {"updates": updates, "counters": {}, "gauges": {}, "histograms": {}}
        for name, entry in sorted(merged["counters"].items()):
            out["counters"][name] = [
                {"labels": dict(zip(entry["labels"], key)), "value": value}
                for key, value in sorted(entry["series"].items())
            ]
        for name, entry in sorted(merged["gauges"].items()):
            out["gauges"][name] = [
                {
                    "labels": dict(zip(("worker",) + tuple(entry["labels"]), key)),
                    "value": value,
                }
                for key, value in sorted(entry["series"].items())
            ]
        for name, entry in sorted(merged["histograms"].items()):
            out["histograms"][name] = [
                {
                    "labels": dict(zip(entry["labels"], key)),
                    "count": total,
                    "sum": acc,
                }
                for key, (counts, acc, total) in sorted(entry["series"].items())
            ]
        return out

    # -- exposition --------------------------------------------------------

    def render(self, extra: MetricsRegistry | None = None) -> str:
        """Prometheus text exposition of the merged fleet.

        ``extra`` (typically the supervisor's own registry: restarts,
        alive workers, storm breakers) is appended for metric names not
        already covered by the fleet merge, so one scrape of the ops
        endpoint spans both the workers and their supervisor.
        """
        with self._lock:
            merged = self._merged_locked()
        chunks: list[str] = []
        for name, entry in sorted(merged["counters"].items()):
            chunks.append(self._render_scalar(name, entry, "counter"))
        for name, entry in sorted(merged["gauges"].items()):
            chunks.append(self._render_gauge(name, entry))
        for name, entry in sorted(merged["histograms"].items()):
            chunks.append(self._render_histogram(name, entry))
        covered = (
            set(merged["counters"]) | set(merged["gauges"]) | set(merged["histograms"])
        )
        if extra is not None:
            for metric in extra.collect():
                if metric.name not in covered:
                    chunks.append(metric.render())
        return "\n".join(chunks) + ("\n" if chunks else "")

    @staticmethod
    def _render_scalar(name: str, entry: Mapping, kind: str) -> str:
        lines = [
            f"# HELP {name} {entry['help']}" if entry["help"] else f"# HELP {name} ",
            f"# TYPE {name} {kind}",
        ]
        label_names = tuple(entry["labels"])
        for key, value in sorted(entry["series"].items()):
            lines.append(
                f"{name}{_format_labels(label_names, key)} "
                f"{_format_value(float(value))}"
            )
        return "\n".join(lines)

    def _render_gauge(self, name: str, entry: Mapping) -> str:
        lines = [
            f"# HELP {name} {entry['help']}" if entry["help"] else f"# HELP {name} ",
            f"# TYPE {name} gauge",
        ]
        source_labels = tuple(entry["labels"])
        worker_already = "worker" in source_labels
        label_names = source_labels if worker_already else ("worker",) + source_labels
        reduce_max = name in self._gauge_max
        reduced: dict[tuple, float] = {}
        for key, value in sorted(entry["series"].items()):
            worker, rest = key[0], tuple(key[1:])
            # A series already carrying a worker label is attributed by
            # its own label value; the snapshot's slot id would be
            # redundant (and can disagree during a slot takeover).
            out_key = rest if worker_already else (worker,) + rest
            lines.append(
                f"{name}{_format_labels(label_names, out_key)} "
                f"{_format_value(float(value))}"
            )
            bare_key = tuple(
                v for n, v in zip(source_labels, rest) if n != "worker"
            ) if worker_already else rest
            if reduce_max:
                reduced[bare_key] = max(reduced.get(bare_key, float("-inf")), value)
            else:
                reduced[bare_key] = reduced.get(bare_key, 0.0) + value
        bare_names = tuple(n for n in source_labels if n != "worker")
        for key, value in sorted(reduced.items()):
            lines.append(
                f"{name}{_format_labels(bare_names, key)} "
                f"{_format_value(float(value))}"
            )
        return "\n".join(lines)

    @staticmethod
    def _render_histogram(name: str, entry: Mapping) -> str:
        lines = [
            f"# HELP {name} {entry['help']}" if entry["help"] else f"# HELP {name} ",
            f"# TYPE {name} histogram",
        ]
        label_names = tuple(entry["labels"])
        buckets = tuple(entry["buckets"])
        for key, (counts, acc, total) in sorted(entry["series"].items()):
            cumulative = 0
            for bound, count in zip(buckets, counts):
                cumulative += count
                labels = _format_labels(
                    label_names + ("le",), tuple(key) + (_format_value(bound),)
                )
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _format_labels(label_names + ("le",), tuple(key) + ("+Inf",))
            lines.append(f"{name}_bucket{labels} {total}")
            plain = _format_labels(label_names, key)
            lines.append(f"{name}_sum{plain} {_format_value(acc)}")
            lines.append(f"{name}_count{plain} {total}")
        return "\n".join(lines)
