"""Observability: metrics, tracing spans, and structured logs.

The serving stack (PR 1's robustness layer, PR 2's batch kernels) kept
its health visible only through ``/status`` snapshots and ad-hoc
timers.  This package makes the whole train→serve pipeline measurable
continuously — the operational requirement behind every query-driven
estimator's feedback loop:

* :mod:`~repro.observability.metrics` — thread-safe counters, gauges and
  fixed-bucket histograms in a :class:`MetricsRegistry`, rendered in the
  Prometheus text exposition format for ``GET /metrics``.
* :mod:`~repro.observability.tracing` — nestable wall-time spans
  (``with span("fit/solve"):``) forming per-operation trees, bridged
  into the ``repro_span_seconds`` histogram and (optionally) emitted as
  structured JSON log lines.
* :mod:`~repro.observability.logs` — the structured logger behind
  ``repro serve --log-json`` and the opt-in HTTP access log.

Layering: this package sits at the very bottom of ``repro`` (stdlib
only) so every other layer — geometry kernels, solvers, estimators,
the service — can instrument itself without import cycles.  All
instrumentation routes through :func:`default_registry` and can be
switched off globally with :func:`set_enabled`; the committed
``benchmarks/results/BENCH_observability.json`` pins the enabled-mode
overhead of the hot ``predict_many`` path below 5%.

See ``docs/observability.md`` for the metric catalogue and the span
naming convention.
"""

from repro.observability.aggregate import (
    FleetAggregator,
    merge_snapshots,
    snapshot_registries,
    snapshot_registry,
)
from repro.observability.expolint import lint_exposition, parse_exposition
from repro.observability.logs import (
    JsonFormatter,
    KeyValueFormatter,
    bind_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    log_event,
    reset_logging,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    enabled,
    set_enabled,
    set_worker_label,
    worker_label,
)
from repro.observability.tracing import (
    Span,
    add_span_observer,
    current_span,
    last_trace,
    remove_span_observer,
    set_trace_logging,
    span,
    trace_logging_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "set_enabled",
    "enabled",
    "set_worker_label",
    "worker_label",
    "FleetAggregator",
    "snapshot_registry",
    "snapshot_registries",
    "merge_snapshots",
    "lint_exposition",
    "parse_exposition",
    "bind_request_id",
    "current_request_id",
    "Span",
    "span",
    "current_span",
    "last_trace",
    "add_span_observer",
    "remove_span_observer",
    "set_trace_logging",
    "trace_logging_enabled",
    "JsonFormatter",
    "KeyValueFormatter",
    "configure_logging",
    "reset_logging",
    "get_logger",
    "log_event",
]
