"""Prometheus text-exposition linter for the aggregated ops endpoint.

A scrape that silently violates the exposition grammar is worse than no
scrape: Prometheus drops the whole target.  This module validates the
subset of the 0.0.4 text format the repo emits — metric-name and label
grammar, ``HELP``/``TYPE`` pairing and ordering, histogram structural
invariants (cumulative non-decreasing buckets ending in ``+Inf``,
``_count`` == the ``+Inf`` bucket) — and doubles as a parser for tests
that need structured access to a rendered page.

Run as a script it lints a file or a live endpoint::

    python -m repro.observability.expolint --url http://127.0.0.1:9090/metrics
    python -m repro.observability.expolint page.txt

Exit status 0 when clean, 1 with one problem per line otherwise.
"""

from __future__ import annotations

import argparse
import math
import re
import sys
import urllib.request

__all__ = ["lint_exposition", "parse_exposition", "main"]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One sample line: name{labels} value  (labels optional; no timestamp —
# the repo never emits one).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
_VALUE_RE = re.compile(r"^(?:[+-]?Inf|NaN|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)$")


def _unescape(value: str) -> str:
    return (
        value.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )


def _parse_labels(raw: str, problems: list[str], lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    rest = raw
    while rest:
        match = _LABEL_PAIR_RE.match(rest)
        if match is None:
            problems.append(f"line {lineno}: malformed label segment {rest!r}")
            return labels
        name = match.group("name")
        if name.startswith("__"):
            problems.append(f"line {lineno}: reserved label name {name!r}")
        if name in labels:
            problems.append(f"line {lineno}: duplicate label name {name!r}")
        labels[name] = _unescape(match.group("value"))
        rest = rest[match.end() :]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            problems.append(f"line {lineno}: expected ',' in labels at {rest!r}")
            return labels
    return labels


def parse_exposition(text: str) -> tuple[dict, list[str]]:
    """Parse a text-format page into ``(families, problems)``.

    ``families`` maps each base metric name to::

        {"help": str | None, "type": str | None,
         "samples": [(sample_name, labels_dict, value_float, lineno)]}

    Histogram ``_bucket``/``_sum``/``_count`` samples are grouped under
    the base name when a ``TYPE <base> histogram`` declaration precedes
    them.  ``problems`` collects grammar violations; structural checks
    live in :func:`lint_exposition`.
    """
    families: dict[str, dict] = {}
    problems: list[str] = []
    histogram_bases: set[str] = set()

    def family(name: str) -> dict:
        return families.setdefault(
            name, {"help": None, "type": None, "samples": []}
        )

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            if not _METRIC_NAME_RE.match(name):
                problems.append(f"line {lineno}: invalid metric name {name!r} in HELP")
                continue
            entry = family(name)
            if entry["help"] is not None:
                problems.append(f"line {lineno}: duplicate HELP for {name!r}")
            entry["help"] = parts[1] if len(parts) > 1 else ""
        elif line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2:
                problems.append(f"line {lineno}: malformed TYPE line {line!r}")
                continue
            name, kind = parts
            if not _METRIC_NAME_RE.match(name):
                problems.append(f"line {lineno}: invalid metric name {name!r} in TYPE")
                continue
            if kind not in {"counter", "gauge", "histogram", "summary", "untyped"}:
                problems.append(f"line {lineno}: unknown TYPE {kind!r} for {name!r}")
            entry = family(name)
            if entry["type"] is not None:
                problems.append(f"line {lineno}: duplicate TYPE for {name!r}")
            if entry["samples"]:
                problems.append(
                    f"line {lineno}: TYPE for {name!r} after its samples"
                )
            entry["type"] = kind
            if kind == "histogram":
                histogram_bases.add(name)
        elif line.startswith("#"):
            continue  # free-form comment
        else:
            match = _SAMPLE_RE.match(line)
            if match is None:
                problems.append(f"line {lineno}: unparseable sample {line!r}")
                continue
            sample_name = match.group("name")
            base = sample_name
            for suffix in ("_bucket", "_sum", "_count"):
                if sample_name.endswith(suffix):
                    candidate = sample_name[: -len(suffix)]
                    if candidate in histogram_bases:
                        base = candidate
                        break
            labels = _parse_labels(match.group("labels") or "", problems, lineno)
            for label_name in labels:
                if not _LABEL_NAME_RE.match(label_name):
                    problems.append(
                        f"line {lineno}: invalid label name {label_name!r}"
                    )
            raw_value = match.group("value")
            if not _VALUE_RE.match(raw_value):
                problems.append(f"line {lineno}: invalid value {raw_value!r}")
                value = math.nan
            else:
                value = float(raw_value)
            family(base)["samples"].append((sample_name, labels, value, lineno))
    return families, problems


def lint_exposition(text: str) -> list[str]:
    """All format/structure problems in ``text`` (empty when clean)."""
    families, problems = parse_exposition(text)
    for name, entry in sorted(families.items()):
        if entry["samples"] and entry["type"] is None:
            problems.append(f"metric {name!r}: samples without a TYPE line")
        if entry["samples"] and entry["help"] is None:
            problems.append(f"metric {name!r}: samples without a HELP line")
        if entry["type"] is None:
            continue
        if entry["type"] == "counter":
            for sample_name, _labels, value, lineno in entry["samples"]:
                if value < 0:
                    problems.append(
                        f"line {lineno}: counter {sample_name!r} is negative"
                    )
        if entry["type"] == "histogram":
            problems.extend(_lint_histogram(name, entry["samples"]))
        else:
            for sample_name, labels, _value, lineno in entry["samples"]:
                if sample_name != name:
                    problems.append(
                        f"line {lineno}: sample {sample_name!r} under "
                        f"{entry['type']} family {name!r}"
                    )
                if "le" in labels:
                    problems.append(
                        f"line {lineno}: reserved label 'le' on non-histogram "
                        f"{sample_name!r}"
                    )
    return problems


def _series_key(labels: dict[str, str]) -> tuple:
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def _lint_histogram(name: str, samples: list) -> list[str]:
    problems: list[str] = []
    buckets: dict[tuple, list] = {}
    counts: dict[tuple, float] = {}
    sums_seen: set[tuple] = set()
    for sample_name, labels, value, lineno in samples:
        key = _series_key(labels)
        if sample_name == f"{name}_bucket":
            le = labels.get("le")
            if le is None:
                problems.append(f"line {lineno}: bucket sample missing 'le'")
                continue
            try:
                bound = float(le)
            except ValueError:
                problems.append(f"line {lineno}: invalid le={le!r}")
                continue
            buckets.setdefault(key, []).append((bound, value, lineno))
        elif sample_name == f"{name}_count":
            counts[key] = value
        elif sample_name == f"{name}_sum":
            sums_seen.add(key)
        else:
            problems.append(
                f"line {lineno}: unexpected sample {sample_name!r} in "
                f"histogram {name!r}"
            )
    for key, series in sorted(buckets.items()):
        ordered = sorted(series, key=lambda item: item[0])
        if not ordered or not math.isinf(ordered[-1][0]):
            problems.append(f"histogram {name!r} {dict(key)}: no '+Inf' bucket")
        previous = -math.inf
        for bound, value, lineno in ordered:
            if value < previous:
                problems.append(
                    f"line {lineno}: histogram {name!r} bucket le={bound} "
                    f"not cumulative ({value} < {previous})"
                )
            previous = value
        if key in counts and ordered and math.isinf(ordered[-1][0]):
            if counts[key] != ordered[-1][1]:
                problems.append(
                    f"histogram {name!r} {dict(key)}: _count {counts[key]} "
                    f"!= '+Inf' bucket {ordered[-1][1]}"
                )
        if key not in counts:
            problems.append(f"histogram {name!r} {dict(key)}: missing _count")
        if key not in sums_seen:
            problems.append(f"histogram {name!r} {dict(key)}: missing _sum")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Lint a Prometheus text-exposition page."
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("path", nargs="?", help="file containing a rendered page")
    source.add_argument("--url", help="scrape and lint a live endpoint")
    args = parser.parse_args(argv)

    if args.url:
        with urllib.request.urlopen(args.url, timeout=10) as response:
            text = response.read().decode("utf-8")
    else:
        with open(args.path, "r", encoding="utf-8") as handle:
            text = handle.read()

    problems = lint_exposition(text)
    for problem in problems:
        print(problem, file=sys.stderr)
    families, _ = parse_exposition(text)
    sample_count = sum(len(entry["samples"]) for entry in families.values())
    print(
        f"{'FAIL' if problems else 'OK'}: {len(families)} metric families, "
        f"{sample_count} samples, {len(problems)} problems"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
