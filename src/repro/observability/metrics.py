"""Thread-safe metrics primitives and a Prometheus-text registry.

Three metric kinds cover everything the serving stack needs to expose:

* :class:`Counter` — monotonically increasing totals (requests, cache
  hits, solver-ladder rungs chosen).
* :class:`Gauge` — last-written values (model generation, breaker state,
  drift statistic).
* :class:`Histogram` — fixed-bucket latency distributions with
  cumulative Prometheus buckets plus interpolated quantile summaries
  for human consumption (``/status``, CLI dumps).

All three support a fixed set of label *names* declared at creation;
label *values* materialise series lazily on first use.  A
:class:`MetricsRegistry` owns a namespace of metrics, hands out
get-or-create handles (so independently imported modules share one
series per name), and renders the whole namespace in the Prometheus
text exposition format (version 0.0.4) for ``GET /metrics``.

Instrumentation is process-global by default (:func:`default_registry`)
and can be disabled wholesale with :func:`set_enabled` — the benchmark
``benchmarks/bench_observability.py`` uses that switch to price the
overhead of the instrumented hot paths.  Disabled metrics skip the
lock and the dict write; timers still measure (callers may rely on the
duration) but record nothing.
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "set_enabled",
    "enabled",
    "set_worker_label",
    "worker_label",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): sub-millisecond kernels through
#: multi-second retrains.  Upper bounds are inclusive, Prometheus-style.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_ENABLED = True


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable metric recording; returns the old value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def enabled() -> bool:
    """Is metric recording currently enabled?"""
    return _ENABLED


_WORKER_LABEL: str | None = None


def set_worker_label(label: str | None) -> str | None:
    """Attribute every exposed series in this process to one worker.

    Supervised pool workers call this with their ``REPRO_WORKER_ID`` so
    even a direct scrape through the kernel-balanced shared socket is
    attributable to a slot.  The label is injected at *render* time —
    observation hot paths pay nothing — and metrics that already declare
    a ``worker`` label are left untouched.  Single-process serving never
    sets it, keeping existing dashboards and tests label-free.

    Returns the previous value (``None`` when unset) for restore.
    """
    global _WORKER_LABEL
    previous = _WORKER_LABEL
    _WORKER_LABEL = None if label is None else str(label)
    return previous


def worker_label() -> str | None:
    """The process-wide worker attribution label (``None`` when unset)."""
    return _WORKER_LABEL


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared bookkeeping: name/help validation, label keying, locking."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_names = tuple(label_names)
        for label in label_names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r} for metric {name!r}")
        if len(set(label_names)) != len(label_names):
            raise ValueError(f"duplicate label names {label_names} for metric {name!r}")
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def series(self) -> list[tuple[tuple[str, ...], object]]:
        """Stable snapshot of ``(label_values, state)`` pairs."""
        with self._lock:
            return sorted(self._series.items())

    def reset_values(self) -> None:
        """Zero every series in place; the metric stays registered.

        Cached handles remain valid — only the recorded values are
        dropped.  Forked pool workers reset the inherited process-global
        registry so a new incarnation reports only its own work (see
        :meth:`MetricsRegistry.reset`).
        """
        with self._lock:
            self._series.clear()
            self._seed()

    def _seed(self) -> None:
        """Re-create any series exposed before the first event."""

    def _exposed_labels(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """``(label_names, value_prefix)`` with the process worker label
        injected — unless unset or the metric already declares one."""
        worker = _WORKER_LABEL
        if worker is None or "worker" in self.label_names:
            return self.label_names, ()
        return ("worker",) + self.label_names, (worker,)

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines.extend(self._sample_lines())
        return "\n".join(lines)

    def _sample_lines(self) -> Iterator[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing total (optionally labelled)."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._seed()

    def _seed(self) -> None:
        if not self.label_names:
            self._series[()] = 0.0  # expose 0 before the first event

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def _sample_lines(self) -> Iterator[str]:
        names, prefix = self._exposed_labels()
        for key, value in self.series():
            yield (
                f"{self.name}{_format_labels(names, prefix + key)} "
                f"{_format_value(float(value))}"
            )


class Gauge(_Metric):
    """Last-written value; can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._seed()

    def _seed(self) -> None:
        if not self.label_names:
            self._series[()] = 0.0

    def set(self, value: float, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def _sample_lines(self) -> Iterator[str]:
        names, prefix = self._exposed_labels()
        for key, value in self.series():
            yield (
                f"{self.name}{_format_labels(names, prefix + key)} "
                f"{_format_value(float(value))}"
            )


class _HistogramState:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class _Timer:
    """Context manager recording elapsed wall time into a histogram.

    Always measures (``self.seconds`` is valid either way); records only
    when instrumentation is enabled at *exit* time.
    """

    __slots__ = ("_histogram", "_labels", "_start", "seconds")

    def __init__(self, histogram: "Histogram", labels: dict):
        self._histogram = histogram
        self._labels = labels
        self.seconds = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
        self._histogram.observe(self.seconds, **self._labels)


class Histogram(_Metric):
    """Fixed-bucket distribution with cumulative Prometheus exposition."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Iterable[float] | None = None,
    ):
        super().__init__(name, help, label_names)
        if "le" in self.label_names:
            raise ValueError("'le' is reserved for histogram buckets")
        if buckets is None:
            buckets = DEFAULT_BUCKETS
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError("histogram needs at least one bucket")
        if len(set(edges)) != len(edges):
            raise ValueError(f"duplicate bucket bounds {edges}")
        if any(not math.isfinite(b) for b in edges):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.buckets = edges
        self._seed()

    def _seed(self) -> None:
        if not self.label_names:
            self._series[()] = _HistogramState(len(self.buckets))

    def observe(self, value: float, **labels) -> None:
        if not _ENABLED:
            return
        value = float(value)
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = _HistogramState(len(self.buckets))
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            state.counts[index] += 1
            state.sum += value
            state.count += 1

    def time(self, **labels) -> _Timer:
        """``with histogram.time():`` — record the block's wall time."""
        return _Timer(self, labels)

    def snapshot(self, **labels) -> dict:
        """JSON-ready summary: count, sum, mean and p50/p90/p99."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None or state.count == 0:
                return {"count": 0, "sum": 0.0, "mean": None, "quantiles": {}}
            counts = list(state.counts)
            total, acc = state.count, state.sum
        return {
            "count": total,
            "sum": acc,
            "mean": acc / total,
            "quantiles": {
                f"p{int(q * 100)}": self._quantile_from_counts(counts, total, q)
                for q in (0.5, 0.9, 0.99)
            },
        }

    def quantile(self, q: float, **labels) -> float | None:
        """Interpolated quantile estimate from the bucket counts.

        Linear interpolation inside the containing bucket — the standard
        ``histogram_quantile`` estimator.  Observations landing in the
        ``+Inf`` bucket are reported as the largest finite bound (a
        deliberate underestimate, as in Prometheus).  Returns ``None``
        before the first observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None or state.count == 0:
                return None
            counts = list(state.counts)
            total = state.count
        return self._quantile_from_counts(counts, total, q)

    def _quantile_from_counts(
        self, counts: list[int], total: int, q: float
    ) -> float:
        rank = q * total
        cumulative = 0.0
        for i, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                if i >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                lower = 0.0 if i == 0 else self.buckets[i - 1]
                upper = self.buckets[i]
                fraction = (rank - previous) / count if count else 0.0
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]

    def _sample_lines(self) -> Iterator[str]:
        label_names, prefix = self._exposed_labels()
        for key, state in self.series():
            key = prefix + key
            cumulative = 0
            for bound, count in zip(self.buckets, state.counts):
                cumulative += count
                labels = _format_labels(
                    label_names + ("le",), key + (_format_value(bound),)
                )
                yield f"{self.name}_bucket{labels} {cumulative}"
            labels = _format_labels(label_names + ("le",), key + ("+Inf",))
            yield f"{self.name}_bucket{labels} {state.count}"
            plain = _format_labels(label_names, key)
            yield f"{self.name}_sum{plain} {_format_value(state.sum)}"
            yield f"{self.name}_count{plain} {state.count}"


class MetricsRegistry:
    """A namespace of metrics with get-or-create handles and exposition."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- get-or-create handles -------------------------------------------

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                metric = Histogram(name, help, labels, buckets=buckets)
                self._metrics[name] = metric
                return metric
        self._check_compatible(existing, Histogram, name, labels)
        return existing

    def reset(self) -> None:
        """Zero every registered metric in place.

        Metric objects (and therefore every handle modules have cached)
        stay registered — only their recorded values are dropped.  A
        forked pool worker calls this on the inherited process-global
        registry before serving: whatever the parent recorded (warmup
        traffic, an earlier incarnation, a test harness) must not be
        re-reported by the new process, or fleet aggregation would count
        it once per worker.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset_values()

    def _get_or_create(self, cls, name: str, help: str, labels: Sequence[str]):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                metric = cls(name, help, labels)
                self._metrics[name] = metric
                return metric
        self._check_compatible(existing, cls, name, labels)
        return existing

    @staticmethod
    def _check_compatible(existing, cls, name: str, labels: Sequence[str]) -> None:
        if not isinstance(existing, cls):
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind}, "
                f"requested {cls.kind}"
            )
        if existing.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{existing.label_names}, requested {tuple(labels)}"
            )

    # -- inspection / exposition -----------------------------------------

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def collect(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        chunks = [metric.render() for metric in self.collect()]
        return "\n".join(chunks) + ("\n" if chunks else "")

    def to_dict(self) -> dict:
        """JSON-ready dump (the ``repro metrics`` CLI fallback format)."""
        out: dict[str, dict] = {}
        for metric in self.collect():
            entry: dict[str, object] = {"kind": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["series"] = [
                    {
                        "labels": dict(zip(metric.label_names, key)),
                        **metric.snapshot(**dict(zip(metric.label_names, key))),
                    }
                    for key, _ in metric.series()
                ]
            else:
                entry["series"] = [
                    {"labels": dict(zip(metric.label_names, key)), "value": value}
                    for key, value in metric.series()
                ]
            out[metric.name] = entry
        return out


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry used by module-level instrumentation."""
    return _DEFAULT_REGISTRY
