"""Nestable tracing spans: wall-time trees for the train→serve pipeline.

One context manager replaces the ad-hoc ``time.monotonic`` /
``perf_counter`` pairs that used to be scattered through the harness and
the server::

    with span("fit") as root:
        with span("fit/partition"):
            ...
        with span("fit/solve") as s:
            s.annotate(rung="penalty")

Spans nest through a thread-local stack, so instrumented layers compose
without passing anything around: the estimator's ``fit`` stages appear
as children of the service's retrain span automatically.  Completed
spans always carry their measured ``duration`` (timing is never
disabled — callers such as the eval harness read it back), while the
*side effects* respect the global switch in
:mod:`repro.observability.metrics`:

* every completed span's duration is recorded into the
  ``repro_span_seconds{span="..."}`` histogram of the default registry
  (the metrics bridge), and
* when trace logging is enabled (:func:`set_trace_logging`, the
  ``repro serve --log-json`` path), each completed *root* span emits one
  structured JSON log line with the whole tree.

Span names are slash-separated ``layer/stage`` paths (see
``docs/observability.md`` for the naming convention); keep the set of
distinct names small and bounded — they become metric label values.
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.observability import metrics as _metrics
from repro.observability.logs import get_logger, log_event

__all__ = [
    "Span",
    "span",
    "current_span",
    "last_trace",
    "add_span_observer",
    "remove_span_observer",
    "set_trace_logging",
    "trace_logging_enabled",
]

_local = threading.local()


class Span:
    """One timed region: name, attributes, duration and child spans."""

    __slots__ = ("name", "attrs", "children", "start", "duration", "root")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = str(name)
        self.attrs: dict = dict(attrs or {})
        self.children: list[Span] = []
        self.start = 0.0
        self.duration = 0.0
        self.root = False

    def annotate(self, **attrs) -> "Span":
        """Attach key/value attributes mid-flight (e.g. the solver rung)."""
        self.attrs.update(attrs)
        return self

    def find(self, name: str) -> "Span | None":
        """Depth-first lookup of a (grand)child span by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        """JSON-ready rendering of the subtree."""
        record: dict = {"span": self.name, "seconds": round(self.duration, 6)}
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration:.6f}s, children={len(self.children)})"


def _stack() -> list[Span]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@contextmanager
def span(name: str, **attrs) -> Iterator[Span]:
    """Open a nested span; yields the :class:`Span` for annotation."""
    record = Span(name, attrs)
    stack = _stack()
    parent = stack[-1] if stack else None
    record.root = parent is None
    stack.append(record)
    record.start = time.perf_counter()
    try:
        yield record
    finally:
        record.duration = time.perf_counter() - record.start
        if stack and stack[-1] is record:
            stack.pop()
        if parent is not None:
            parent.children.append(record)
        else:
            _local.last_trace = record
        for observer in list(_OBSERVERS):
            try:
                observer(record)
            except Exception:
                pass  # instrumentation must never break the instrumented code


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def last_trace() -> Span | None:
    """The most recently completed *root* span on this thread."""
    return getattr(_local, "last_trace", None)


# -- observers --------------------------------------------------------------

_OBSERVERS: list[Callable[[Span], None]] = []


def add_span_observer(observer: Callable[[Span], None]) -> Callable[[Span], None]:
    """Call ``observer(span)`` on every span completion (children included;
    check ``span.root`` to act on whole traces only)."""
    _OBSERVERS.append(observer)
    return observer


def remove_span_observer(observer: Callable[[Span], None]) -> None:
    try:
        _OBSERVERS.remove(observer)
    except ValueError:
        pass


def _span_seconds_histogram():
    return _metrics.default_registry().histogram(
        "repro_span_seconds",
        "Wall time of completed tracing spans",
        labels=("span",),
    )


def _metrics_bridge(record: Span) -> None:
    if not _metrics.enabled():
        return
    _span_seconds_histogram().observe(record.duration, span=record.name)


add_span_observer(_metrics_bridge)


# -- structured trace logging -----------------------------------------------

_TRACE_LOGGING = False


def set_trace_logging(flag: bool) -> bool:
    """Emit one JSON log line per completed root span; returns old value."""
    global _TRACE_LOGGING
    previous = _TRACE_LOGGING
    _TRACE_LOGGING = bool(flag)
    return previous


def trace_logging_enabled() -> bool:
    return _TRACE_LOGGING


def _trace_logger(record: Span) -> None:
    if not _TRACE_LOGGING or not record.root:
        return
    log_event(
        get_logger("trace"),
        "trace",
        level=logging.INFO,
        trace=record.to_dict(),
    )


add_span_observer(_trace_logger)
