"""Command-line interface.

Two subcommands cover the paper's workflow end to end:

``generate``
    Build a synthetic dataset, draw a labeled query workload from it, and
    save the workload to JSON (:mod:`repro.data.io` format).

``evaluate``
    Train one or more estimators on a workload (from a file, or generated
    on the fly) and print the evaluation table: model size, fit time,
    RMS / L∞ errors and Q-error quantiles.

Examples
--------
::

    python -m repro.cli generate --dataset power --attrs 0,3 \\
        --queries 200 --out train.json
    python -m repro.cli evaluate --dataset power --attrs 0,3 \\
        --train 200 --test 150 --methods quadhist,ptshist,quicksel
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.baselines import Isomer, MeanEstimator, QuickSel, UniformEstimator
from repro.core import GaussianMixtureHist, PtsHist, QuadHist
from repro.data import (
    WorkloadSpec,
    load_dataset,
    load_workload,
    save_workload,
)
from repro.eval import evaluate_estimator, format_table, make_workload
from repro.eval.harness import Workload

__all__ = ["main", "build_parser"]

_METHODS = {
    "quadhist": lambda n: QuadHist(tau=0.005, max_leaves=4 * n),
    "ptshist": lambda n: PtsHist(size=4 * n, seed=0),
    "gmm": lambda n: GaussianMixtureHist(components=4 * n, seed=0),
    "isomer": lambda n: Isomer(max_buckets=10_000),
    "quicksel": lambda n: QuickSel(),
    "uniform": lambda n: UniformEstimator(),
    "mean": lambda n: MeanEstimator(),
}


def _parse_attrs(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part != ""]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid attribute list {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learned selectivity estimation (SIGMOD 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--dataset",
        choices=["power", "forest", "census", "dmv"],
        default="power",
        help="synthetic evaluation dataset",
    )
    common.add_argument("--rows", type=int, default=25_000, help="dataset size")
    common.add_argument(
        "--attrs",
        type=_parse_attrs,
        default=[0, 3],
        help="comma-separated attribute indices to project on",
    )
    common.add_argument(
        "--query-kind", choices=["box", "ball", "halfspace"], default="box"
    )
    common.add_argument(
        "--center-kind", choices=["data", "random", "gaussian"], default="data"
    )
    common.add_argument("--seed", type=int, default=0)

    gen = sub.add_parser("generate", parents=[common], help="generate a labeled workload")
    gen.add_argument("--queries", type=int, default=200)
    gen.add_argument("--out", required=True, help="output JSON path")

    ev = sub.add_parser("evaluate", parents=[common], help="train and evaluate estimators")
    ev.add_argument("--train", type=int, default=200, help="training-set size")
    ev.add_argument("--test", type=int, default=150, help="test-set size")
    ev.add_argument(
        "--train-file", help="JSON workload to train on (overrides --train)"
    )
    ev.add_argument("--test-file", help="JSON workload to test on (overrides --test)")
    ev.add_argument(
        "--methods",
        default="quadhist,ptshist,quicksel",
        help="comma-separated subset of: " + ",".join(sorted(_METHODS)),
    )
    return parser


def _setup(args) -> tuple:
    dataset = load_dataset(args.dataset, rows=args.rows).project(args.attrs)
    spec = WorkloadSpec(query_kind=args.query_kind, center_kind=args.center_kind)
    rng = np.random.default_rng(args.seed)
    return dataset, spec, rng


def _cmd_generate(args) -> int:
    dataset, spec, rng = _setup(args)
    workload = make_workload(dataset, args.queries, rng, spec=spec)
    save_workload(args.out, workload.queries, workload.selectivities)
    print(
        f"wrote {len(workload)} labeled {args.query_kind} queries "
        f"({args.center_kind} centers, {dataset.name}) to {args.out}"
    )
    return 0


def _cmd_evaluate(args) -> int:
    dataset, spec, rng = _setup(args)
    if args.train_file:
        queries, labels = load_workload(args.train_file)
        train = Workload(queries, labels)
    else:
        train = make_workload(dataset, args.train, rng, spec=spec)
    if args.test_file:
        queries, labels = load_workload(args.test_file)
        test = Workload(queries, labels)
    else:
        test = make_workload(dataset, args.test, rng, spec=spec)

    method_names = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in method_names if m not in _METHODS]
    if unknown:
        print(f"error: unknown method(s) {unknown}; choose from {sorted(_METHODS)}", file=sys.stderr)
        return 2

    rows = []
    for name in method_names:
        estimator = _METHODS[name](len(train))
        result = evaluate_estimator(name, estimator, train, test)
        rows.append(result.row())
    print(
        format_table(
            rows,
            title=(
                f"{dataset.name}: {args.query_kind} queries, {args.center_kind} centers "
                f"(train={len(train)}, test={len(test)})"
            ),
        )
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    return _cmd_evaluate(args)


if __name__ == "__main__":
    raise SystemExit(main())
