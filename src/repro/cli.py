"""Command-line interface.

The subcommands cover the paper's workflow end to end:

``generate``
    Build a synthetic dataset, draw a labeled query workload from it, and
    save the workload to JSON (:mod:`repro.data.io` format).

``train``
    Fit one estimator on a workload and persist it as a versioned model
    artifact (``--save model.rma``, see :mod:`repro.persistence`); the
    manifest records the config, training-set fingerprint and fit time.

``evaluate``
    Train one or more estimators on a workload (from a file, or generated
    on the fly) and print the evaluation table: model size, fit time,
    RMS / L∞ errors and Q-error quantiles.  ``--sanitize drop`` screens
    dirty training pairs instead of aborting.  ``--load model.rma``
    scores previously saved artifacts on the same test set without
    refitting (their ``fit_s`` column reads 0).

``inspect``
    Pretty-print an artifact's manifest — estimator name, config, state
    summary, fingerprint — without constructing the model.

``serve``
    Run the fault-tolerant HTTP estimation sidecar
    (:mod:`repro.server`) with the robustness knobs exposed: sanitize
    policy, feedback-buffer capacity, circuit-breaker threshold/cooldown,
    and retrain timeout.  ``--snapshot-dir`` persists every retrain
    generation and warm-starts from the newest one on restart.
    ``--workers N`` (N > 1) scales out to a supervised pre-fork pool
    (:mod:`repro.serving`): crashed workers restart warm from the shared
    snapshot store behind a restart-storm breaker.  Both modes share the
    admission/deadline envelope — ``--max-concurrency``,
    ``--queue-depth`` (429 + ``Retry-After`` when full),
    ``--deadline-ms`` (504 past budget), ``--flush-ms`` (request
    coalescing window; 0 disables) — and both drain gracefully on
    SIGTERM/SIGINT: stop accepting, flush in-flight requests, snapshot,
    exit 0.  ``--log-json`` switches the structured logger to JSON lines
    (and enables span-trace logging); ``--access-log`` emits one log
    line per HTTP request.  With a pool, ``--ops-port`` additionally
    starts the supervisor's ops endpoint — aggregated fleet ``/metrics``
    (cross-worker counter sums with reset tracking), ``/workers``, and
    fleet ``/health``.

``metrics``
    Fetch and print the Prometheus text exposition from a running
    sidecar's ``GET /metrics`` endpoint (see ``docs/observability.md``).
    ``--aggregate`` scrapes the supervisor ops endpoint instead (default
    port 9090), returning the merged fleet-wide exposition; ``--lint``
    runs the exposition linter (:mod:`repro.observability.expolint`) on
    whatever was scraped and fails on malformed output.

``top``
    One-shot fleet dashboard against a pool's ops endpoint: per-worker
    liveness, restarts, incarnations, admission queue depth, and the
    headline fleet counters from the aggregated registry.

Examples
--------
::

    python -m repro.cli generate --dataset power --attrs 0,3 \\
        --queries 200 --out train.json
    python -m repro.cli train --dataset power --attrs 0,3 \\
        --train 200 --method quadhist --save model.rma
    python -m repro.cli evaluate --dataset power --attrs 0,3 \\
        --train 200 --test 150 --methods quadhist,ptshist,quicksel
    python -m repro.cli evaluate --dataset power --attrs 0,3 \\
        --test 150 --methods "" --load model.rma
    python -m repro.cli inspect model.rma
    python -m repro.cli serve --method quadhist --port 8080 \\
        --sanitize drop --retrain-every 50 --snapshot-dir ./snapshots
    python -m repro.cli serve --workers 4 --snapshot-dir ./snapshots \\
        --deadline-ms 250 --queue-depth 64 --flush-ms 2 --ops-port 9090
    python -m repro.cli metrics --port 8080
    python -m repro.cli metrics --aggregate --port 9090 --lint
    python -m repro.cli top --port 9090
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

import numpy as np

from repro.core.registry import estimator_factories
from repro.data import (
    WorkloadSpec,
    load_dataset,
    load_workload,
    save_workload,
)
from repro.eval import evaluate_estimator, format_table, make_workload
from repro.eval.harness import Workload
from repro.robustness import SANITIZE_POLICIES, ReproError

__all__ = ["main", "build_parser"]


def _parse_attrs(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part != ""]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid attribute list {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learned selectivity estimation (SIGMOD 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--dataset",
        choices=["power", "forest", "census", "dmv"],
        default="power",
        help="synthetic evaluation dataset",
    )
    common.add_argument("--rows", type=int, default=25_000, help="dataset size")
    common.add_argument(
        "--attrs",
        type=_parse_attrs,
        default=[0, 3],
        help="comma-separated attribute indices to project on",
    )
    common.add_argument(
        "--query-kind", choices=["box", "ball", "halfspace"], default="box"
    )
    common.add_argument(
        "--center-kind", choices=["data", "random", "gaussian"], default="data"
    )
    common.add_argument("--seed", type=int, default=0)

    gen = sub.add_parser("generate", parents=[common], help="generate a labeled workload")
    gen.add_argument("--queries", type=int, default=200)
    gen.add_argument("--out", required=True, help="output JSON path")

    tr = sub.add_parser(
        "train", parents=[common], help="fit one estimator and save it as an artifact"
    )
    tr.add_argument("--train", type=int, default=200, help="training-set size")
    tr.add_argument(
        "--train-file", help="JSON workload to train on (overrides --train)"
    )
    tr.add_argument(
        "--method",
        default="quadhist",
        help="estimator to fit; one of: " + ",".join(sorted(estimator_factories())),
    )
    tr.add_argument("--save", required=True, help="output artifact path (.rma)")
    tr.add_argument(
        "--sanitize",
        choices=list(SANITIZE_POLICIES),
        default=None,
        help="screen the training workload before fitting",
    )

    ev = sub.add_parser("evaluate", parents=[common], help="train and evaluate estimators")
    ev.add_argument("--train", type=int, default=200, help="training-set size")
    ev.add_argument("--test", type=int, default=150, help="test-set size")
    ev.add_argument(
        "--train-file", help="JSON workload to train on (overrides --train)"
    )
    ev.add_argument("--test-file", help="JSON workload to test on (overrides --test)")
    ev.add_argument(
        "--methods",
        default="quadhist,ptshist,quicksel",
        help="comma-separated subset of: " + ",".join(sorted(estimator_factories())),
    )
    ev.add_argument(
        "--sanitize",
        choices=list(SANITIZE_POLICIES),
        default=None,
        help="screen the training workload (drop/clamp dirty pairs, or "
        "raise on the first); default: strict label validation only",
    )
    ev.add_argument(
        "--load",
        default=None,
        help="comma-separated model artifacts (.rma) to score on the test "
        "set without refitting",
    )

    ins = sub.add_parser(
        "inspect", help="pretty-print a model artifact's manifest"
    )
    ins.add_argument("artifact", help="artifact path (.rma)")

    srv = sub.add_parser("serve", help="run the HTTP estimation sidecar")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8080)
    srv.add_argument(
        "--method",
        default="quadhist",
        help="estimator to serve; one of: " + ",".join(sorted(estimator_factories())),
    )
    srv.add_argument(
        "--expected-train",
        type=int,
        default=200,
        help="training-set size the model is dimensioned for",
    )
    srv.add_argument("--retrain-every", type=int, default=None)
    srv.add_argument("--min-feedback", type=int, default=20)
    srv.add_argument(
        "--sanitize",
        choices=list(SANITIZE_POLICIES),
        default="drop",
        help="feedback sanitization policy (default: drop/quarantine)",
    )
    srv.add_argument(
        "--feedback-capacity",
        type=int,
        default=None,
        help="bound on buffered feedback pairs (default: unbounded)",
    )
    srv.add_argument("--breaker-threshold", type=int, default=3)
    srv.add_argument("--breaker-cooldown", type=float, default=30.0)
    srv.add_argument(
        "--retrain-timeout",
        type=float,
        default=None,
        help="wall-clock budget per retrain in seconds",
    )
    srv.add_argument(
        "--incremental",
        action="store_true",
        help="absorb feedback via the incremental update() fast path "
        "(partial_fit with warm-started solves) instead of full refits; "
        "falls back to a retrain when the model cannot update in place",
    )
    srv.add_argument(
        "--update-budget",
        type=float,
        default=None,
        metavar="RESIDUAL",
        help="residual ceiling for accepting an incremental update; "
        "above it the service falls back to a full retrain "
        "(default: accept any residual)",
    )
    srv.add_argument(
        "--snapshot-dir",
        default=None,
        help="persist every retrain generation here and warm-start from "
        "the newest snapshot on restart (default: no persistence)",
    )
    srv.add_argument(
        "--snapshot-keep",
        type=int,
        default=5,
        help="snapshot generations to retain (default: 5)",
    )
    srv.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 runs the supervised pre-fork pool "
        "(default: 1, single process)",
    )
    srv.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        help="requests executing at once per worker (default: 8)",
    )
    srv.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="admission waiting room per worker; beyond it requests are "
        "shed with 429 + Retry-After (default: 32)",
    )
    srv.add_argument(
        "--deadline-ms",
        type=float,
        default=1000.0,
        help="default per-request deadline budget; expired requests get "
        "504 (clients override via X-Deadline-Ms; default: 1000)",
    )
    srv.add_argument(
        "--flush-ms",
        type=float,
        default=2.0,
        help="coalescing window folding concurrent estimates into one "
        "predict_many (0 disables; default: 2)",
    )
    srv.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="graceful-drain budget on SIGTERM before workers are "
        "killed (default: 10)",
    )
    srv.add_argument(
        "--sparse-crossover",
        type=float,
        default=None,
        metavar="DENSITY",
        help="candidate-density threshold above which sparse coverage "
        "kernels fall back to dense evaluation (0..1; default: "
        "REPRO_SPARSE_CROSSOVER or 0.02)",
    )
    srv.add_argument(
        "--ops-port",
        type=int,
        default=None,
        metavar="PORT",
        help="supervisor ops endpoint with aggregated fleet /metrics, "
        "/workers and /health (pool mode only; 0 picks a free port; "
        "default: disabled)",
    )
    srv.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured logs as JSON lines (also logs span traces)",
    )
    srv.add_argument(
        "--access-log",
        action="store_true",
        help="log one structured line per HTTP request",
    )

    met = sub.add_parser(
        "metrics", help="dump /metrics from a running sidecar"
    )
    met.add_argument(
        "--url",
        default=None,
        help="full metrics URL (overrides --host/--port)",
    )
    met.add_argument("--host", default="127.0.0.1")
    met.add_argument("--port", type=int, default=8080)
    met.add_argument(
        "--aggregate",
        action="store_true",
        help="scrape the supervisor ops endpoint (fleet-wide aggregated "
        "exposition) instead of one worker's /metrics",
    )
    met.add_argument(
        "--lint",
        action="store_true",
        help="run the exposition linter on the scraped page; non-zero "
        "exit on problems",
    )
    met.add_argument(
        "--timeout", type=float, default=5.0, help="HTTP timeout in seconds"
    )

    top = sub.add_parser(
        "top", help="one-shot fleet dashboard from a pool's ops endpoint"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument(
        "--port",
        type=int,
        default=9090,
        help="supervisor ops port (see serve --ops-port; default: 9090)",
    )
    top.add_argument(
        "--timeout", type=float, default=5.0, help="HTTP timeout in seconds"
    )
    top.add_argument(
        "--json", action="store_true", help="emit raw JSON instead of a table"
    )
    return parser


def _setup(args) -> tuple:
    dataset = load_dataset(args.dataset, rows=args.rows).project(args.attrs)
    spec = WorkloadSpec(query_kind=args.query_kind, center_kind=args.center_kind)
    rng = np.random.default_rng(args.seed)
    return dataset, spec, rng


def _cmd_generate(args) -> int:
    dataset, spec, rng = _setup(args)
    workload = make_workload(dataset, args.queries, rng, spec=spec)
    save_workload(args.out, workload.queries, workload.selectivities)
    print(
        f"wrote {len(workload)} labeled {args.query_kind} queries "
        f"({args.center_kind} centers, {dataset.name}) to {args.out}"
    )
    return 0


def _cmd_train(args) -> int:
    import time

    from repro.core.registry import make_estimator
    from repro.persistence import save_model

    dataset, spec, rng = _setup(args)
    if args.train_file:
        queries, labels = load_workload(args.train_file)
        train = Workload(queries, labels)
    else:
        train = make_workload(dataset, args.train, rng, spec=spec)
    try:
        estimator = make_estimator(args.method, train_size=len(train))
    except KeyError as exc:
        print(f"error: unknown method: {exc.args[0]}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    estimator.fit(train.queries, train.selectivities, policy=args.sanitize)
    fit_seconds = time.perf_counter() - start
    path = save_model(
        estimator,
        args.save,
        training=(train.queries, train.selectivities),
        metadata={"fit_seconds": round(fit_seconds, 4), "dataset": dataset.name},
    )
    print(
        f"fitted {args.method} on {len(train)} pairs in {fit_seconds:.3f}s "
        f"(model_size={estimator.model_size}); saved to {path}"
    )
    return 0


def _evaluate_artifact(path: str, test: Workload):
    """Score a persisted model on ``test`` (no refit: fit_seconds = 0)."""
    import time

    from repro.eval.metrics import linf_error, q_error_quantiles, rms_error
    from repro.persistence import load_manifest, load_model

    from repro.eval.harness import ExperimentResult

    estimator = load_model(path)
    manifest = load_manifest(path)
    start = time.perf_counter()
    predictions = estimator.predict_many(test.queries)
    predict_seconds = time.perf_counter() - start
    return ExperimentResult(
        name=f"{manifest['estimator']}@{path}",
        train_size=int(manifest.get("fit", {}).get("n_train", 0)),
        model_size=estimator.model_size,
        fit_seconds=0.0,
        predict_seconds=predict_seconds,
        rms=rms_error(predictions, test.selectivities),
        linf=linf_error(predictions, test.selectivities),
        q_quantiles=q_error_quantiles(predictions, test.selectivities),
    )


def _cmd_evaluate(args) -> int:
    dataset, spec, rng = _setup(args)
    if args.train_file:
        queries, labels = load_workload(args.train_file)
        train = Workload(queries, labels)
    else:
        train = make_workload(dataset, args.train, rng, spec=spec)
    if args.test_file:
        queries, labels = load_workload(args.test_file)
        test = Workload(queries, labels)
    else:
        test = make_workload(dataset, args.test, rng, spec=spec)

    factories = estimator_factories()
    method_names = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in method_names if m not in factories]
    if unknown:
        print(
            f"error: unknown method(s) {unknown}; choose from {sorted(factories)}",
            file=sys.stderr,
        )
        return 2
    artifacts = (
        [p.strip() for p in args.load.split(",") if p.strip()]
        if getattr(args, "load", None)
        else []
    )

    rows = []
    for name in method_names:
        estimator = factories[name](len(train))
        result = evaluate_estimator(
            name, estimator, train, test, sanitize_policy=args.sanitize
        )
        row = result.row()
        if args.sanitize is not None:
            row["quarantined"] = result.quarantined
        rows.append(row)
    for path in artifacts:
        rows.append(_evaluate_artifact(path, test).row())
    print(
        format_table(
            rows,
            title=(
                f"{dataset.name}: {args.query_kind} queries, {args.center_kind} centers "
                f"(train={len(train)}, test={len(test)})"
            ),
        )
    )
    return 0


def _cmd_inspect(args) -> int:
    import json

    from repro.persistence import load_manifest

    manifest = load_manifest(args.artifact)
    print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _cmd_serve(args) -> int:
    import socket

    from repro.observability import configure_logging, set_trace_logging
    from repro.server import EstimatorService
    from repro.serving import ServingConfig, Supervisor, worker_main

    configure_logging(json_mode=args.log_json)
    if args.log_json:
        set_trace_logging(True)
    if args.sparse_crossover is not None:
        from repro.geometry.sparse import set_crossover_threshold

        set_crossover_threshold(args.sparse_crossover)
        # Spawned workers re-import repro.geometry.sparse, which seeds the
        # threshold from the environment — propagate the override to them.
        os.environ["REPRO_SPARSE_CROSSOVER"] = repr(args.sparse_crossover)
    factories = estimator_factories()
    if args.method not in factories:
        print(
            f"error: unknown method {args.method!r}; choose from {sorted(factories)}",
            file=sys.stderr,
        )
        return 2
    factory = factories[args.method]
    if args.workers > 1 and args.snapshot_dir is None:
        print(
            "error: --workers > 1 requires --snapshot-dir (workers share "
            "models through the snapshot store)",
            file=sys.stderr,
        )
        return 2

    def make_service() -> EstimatorService:
        return EstimatorService(
            lambda: factory(args.expected_train),
            retrain_every=args.retrain_every,
            min_feedback=args.min_feedback,
            sanitize_policy=args.sanitize,
            feedback_capacity=args.feedback_capacity,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            retrain_timeout=args.retrain_timeout,
            incremental_updates=args.incremental,
            update_residual_budget=args.update_budget,
            snapshot_dir=args.snapshot_dir,
            snapshot_keep=args.snapshot_keep,
            seed=args.seed if hasattr(args, "seed") else 0,
        )

    if args.ops_port is not None and args.workers <= 1:
        print(
            "error: --ops-port requires --workers > 1 (the ops endpoint "
            "is served by the pool supervisor)",
            file=sys.stderr,
        )
        return 2
    config = ServingConfig(
        workers=max(1, args.workers),
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        deadline_ms=args.deadline_ms,
        flush_ms=args.flush_ms,
        drain_timeout_s=args.drain_timeout,
        access_log=args.access_log,
        ops_port=args.ops_port,
    )
    banner = (
        f"(sanitize={args.sanitize}, breaker k={args.breaker_threshold}, "
        f"deadline {args.deadline_ms:g}ms, queue {args.queue_depth}, "
        f"metrics at /metrics)"
    )

    if args.workers > 1:
        supervisor = Supervisor(
            make_service, config=config, host=args.host, port=args.port
        )
        host, port = supervisor.start()
        print(
            f"serving {args.method} on http://{host}:{port} with "
            f"{args.workers} workers {banner}"
        )
        if args.ops_port is not None:
            ops_host, ops_port = supervisor.ops_address
            print(
                f"ops endpoint on http://{ops_host}:{ops_port} "
                "(aggregated /metrics, /workers, /health)"
            )
        report = supervisor.run_forever()  # blocks until SIGTERM/SIGINT
        print(
            f"pool drained (clean: {report['drained']}, "
            f"killed: {report['killed']})"
        )
        return 1 if report["killed"] else 0

    # Single process: same admission/deadline/coalescing envelope and the
    # same SIGTERM graceful drain (stop accepting, flush in-flight,
    # snapshot, exit 0) — what systemd/containers expect of `repro serve`.
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((args.host, args.port))
    sock.listen(128)
    host, port = sock.getsockname()[:2]
    print(f"serving {args.method} on http://{host}:{port} {banner}")
    worker_main(0, make_service, config, sock)  # returns after drain
    print("drained")
    return 0


def _scrape(url: str, timeout: float) -> str:
    import urllib.request

    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _cmd_metrics(args) -> int:
    import urllib.error

    if args.url:
        url = args.url
    else:
        # --aggregate targets the supervisor ops endpoint, which serves
        # the merged fleet exposition on the same /metrics path.
        url = f"http://{args.host}:{args.port}/metrics"
    try:
        body = _scrape(url, args.timeout)
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: could not scrape {url}: {exc}", file=sys.stderr)
        return 1
    sys.stdout.write(body)
    if args.lint:
        from repro.observability import lint_exposition

        problems = lint_exposition(body)
        for problem in problems:
            print(f"lint: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"# lint ok ({url})", file=sys.stderr)
    return 0


def _cmd_top(args) -> int:
    import json
    import urllib.error

    from repro.observability import parse_exposition

    base = f"http://{args.host}:{args.port}"
    try:
        workers = json.loads(_scrape(f"{base}/workers", args.timeout))
        health = json.loads(_scrape(f"{base}/health", args.timeout))
        exposition = _scrape(f"{base}/metrics", args.timeout)
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(
            f"error: could not reach ops endpoint {base}: {exc}",
            file=sys.stderr,
        )
        return 1
    families, _ = parse_exposition(exposition)
    if args.json:
        print(json.dumps({"health": health, "workers": workers}, indent=2))
        return 0

    status = health.get("status", "?")
    alive = health.get("alive", "?")
    total = health.get("workers", "?")
    print(f"fleet: {status}  workers {alive}/{total}")
    for reason in health.get("reasons", []):
        print(f"  ! {reason}")

    slots = workers.get("slots", [])
    print(
        f"{'id':>3} {'pid':>7} {'alive':>5} {'status':>9} {'inc':>4} "
        f"{'restarts':>8} {'executing':>9} {'waiting':>7}"
    )
    for slot in slots:
        payload = slot.get("last_payload") or {}
        admission = payload.get("admission") or {}
        print(
            f"{slot.get('index', '?'):>3} {slot.get('pid') or '-':>7} "
            f"{str(slot.get('alive')):>5} {payload.get('status') or '?':>9} "
            f"{slot.get('incarnation', 0):>4} {slot.get('restarts', 0):>8} "
            f"{admission.get('executing', 0):>9} {admission.get('waiting', 0):>7}"
        )

    headline = (
        ("queries", "repro_service_queries_total"),
        ("cache_hits", "repro_prediction_cache_hits_total"),
        ("cache_misses", "repro_prediction_cache_misses_total"),
        ("shed", "repro_requests_shed_total"),
        ("retrains", "repro_retrain_total"),
    )
    parts = []
    for label, metric in headline:
        family = families.get(metric)
        if family is None or family.get("type") == "histogram":
            continue
        # The aggregated page carries per-worker series; the fleet total
        # is their sum.
        value = sum(sample[2] for sample in family["samples"])
        parts.append(f"{label}={value:g}")
    if parts:
        print("fleet counters: " + "  ".join(parts))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "train":
            return _cmd_train(args)
        if args.command == "inspect":
            return _cmd_inspect(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "top":
            return _cmd_top(args)
        return _cmd_evaluate(args)
    except ReproError as exc:
        print(f"error ({type(exc).__name__}): {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
