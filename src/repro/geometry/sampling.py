"""Uniform sampling from range interiors (Appendix A.2 of the paper).

PtsHist seeds its buckets with points drawn uniformly from the interiors of
training-query ranges.  For boxes this is a per-dimension uniform draw; for
halfspaces and balls (and any other range) the paper uses *rejection
sampling* from the smallest bounding box.  The halfspace bounding box is
tightened by the interval fixpoint iteration of Appendix A.2, implemented in
:func:`halfspace_bounding_box`.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.ranges import Box, Halfspace, Range, unit_box

__all__ = [
    "sample_in_box",
    "smallest_bounding_box",
    "halfspace_bounding_box",
    "rejection_sample",
]

#: Rejection sampling gives up after this many candidate batches and falls
#: back to the nearest feasible points found so far (Appendix A.2 notes the
#: generic approach offers "adequate performance in practice"; the cap keeps
#: degenerate, near-measure-zero ranges from looping forever).
_MAX_BATCHES = 64


def sample_in_box(box: Box, count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform sample of ``count`` points from an axis-aligned box."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    unit = rng.random((count, box.dim))
    return box.lows + unit * box.widths


def halfspace_bounding_box(halfspace: Halfspace, domain: Box) -> Box:
    """Smallest box containing ``halfspace ∩ domain`` (Appendix A.2 fixpoint).

    Starting from the domain box, each dimension's interval is tightened
    using the extremes the constraint permits given the other dimensions'
    current intervals, iterating until no interval changes.  For a single
    linear constraint one pass already reaches the fixpoint, but we iterate
    anyway to match the appendix's description (and to stay correct if the
    domain is not the unit cube).
    """
    if halfspace.dim != domain.dim:
        raise ValueError("dimension mismatch between halfspace and domain")
    lows = domain.lows.copy()
    highs = domain.highs.copy()
    normal = halfspace.normal
    offset = halfspace.offset
    for _ in range(halfspace.dim + 1):
        changed = False
        # Largest achievable contribution of each dimension to a.x.
        best = np.maximum(normal * lows, normal * highs)
        total_best = float(np.sum(best))
        for axis in range(halfspace.dim):
            coeff = normal[axis]
            if coeff == 0.0:
                continue
            others_best = total_best - best[axis]
            bound = (offset - others_best) / coeff
            if coeff > 0.0 and bound > lows[axis] + 1e-15:
                lows[axis] = min(bound, highs[axis])
                changed = True
            elif coeff < 0.0 and bound < highs[axis] - 1e-15:
                highs[axis] = max(bound, lows[axis])
                changed = True
            if changed:
                best[axis] = max(coeff * lows[axis], coeff * highs[axis])
                total_best = float(np.sum(best))
        if not changed:
            break
    if np.any(lows > highs):
        # Empty intersection: collapse to a boundary point of the domain.
        point = np.clip(lows, domain.lows, domain.highs)
        return Box(point, point)
    return Box(lows, highs)


def smallest_bounding_box(range_: Range, domain: Box | None = None) -> Box:
    """Smallest axis-aligned box containing ``range ∩ domain``."""
    if domain is None:
        domain = unit_box(range_.dim)
    if isinstance(range_, Halfspace):
        return halfspace_bounding_box(range_, domain)
    bbox = range_.bounding_box()
    clipped = bbox.intersect(domain)
    if clipped is None:
        point = np.clip(bbox.lows, domain.lows, domain.highs)
        return Box(point, point)
    return clipped


def rejection_sample(
    range_: Range,
    count: int,
    rng: np.random.Generator,
    domain: Box | None = None,
) -> np.ndarray:
    """Draw ``count`` (approximately) uniform points from ``range ∩ domain``.

    Implements Appendix A.2: sample uniformly from the smallest bounding box
    and keep points that fall inside the range.  If the acceptance rate is
    pathologically low the sampler stops after a bounded number of batches
    and pads the result with the accepted points recycled (or, if nothing
    was ever accepted, with bounding-box points) — PtsHist only needs the
    points as bucket *positions*, so graceful degradation is preferable to
    an unbounded loop.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.empty((0, range_.dim))
    if domain is None:
        domain = unit_box(range_.dim)
    bbox = smallest_bounding_box(range_, domain)
    if isinstance(range_, Box):
        inner = range_.intersect(domain)
        target = inner if inner is not None else bbox
        return sample_in_box(target, count, rng)
    if bbox.volume() <= 0.0:
        return np.tile(bbox.lows, (count, 1))

    accepted: list[np.ndarray] = []
    total = 0
    batch = max(count, 32)
    for _ in range(_MAX_BATCHES):
        candidates = sample_in_box(bbox, batch, rng)
        keep = candidates[np.asarray(range_.contains(candidates))]
        if keep.size:
            accepted.append(keep)
            total += keep.shape[0]
        if total >= count:
            break
    if not accepted:
        return np.tile(bbox.center(), (count, 1))
    points = np.concatenate(accepted, axis=0)
    if points.shape[0] >= count:
        return points[:count]
    # Recycle accepted points (with replacement) to reach the requested size.
    extra_idx = rng.integers(0, points.shape[0], size=count - points.shape[0])
    return np.concatenate([points, points[extra_idx]], axis=0)
