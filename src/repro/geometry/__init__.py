"""Geometric substrate: query ranges, volumes, sampling, and arrangements.

Every query class studied in the paper (orthogonal ranges, halfspaces,
Euclidean balls, semi-algebraic sets, disc-intersection ranges) is modelled
here as a :class:`~repro.geometry.ranges.Range` with a uniform interface:
membership tests, bounding boxes, and (intersection) volumes against
axis-aligned boxes.  The learning algorithms in :mod:`repro.core` are written
against that interface only, which is what makes them generic across query
classes -- mirroring the genericity claim of Section 3 of the paper.
"""

from repro.geometry.ranges import (
    Ball,
    Box,
    DiscIntersectionRange,
    Halfspace,
    Range,
    SemiAlgebraicRange,
    UnionRange,
    unit_box,
)
from repro.geometry.volume import (
    ball_volume,
    box_ball_intersection_volume,
    box_box_intersection_volume,
    box_halfspace_intersection_volume,
    intersection_volume,
    unit_ball_volume,
)
from repro.geometry.sampling import (
    halfspace_bounding_box,
    rejection_sample,
    sample_in_box,
    smallest_bounding_box,
)
from repro.geometry.arrangement import (
    box_arrangement_cells,
    sign_vector_cells,
)
from repro.geometry.batch import (
    box_ball_volume_matrix,
    box_box_volume_matrix,
    box_halfspace_volume_matrix,
    boxes_to_arrays,
    containment_matrix,
    coverage_matrix,
    intersection_volume_matrix,
)
from repro.geometry.index import (
    BucketIndex,
    PackedRTreeIndex,
    UniformGridIndex,
    build_bucket_index,
)
from repro.geometry.sparse import (
    coverage_matrix_csr,
    intersection_volume_matrix_csr,
    sparse_containment_dot,
    sparse_containment_matrix,
    sparse_coverage_dot,
    sparse_coverage_matrix,
    sparse_intersection_volume_matrix,
)

__all__ = [
    "Ball",
    "Box",
    "DiscIntersectionRange",
    "Halfspace",
    "Range",
    "SemiAlgebraicRange",
    "UnionRange",
    "unit_box",
    "ball_volume",
    "box_ball_intersection_volume",
    "box_box_intersection_volume",
    "box_halfspace_intersection_volume",
    "intersection_volume",
    "unit_ball_volume",
    "halfspace_bounding_box",
    "rejection_sample",
    "sample_in_box",
    "smallest_bounding_box",
    "box_arrangement_cells",
    "sign_vector_cells",
    "boxes_to_arrays",
    "box_box_volume_matrix",
    "box_halfspace_volume_matrix",
    "box_ball_volume_matrix",
    "intersection_volume_matrix",
    "coverage_matrix",
    "containment_matrix",
    "BucketIndex",
    "UniformGridIndex",
    "PackedRTreeIndex",
    "build_bucket_index",
    "sparse_coverage_dot",
    "sparse_coverage_matrix",
    "sparse_intersection_volume_matrix",
    "coverage_matrix_csr",
    "intersection_volume_matrix_csr",
    "sparse_containment_dot",
    "sparse_containment_matrix",
]
