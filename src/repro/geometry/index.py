"""Spatial index over bucket bounding boxes for sub-linear candidate pruning.

Every estimator's predict path reduces to Eq. (8)'s coverage matrix
``Vol(B_j ∩ R_i)/Vol(B_j)``, but a typical range query intersects a small
fraction of the buckets: the other entries are exactly zero, and the dense
kernels in :mod:`repro.geometry.batch` spend almost all of their time
computing them.  This module answers the only question the sparse kernels
(:mod:`repro.geometry.sparse`) need: *which buckets can a query's bounding
box possibly touch?*

Two interchangeable structures, selected automatically by
:func:`build_bucket_index`:

* :class:`UniformGridIndex` — a uniform grid over the buckets' joint
  bounding box with ~one cell per bucket.  Each cell stores the ids of the
  buckets whose bounding boxes overlap it (CSR layout).  This is the right
  structure for partition-shaped bucket sets (quadtree/kd-tree leaves,
  arrangement cells, PtsHist support points) where bucket extents are
  commensurate with cell size.
* :class:`PackedRTreeIndex` — an STR-style bulk-loaded (packed) R-tree.
  When bucket extents are heavily skewed (a few huge buckets covering most
  of the domain — ISOMER remainders, STHoles parents, QuickSel's domain
  kernel), the big buckets flood a uniform grid's cells and grid lookups
  degenerate toward a linear scan; the R-tree's hierarchical bounding
  boxes stay balanced regardless of extent skew.

Both expose the same query API:

* :meth:`~BucketIndex.candidates_for_boxes` — CSR ``(indptr, indices)``
  candidate sets for a batch of query boxes, fully vectorised (no Python
  loop over queries), ids strictly ascending within each row;
* :meth:`~BucketIndex.candidates` — convenience single-query form;
* :meth:`~BucketIndex.halfspace_candidates` — boolean keep-mask per
  (halfspace, bucket) from the corner-support test ``max_{x∈B} a·x ≥ b``
  (no spatial traversal needed, just cached centers/half-widths).

Correctness contract: the candidate set is a **superset** of the buckets
whose boxes intersect the (finite) query box, so every pruned pair has
exactly zero intersection volume in the dense kernels — pruning never
changes a prediction, it only skips work.  Queries with non-finite bounds
get an empty candidate set; callers that must mirror dense NaN semantics
route those rows to the dense kernels instead.

The index is a fit-time structure: estimators build it once after bucket
design and rebuild it (deterministically, from the persisted bucket
arrays) when a model is restored from an ``.rma`` artifact — it is never
serialised itself.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BucketIndex",
    "UniformGridIndex",
    "PackedRTreeIndex",
    "build_bucket_index",
    "GRID_OCCUPANCY_FACTOR",
]

#: A uniform grid is abandoned for the packed R-tree when the average
#: bucket overlaps more than this many grid cells — the signature of an
#: extent-skewed bucket set, where grid lookups degenerate.
GRID_OCCUPANCY_FACTOR = 4.0

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def _ranks(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Owner index and local rank for a ragged expansion.

    Given per-owner item counts, returns ``(owners, ranks)`` of length
    ``counts.sum()`` where item ``t`` belongs to ``owners[t]`` and is that
    owner's ``ranks[t]``-th item.  This is the vectorised replacement for
    "for each owner, for each of its items" double loops.
    """
    counts = np.asarray(counts, dtype=np.int64)
    owners = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    ranks = np.arange(owners.size, dtype=np.int64) - offsets[owners]
    return owners, ranks


def _csr_from_pairs(
    qidx: np.ndarray, ids: np.ndarray, n: int, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sort (query, bucket) pairs row-major, dedupe, and emit CSR."""
    key = qidx * np.int64(m) + ids
    order = np.argsort(key, kind="stable")
    key = key[order]
    keep = np.ones(key.size, dtype=bool)
    keep[1:] = key[1:] != key[:-1]
    qidx = qidx[order][keep]
    ids = ids[order][keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(qidx, minlength=n), out=indptr[1:])
    return indptr, ids


class BucketIndex:
    """Shared query API over ``m`` bucket bounding boxes."""

    kind: str = "abstract"

    def __init__(self, b_lows: np.ndarray, b_highs: np.ndarray):
        b_lows = np.asarray(b_lows, dtype=float)
        b_highs = np.asarray(b_highs, dtype=float)
        if b_lows.ndim != 2 or b_lows.shape != b_highs.shape:
            raise ValueError(
                f"bucket bounds must be matching (m, d) arrays, got "
                f"{b_lows.shape} and {b_highs.shape}"
            )
        if b_lows.shape[0] == 0:
            raise ValueError("at least one bucket is required")
        self.b_lows = b_lows
        self.b_highs = b_highs
        self.m, self.dim = b_lows.shape
        # Corner-support precomputation for the halfspace prune:
        # max_{x in B} a.x = a . center + |a| . half_widths.
        self._centers = 0.5 * (b_lows + b_highs)
        self._half_widths = 0.5 * (b_highs - b_lows)

    def candidates_for_boxes(
        self, q_lows: np.ndarray, q_highs: np.ndarray, max_pairs: int | None = None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """CSR candidate sets for ``n`` query boxes.

        Returns ``(indptr, indices)`` with ``indptr`` of shape ``(n+1,)``
        and ``indices[indptr[i]:indptr[i+1]]`` the ascending candidate
        bucket ids of query ``i``.

        ``max_pairs`` is the high-density escape hatch: when a cheap
        mid-lookup estimate (which may count duplicates, so it can
        overshoot the deduped total) exceeds it, the lookup returns
        ``None`` *before* paying for the full gather/sort — the caller is
        expected to fall back to the dense kernel, which is faster in
        that regime anyway.
        """
        raise NotImplementedError

    def candidates(self, q_low: np.ndarray, q_high: np.ndarray) -> np.ndarray:
        """Ascending ids of buckets whose boxes may intersect one query box."""
        q_low = np.asarray(q_low, dtype=float)
        q_high = np.asarray(q_high, dtype=float)
        _, ids = self.candidates_for_boxes(q_low[None, :], q_high[None, :])
        return ids

    def halfspace_candidates(
        self, normals: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Keep-mask of shape ``(n_halfspaces, m)`` via the corner test.

        A bucket can intersect ``{a.x >= b}`` iff its supporting corner
        reaches the threshold: ``a.c + |a|.h >= b``.  The margin keeps
        boundary-touching buckets (whose intersection the dense kernel
        evaluates to an exact zero volume anyway) on the safe side of
        float rounding.
        """
        normals = np.asarray(normals, dtype=float)
        offsets = np.asarray(offsets, dtype=float)
        support = normals @ self._centers.T + np.abs(normals) @ self._half_widths.T
        scale = np.maximum(1.0, np.abs(support))
        return support >= offsets[:, None] - 1e-9 * scale


class UniformGridIndex(BucketIndex):
    """Uniform grid with ~one cell per bucket and CSR cell→bucket lists."""

    kind = "grid"

    def __init__(
        self,
        b_lows: np.ndarray,
        b_highs: np.ndarray,
        cells_per_dim: int | None = None,
    ):
        super().__init__(b_lows, b_highs)
        m, d = self.m, self.dim
        self.lo = np.min(self.b_lows, axis=0)
        self.hi = hi = np.max(self.b_highs, axis=0)
        span = hi - self.lo
        if cells_per_dim is None:
            # ~m cells total so the expected occupancy is O(1) per cell.
            cells_per_dim = max(1, int(round(m ** (1.0 / d))))
        res = np.full(d, int(cells_per_dim), dtype=np.int64)
        res[span <= 0.0] = 1  # degenerate dimension: one slab
        self.res = res
        self.inv_width = np.where(span > 0.0, res / np.where(span > 0.0, span, 1.0), 0.0)
        # Row-major strides over the flattened cell grid.
        strides = np.ones(d, dtype=np.int64)
        for k in range(d - 2, -1, -1):
            strides[k] = strides[k + 1] * res[k + 1]
        self.strides = strides
        self.n_cells = int(strides[0] * res[0])
        self._build_cells()

    def _cell_ranges(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Clipped cell ranges plus an empty-result mask per box."""
        f0 = np.floor((lows - self.lo) * self.inv_width)
        f1 = np.floor((highs - self.lo) * self.inv_width)
        # Disjointness is decided in *coordinate* space with closed-box
        # semantics: a box merely touching the grid boundary still
        # intersects it.  (Deciding it on floored cell indices loses
        # zero-extent buckets sitting exactly at the grid max, whose
        # f0 == res floors past the last cell.)  Non-finite boxes resolve
        # to empty: clipping a NaN does not produce a valid cell index.
        finite = np.isfinite(f0).all(axis=1) & np.isfinite(f1).all(axis=1)
        outside = np.any(highs < self.lo, axis=1) | np.any(lows > self.hi, axis=1)
        empty = ~finite | outside
        c0 = np.clip(np.nan_to_num(f0), 0, self.res - 1).astype(np.int64)
        c1 = np.clip(np.nan_to_num(f1), 0, self.res - 1).astype(np.int64)
        return c0, np.maximum(c1, c0), empty

    def _expand_cells(
        self, c0: np.ndarray, c1: np.ndarray, empty: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flattened cell ids for every (box, covered cell) pair."""
        spans = c1 - c0 + 1
        counts = np.where(empty, 0, np.prod(spans, axis=1))
        owners, ranks = _ranks(counts)
        cells = np.zeros(owners.size, dtype=np.int64)
        for k in range(self.dim - 1, -1, -1):
            s = spans[owners, k]
            cells += (c0[owners, k] + ranks % s) * self.strides[k]
            ranks //= s
        return owners, cells

    def _build_cells(self) -> None:
        c0, c1, empty = self._cell_ranges(self.b_lows, self.b_highs)
        owners, cells = self._expand_cells(c0, c1, empty)
        self.occupancy = owners.size / max(1, self.m)
        order = np.argsort(cells, kind="stable")
        self.cell_buckets = owners[order]
        self.cell_indptr = np.zeros(self.n_cells + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(cells, minlength=self.n_cells), out=self.cell_indptr[1:]
        )

    def candidates_for_boxes(
        self, q_lows: np.ndarray, q_highs: np.ndarray, max_pairs: int | None = None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        q_lows = np.asarray(q_lows, dtype=float)
        q_highs = np.asarray(q_highs, dtype=float)
        n = q_lows.shape[0]
        c0, c1, empty = self._cell_ranges(q_lows, q_highs)
        owners, cells = self._expand_cells(c0, c1, empty)
        # Gather every visited cell's bucket list with a second expansion.
        starts = self.cell_indptr[cells]
        hit_counts = self.cell_indptr[cells + 1] - starts
        if max_pairs is not None and int(hit_counts.sum()) > max_pairs:
            return None
        entry_owner, entry_rank = _ranks(hit_counts)
        ids = self.cell_buckets[starts[entry_owner] + entry_rank]
        qidx = owners[entry_owner]
        return _csr_from_pairs(qidx, ids, n, self.m)


class PackedRTreeIndex(BucketIndex):
    """STR-style bulk-loaded R-tree: robust to extent-skewed bucket sets."""

    kind = "rtree"

    def __init__(self, b_lows: np.ndarray, b_highs: np.ndarray, fanout: int = 32):
        super().__init__(b_lows, b_highs)
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.fanout = int(fanout)
        self.order = np.arange(self.m, dtype=np.int64)  # leaf slot -> bucket id
        self._str_sort(self.order, axis=0)
        # Pack levels bottom-up; each level stores (lows, highs, start,
        # stop): node i of a level covers child slots [start[i], stop[i])
        # of the level below (leaf slots for the deepest level).
        self.levels: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        lows = self.b_lows[self.order]
        highs = self.b_highs[self.order]
        while True:
            count = lows.shape[0]
            n_nodes = -(-count // self.fanout)
            starts = np.arange(n_nodes, dtype=np.int64) * self.fanout
            stops = np.minimum(starts + self.fanout, count)
            node_lows = np.stack([lows[a:b].min(axis=0) for a, b in zip(starts, stops)])
            node_highs = np.stack([highs[a:b].max(axis=0) for a, b in zip(starts, stops)])
            self.levels.append((node_lows, node_highs, starts, stops))
            if n_nodes == 1:
                break
            lows, highs = node_lows, node_highs
        self.levels.reverse()  # root level first

    def _str_sort(self, seg: np.ndarray, axis: int) -> None:
        """Sort-Tile-Recursive ordering: sort a segment by one center
        coordinate, slab it, and recurse into the next axis per slab."""
        centers = self._centers
        seg[:] = seg[np.argsort(centers[seg, axis], kind="stable")]
        if axis == self.dim - 1:
            return
        groups = -(-seg.size // self.fanout)
        remaining = self.dim - axis - 1
        slab = self.fanout * max(
            1, int(np.ceil(groups ** (remaining / (remaining + 1.0))))
        )
        for start in range(0, seg.size, slab):
            self._str_sort(seg[start : start + slab], axis + 1)

    def candidates_for_boxes(
        self, q_lows: np.ndarray, q_highs: np.ndarray, max_pairs: int | None = None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        q_lows = np.asarray(q_lows, dtype=float)
        q_highs = np.asarray(q_highs, dtype=float)
        n = q_lows.shape[0]
        finite = np.isfinite(q_lows).all(axis=1) & np.isfinite(q_highs).all(axis=1)
        # Level-synchronous frontier of (query, node) pairs, all queries at
        # once: expand surviving nodes' child ranges, test child boxes, and
        # repeat until the leaf slots are tested against the bucket boxes.
        root_lows, root_highs = self.levels[0][0], self.levels[0][1]
        n_roots = root_lows.shape[0]
        quer = np.repeat(np.flatnonzero(finite), n_roots)
        nodes = np.tile(np.arange(n_roots, dtype=np.int64), int(finite.sum()))
        ok = np.all(root_lows[nodes] <= q_highs[quer], axis=1) & np.all(
            root_highs[nodes] >= q_lows[quer], axis=1
        )
        quer, nodes = quer[ok], nodes[ok]
        for level in range(len(self.levels)):
            starts, stops = self.levels[level][2], self.levels[level][3]
            owners, ranks = _ranks(stops[nodes] - starts[nodes])
            child = starts[nodes][owners] + ranks
            quer = quer[owners]
            if max_pairs is not None and child.size > max_pairs:
                return None
            if level + 1 < len(self.levels):
                lows, highs = self.levels[level + 1][0], self.levels[level + 1][1]
                ok = np.all(lows[child] <= q_highs[quer], axis=1) & np.all(
                    highs[child] >= q_lows[quer], axis=1
                )
                quer, nodes = quer[ok], child[ok]
            else:
                ids = self.order[child]
                ok = np.all(self.b_lows[ids] <= q_highs[quer], axis=1) & np.all(
                    self.b_highs[ids] >= q_lows[quer], axis=1
                )
                return _csr_from_pairs(quer[ok], ids[ok], n, self.m)
        raise AssertionError("unreachable: the leaf level always returns")


def build_bucket_index(
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    *,
    grid_occupancy_factor: float = GRID_OCCUPANCY_FACTOR,
) -> BucketIndex:
    """Build the right index for a bucket set.

    Tries the uniform grid first (cheapest lookups for partition-shaped
    bucket sets); if the measured cell occupancy shows extent skew — the
    average bucket overlapping more than ``grid_occupancy_factor`` cells —
    the grid is discarded for the packed R-tree, whose balance does not
    depend on bucket extents.
    """
    grid = UniformGridIndex(b_lows, b_highs)
    if grid.occupancy <= grid_occupancy_factor:
        return grid
    return PackedRTreeIndex(b_lows, b_highs)
