"""Sparse coverage kernels: evaluate Eq. (8) only on candidate pairs.

The dense kernels in :mod:`repro.geometry.batch` compute every entry of
the ``(n_queries × n_buckets)`` volume matrix even though most entries of
a typical workload are exactly zero.  Given a
:class:`~repro.geometry.index.BucketIndex` over the bucket bounding
boxes, this module evaluates the box/halfspace/ball kernels **only on the
candidate (query, bucket) pairs** the index reports, and scatters (or
reduces) the results:

* :func:`sparse_coverage_dot` — the prediction hot path,
  ``coverage_matrix(...) @ weights`` without touching pruned pairs;
* :func:`sparse_coverage_matrix` / :func:`sparse_intersection_volume_matrix`
  — dense ``ndarray`` outputs for the design-matrix builders (pruned
  entries are exact zeros, so the solvers see the same matrix);
* :func:`coverage_matrix_csr` / :func:`intersection_volume_matrix_csr` —
  the same matrices in SciPy CSR form for sparsity-aware consumers;
* :func:`sparse_containment_dot` / :func:`sparse_containment_matrix` —
  the Eq. (7) membership analogues for point-support models.

Numerical contract: candidate pairs run the *same arithmetic per pair* as
the dense kernels, and pruned pairs are pairs the dense kernels evaluate
to exactly ``0.0`` (bounding boxes disjoint, or a halfspace that misses
the bucket's supporting corner).  Predictions therefore agree with the
dense path to ≤1e-12 — pinned registry-wide by
``tests/core/test_sparse_predict.py``.

Dense fallbacks (auto-selected per call, per range family):

* range families without a bounding box (semi-algebraic, unions) always
  take the dense per-query kernel;
* queries with non-finite bounds take the dense kernel so NaN propagation
  matches (`predict_many` maps non-finite estimates to 0.5);
* workloads whose **measured candidate density** (candidate pairs divided
  by ``n·m``) exceeds the crossover threshold take the dense kernel — at
  high density the dense kernels' contiguous broadcasts beat gathered
  pair evaluation;
* bucket sets smaller than the minimum-bucket floor skip the index
  entirely — below a few thousand buckets the dense kernels win outright.

Both knobs are configurable (:func:`set_crossover_threshold`,
:func:`set_min_sparse_buckets`; env ``REPRO_SPARSE_CROSSOVER`` /
``REPRO_SPARSE_MIN_BUCKETS`` at import) and observable: the
``repro_sparse_candidates`` / ``repro_sparse_pruned_frac`` series expose
per-kernel candidate volume and pruning ratio on ``/metrics``, and
``repro_sparse_crossover`` the active threshold, so the crossover can be
tuned from production traffic.
"""

from __future__ import annotations

import math
import os
from typing import Sequence

import numpy as np

from repro.geometry.batch import (
    CHUNK_ELEMENTS,
    _group_by_kind,
    boxes_to_arrays,
    containment_matrix,
    coverage_dot,
    coverage_matrix,
    intersection_volume_matrix,
)
from repro.geometry.index import BucketIndex
from repro.geometry.ranges import _EPS
from repro.geometry.volume import (
    QMC_POINTS,
    _disc_quadrant_area_vec,
    _qmc_unit_points,
    _unit_square_halfspace_fraction,
)
from repro.observability.metrics import default_registry

__all__ = [
    "DEFAULT_CROSSOVER",
    "DEFAULT_MIN_SPARSE_BUCKETS",
    "get_crossover_threshold",
    "set_crossover_threshold",
    "get_min_sparse_buckets",
    "set_min_sparse_buckets",
    "sparse_coverage_dot",
    "sparse_coverage_matrix",
    "sparse_intersection_volume_matrix",
    "coverage_matrix_csr",
    "intersection_volume_matrix_csr",
    "sparse_containment_dot",
    "sparse_containment_matrix",
]

#: Base candidate-density (candidate pairs / (n·m)) crossover.  A family
#: group falls back to the dense kernel above ``DEFAULT_CROSSOVER ×
#: _KERNEL_COST_SCALE[kernel]``: the box kernel's dense form is a handful
#: of contiguous ufunc passes (cheap per entry, so sparse only wins when
#: pruning is strong), while the dense halfspace (2^d inclusion–exclusion)
#: and ball (QMC) kernels cost enough per entry that sparse stays ahead at
#: much higher densities.  Calibrated on the committed BENCH_sparse run.
DEFAULT_CROSSOVER = 0.02

#: Relative per-entry cost of each family's dense kernel vs the box kernel.
_KERNEL_COST_SCALE = {"box": 1.0, "halfspace": 4.0, "ball": 16.0}

#: Below this bucket count the sparse entry points delegate straight to
#: the dense kernels — index lookup overhead beats the savings.
DEFAULT_MIN_SPARSE_BUCKETS = 1024

_SPARSE_CANDIDATES = default_registry().counter(
    "repro_sparse_candidates",
    "Candidate (query, bucket) pairs emitted by the spatial index",
    labels=("kernel",),
)
_SPARSE_PRUNED_FRAC = default_registry().gauge(
    "repro_sparse_pruned_frac",
    "Fraction of (query, bucket) pairs pruned by the spatial index (last call)",
    labels=("kernel",),
)
_SPARSE_CALLS = default_registry().counter(
    "repro_sparse_calls_total",
    "Sparse kernel dispatch decisions by family and chosen path",
    labels=("kernel", "path"),
)
_SPARSE_CROSSOVER = default_registry().gauge(
    "repro_sparse_crossover",
    "Candidate-density threshold above which sparse kernels fall back to dense",
)


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


_crossover = min(max(_env_float("REPRO_SPARSE_CROSSOVER", DEFAULT_CROSSOVER), 0.0), 1.0)
_min_buckets = max(
    0, int(_env_float("REPRO_SPARSE_MIN_BUCKETS", DEFAULT_MIN_SPARSE_BUCKETS))
)
_SPARSE_CROSSOVER.set(_crossover)


def get_crossover_threshold() -> float:
    """Candidate density above which a family group runs dense."""
    return _crossover


def set_crossover_threshold(value: float) -> float:
    """Set the dense-fallback density threshold; returns the previous value.

    ``1.0`` effectively forces the sparse path (density never exceeds 1),
    ``0.0`` forces dense for every indexed family.
    """
    global _crossover
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"crossover threshold must be in [0, 1], got {value}")
    previous = _crossover
    _crossover = value
    _SPARSE_CROSSOVER.set(value)
    return previous


def get_min_sparse_buckets() -> int:
    """Bucket-count floor below which sparse entry points run dense."""
    return _min_buckets


def set_min_sparse_buckets(value: int) -> int:
    """Set the bucket-count floor; returns the previous value."""
    global _min_buckets
    value = int(value)
    if value < 0:
        raise ValueError(f"min sparse buckets must be >= 0, got {value}")
    previous = _min_buckets
    _min_buckets = value
    return previous


def _effective_crossover(kernel: str) -> float:
    """Per-kernel density threshold: base knob × dense-kernel cost scale."""
    return min(1.0, _crossover * _KERNEL_COST_SCALE.get(kernel, 1.0))


def _record(kernel: str, n: int, m: int, pairs: int, path: str) -> None:
    _SPARSE_CANDIDATES.inc(int(pairs), kernel=kernel)
    total = n * m
    if total:
        _SPARSE_PRUNED_FRAC.set(1.0 - pairs / total, kernel=kernel)
    _SPARSE_CALLS.inc(1, kernel=kernel, path=path)


def _pair_chunks(total: int, per_pair_elements: int):
    step = max(1, CHUNK_ELEMENTS // max(1, int(per_pair_elements)))
    for start in range(0, total, step):
        yield start, min(start + step, total)


# ---------------------------------------------------------------------------
# Per-pair kernels (arithmetic mirrors of the dense broadcast kernels)
# ---------------------------------------------------------------------------


def _box_pair_volumes(
    q_lows: np.ndarray,
    q_highs: np.ndarray,
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
) -> np.ndarray:
    """Exact box∩box volumes for candidate pairs.

    Per-dimension max/min/sub/clamp with widths multiplied in dimension
    order — entry-for-entry the same operations as
    :func:`~repro.geometry.batch.box_box_volume_matrix`.
    """
    d = q_lows.shape[1]
    vals = np.empty(rows.size)
    for start, stop in _pair_chunks(rows.size, 4 * d):
        r = rows[start:stop]
        c = cols[start:stop]
        acc = None
        for k in range(d):
            lo = np.maximum(q_lows[r, k], b_lows[c, k])
            hi = np.minimum(q_highs[r, k], b_highs[c, k])
            np.subtract(hi, lo, out=hi)
            np.maximum(hi, 0.0, out=hi)
            acc = hi if k == 0 else acc * hi
        vals[start:stop] = acc
    return vals


def _halfspace_pair_volumes(
    normals: np.ndarray,
    offsets: np.ndarray,
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    b_volumes: np.ndarray | None,
    rows: np.ndarray,
    cols: np.ndarray,
) -> np.ndarray:
    """Halfspace∩box volumes for candidate pairs.

    Pairwise transcription of
    :func:`~repro.geometry.batch.box_halfspace_volume_matrix`: the same
    active-pattern grouping, threshold adjustment, 2-D closed form, and
    inclusion–exclusion identity, evaluated on flat pair arrays instead of
    a broadcast grid.
    """
    widths = b_highs - b_lows
    if b_volumes is None:
        b_volumes = np.prod(widths, axis=1)
    thresholds = offsets[rows] - np.einsum("pd,pd->p", normals[rows], b_lows[cols])
    scales = np.maximum(1.0, np.max(np.abs(normals), axis=1))
    active = np.abs(normals) > 1e-15 * scales[:, None]
    patterns, inverse = np.unique(active, axis=0, return_inverse=True)
    pair_pattern = np.ravel(inverse)[rows]
    vals = np.empty(rows.size)
    for p_idx in range(patterns.shape[0]):
        sel = np.flatnonzero(pair_pattern == p_idx)
        if sel.size == 0:
            continue
        mask = patterns[p_idx]
        a_dim = int(mask.sum())
        if a_dim == 0:
            vals[sel] = np.where(thresholds[sel] <= 0.0, b_volumes[cols[sel]], 0.0)
            continue
        act = np.flatnonzero(mask)
        for start, stop in _pair_chunks(sel.size, (1 << a_dim) + 4 * a_dim):
            part = sel[start:stop]
            bv = b_volumes[cols[part]]
            coeffs = normals[rows[part]][:, act] * widths[cols[part]][:, act]
            th = thresholds[part] - np.sum(np.where(coeffs < 0, coeffs, 0.0), axis=1)
            coeffs = np.abs(coeffs)
            if a_dim == 2:
                fraction = _unit_square_halfspace_fraction(
                    coeffs[:, 0], coeffs[:, 1], th
                )
                vals[part] = np.maximum(bv * (1.0 - fraction), 0.0)
                continue
            eps = 1e-12 * np.maximum(1.0, np.max(coeffs, axis=1, keepdims=True))
            coeffs = np.maximum(coeffs, eps)
            bits_masks = np.arange(1 << a_dim, dtype=np.int64)
            bits = ((bits_masks[:, None] >> np.arange(a_dim)) & 1).astype(float)
            signs = np.where((np.sum(bits, axis=1) % 2) == 0, 1.0, -1.0)
            dots = coeffs @ bits.T
            terms = np.maximum(0.0, th[:, None] - dots) ** a_dim
            raw = terms @ signs
            denom = math.factorial(a_dim) * np.prod(coeffs, axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                fraction = np.where(denom > 0, raw / denom, 0.0)
            fraction = np.clip(fraction, 0.0, 1.0)
            totals = np.sum(coeffs, axis=1)
            fraction = np.where(th <= 0.0, 0.0, fraction)
            fraction = np.where(th >= totals, 1.0, fraction)
            vals[part] = np.maximum(bv * (1.0 - fraction), 0.0)
    return vals


def _ball_pair_volumes(
    centers: np.ndarray,
    radii: np.ndarray,
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    b_volumes: np.ndarray | None,
    rows: np.ndarray,
    cols: np.ndarray,
) -> np.ndarray:
    """Ball∩box volumes for candidate pairs.

    Pairwise transcription of
    :func:`~repro.geometry.batch.box_ball_volume_matrix`: exact interval
    overlap in 1-D, quadrant decomposition in 2-D, and the same fixed
    Sobol point set above.
    """
    d = centers.shape[1]
    if d == 1:
        lo = np.maximum(b_lows[cols, 0], centers[rows, 0] - radii[rows])
        hi = np.minimum(b_highs[cols, 0], centers[rows, 0] + radii[rows])
        return np.maximum(hi - lo, 0.0)
    if d == 2:
        vals = np.empty(rows.size)
        for start, stop in _pair_chunks(rows.size, 10):
            r = rows[start:stop]
            c = cols[start:stop]
            cx = centers[r, 0]
            cy = centers[r, 1]
            rad = radii[r]
            x0 = b_lows[c, 0] - cx
            y0 = b_lows[c, 1] - cy
            x1 = b_highs[c, 0] - cx
            y1 = b_highs[c, 1] - cy
            area = (
                _disc_quadrant_area_vec(x1, y1, rad)
                - _disc_quadrant_area_vec(x0, y1, rad)
                - _disc_quadrant_area_vec(x1, y0, rad)
                + _disc_quadrant_area_vec(x0, y0, rad)
            )
            vals[start:stop] = np.maximum(area, 0.0)
        return vals
    if b_volumes is None:
        b_volumes = np.prod(b_highs - b_lows, axis=1)
    vals = np.empty(rows.size)
    unit = _qmc_unit_points(d, QMC_POINTS)  # the scalar path's point set
    points = unit.shape[0]
    for start, stop in _pair_chunks(rows.size, 6 * d):
        r = rows[start:stop]
        c = cols[start:stop]
        ctr = centers[r]
        rad = radii[r]
        bl = b_lows[c]
        bh = b_highs[c]
        clip_lows = np.maximum(bl, ctr - rad[:, None])
        clip_highs = np.minimum(bh, ctr + rad[:, None])
        empty = np.any(clip_lows > clip_highs, axis=1)
        corners = np.maximum(np.abs(bl - ctr), np.abs(bh - ctr))
        contained = np.sum(corners**2, axis=1) <= (rad**2 + 1e-15)
        out = np.where(~empty & contained, b_volumes[c], 0.0)
        pending = np.flatnonzero(~empty & ~contained)
        step = max(1, CHUNK_ELEMENTS // (points * d))
        for p_start in range(0, pending.size, step):
            sel = pending[p_start : p_start + step]
            lows = clip_lows[sel]
            widths = clip_highs[sel] - lows
            clip_volumes = np.prod(widths, axis=1)
            scaled = lows[:, None, :] + unit[None, :, :] * widths[:, None, :]
            sq_dist = np.sum((scaled - ctr[sel][:, None, :]) ** 2, axis=2)
            inside = sq_dist <= (rad[sel][:, None] ** 2 + _EPS)
            out[sel] = clip_volumes * np.mean(inside, axis=1)
        vals[start:stop] = out
    return vals


# ---------------------------------------------------------------------------
# Workload segmentation: candidate pairs + per-family dense fallbacks
# ---------------------------------------------------------------------------


def _finite_rows(*arrays: np.ndarray) -> np.ndarray:
    mask = np.ones(arrays[0].shape[0], dtype=bool)
    for arr in arrays:
        flat = np.isfinite(arr)
        mask &= flat if flat.ndim == 1 else flat.all(axis=1)
    return mask


def _overlap_segments(queries: list, index: BucketIndex, b_volumes: np.ndarray | None):
    """Split a mixed workload into sparse pair segments and dense rows.

    Yields ``("pairs", idx, rows, cols, vals)`` — ``idx`` global query
    positions, ``rows`` local into ``idx`` — or ``("dense", idx)``, which
    routes those query rows back to the caller's dense kernel.  Dense
    segments carry *indices only*: the consumers run the appropriate
    chunked dense kernel (``coverage_dot`` for the fused dot,
    ``intersection_volume_matrix`` for matrix outputs), so a dense
    fallback never materialises an un-chunked ``(n, m)`` block — and is
    bitwise-identical to the pure dense path for those rows.
    Concatenating segments reproduces
    :func:`~repro.geometry.batch.intersection_volume_matrix`
    entry-for-entry (pruned pairs are exact dense zeros).
    """
    b_lows, b_highs = index.b_lows, index.b_highs
    m = index.m
    boxes, halfspaces, balls, other = _group_by_kind(queries)

    if boxes:
        q_lows, q_highs = boxes_to_arrays([queries[i] for i in boxes])
        yield from _box_like_segments(
            "box",
            np.asarray(boxes),
            q_lows,
            q_highs,
            index,
            lambda rows, cols: _box_pair_volumes(
                q_lows, q_highs, b_lows, b_highs, rows, cols
            ),
        )

    if halfspaces:
        normals = np.stack([queries[i].normal for i in halfspaces])
        offsets = np.array([queries[i].offset for i in halfspaces])
        idx = np.asarray(halfspaces)
        finite = _finite_rows(normals, offsets)
        if not finite.all():
            yield ("dense", idx[~finite])
            idx, normals, offsets = idx[finite], normals[finite], offsets[finite]
        if idx.size:
            keep = index.halfspace_candidates(normals, offsets)
            pairs = int(keep.sum())
            if pairs > _effective_crossover("halfspace") * idx.size * m:
                _record("halfspace", idx.size, m, pairs, "dense")
                yield ("dense", idx)
            else:
                _record("halfspace", idx.size, m, pairs, "sparse")
                rows, cols = np.nonzero(keep)
                vals = _halfspace_pair_volumes(
                    normals, offsets, b_lows, b_highs, b_volumes, rows, cols
                )
                yield ("pairs", idx, rows, cols, vals)

    if balls:
        centers = np.stack([queries[i].ball_center for i in balls])
        radii = np.array([queries[i].radius for i in balls])
        idx = np.asarray(balls)
        # Ball bounding boxes computed directly from center ± radius:
        # Ball.bounding_box() clips to the unit domain, which would prune
        # wrongly for buckets outside it.
        yield from _box_like_segments(
            "ball",
            idx,
            centers - radii[:, None],
            centers + radii[:, None],
            index,
            lambda rows, cols: _ball_pair_volumes(
                centers, radii, b_lows, b_highs, b_volumes, rows, cols
            ),
        )

    if other:
        _SPARSE_CALLS.inc(len(other), kernel="other", path="dense")
        yield ("dense", np.asarray(other))


def _box_like_segments(kernel, idx, q_lows, q_highs, index, pair_fn):
    """Shared box/ball flow: finite split, candidate lookup, crossover."""
    m = index.m
    finite = _finite_rows(q_lows, q_highs)
    if not finite.all():
        yield ("dense", idx[~finite])
        keep = np.flatnonzero(finite)
        idx = idx[keep]
        if idx.size == 0:
            return
        lookup_lows, lookup_highs = q_lows[keep], q_highs[keep]
    else:
        keep = None
        lookup_lows, lookup_highs = q_lows, q_highs
    eff = _effective_crossover(kernel)
    max_pairs = None if eff >= 1.0 else int(eff * idx.size * m)
    found = index.candidates_for_boxes(lookup_lows, lookup_highs, max_pairs)
    if found is None or int(found[0][-1]) > eff * idx.size * m:
        pairs = int(found[0][-1]) if found is not None else idx.size * m
        _record(kernel, idx.size, m, pairs, "dense")
        yield ("dense", idx)
        return
    indptr, cols = found
    pairs = int(indptr[-1])
    _record(kernel, idx.size, m, pairs, "sparse")
    rows = np.repeat(np.arange(idx.size, dtype=np.int64), np.diff(indptr))
    # pair_fn indexes the *family* arrays — map local rows back when
    # non-finite rows were split off above.
    fam_rows = rows if keep is None else keep[rows]
    yield ("pairs", idx, rows, cols, pair_fn(fam_rows, cols))


# ---------------------------------------------------------------------------
# Public entry points — volume / coverage
# ---------------------------------------------------------------------------


def sparse_intersection_volume_matrix(
    queries: Sequence, index: BucketIndex, b_volumes: np.ndarray | None = None
) -> np.ndarray:
    """``Vol(B_j ∩ R_i)`` as a dense array, computed only on candidate pairs."""
    queries = list(queries)
    if index.m < _min_buckets:
        return intersection_volume_matrix(queries, index.b_lows, index.b_highs, b_volumes)
    out = np.zeros((len(queries), index.m))
    for seg in _overlap_segments(queries, index, b_volumes):
        if seg[0] == "dense":
            _, idx = seg
            out[idx] = intersection_volume_matrix(
                [queries[i] for i in idx], index.b_lows, index.b_highs, b_volumes
            )
        else:
            _, idx, rows, cols, vals = seg
            out[idx[rows], cols] = vals
    return out


def sparse_coverage_matrix(
    queries: Sequence, index: BucketIndex, b_volumes: np.ndarray | None = None
) -> np.ndarray:
    """Eq. (8) design matrix via the spatial index (dense ``ndarray`` out).

    Identical values to :func:`~repro.geometry.batch.coverage_matrix` —
    solvers can consume it unchanged.
    """
    queries = list(queries)
    if index.m < _min_buckets:
        return coverage_matrix(queries, index.b_lows, index.b_highs, b_volumes)
    if b_volumes is None:
        b_volumes = np.prod(index.b_highs - index.b_lows, axis=1)
    else:
        b_volumes = np.asarray(b_volumes, dtype=float)
    overlaps = sparse_intersection_volume_matrix(queries, index, b_volumes)
    with np.errstate(divide="ignore", invalid="ignore"):
        fractions = np.where(b_volumes[None, :] > 0, overlaps / b_volumes[None, :], 0.0)
    return np.clip(fractions, 0.0, 1.0)


def sparse_coverage_dot(
    queries: Sequence,
    index: BucketIndex,
    b_volumes: np.ndarray | None,
    weights: np.ndarray,
) -> np.ndarray:
    """Fused sparse prediction kernel: ``coverage_matrix(...) @ weights``.

    The sparse analogue of :func:`~repro.geometry.batch.coverage_dot`:
    candidate pair volumes are normalised, clipped, weighted and reduced
    per query with one ``bincount`` — pruned pairs contribute exactly 0.
    """
    queries = list(queries)
    weights = np.asarray(weights, dtype=float)
    if index.m < _min_buckets:
        return coverage_dot(queries, index.b_lows, index.b_highs, b_volumes, weights)
    if b_volumes is None:
        b_volumes = np.prod(index.b_highs - index.b_lows, axis=1)
    else:
        b_volumes = np.asarray(b_volumes, dtype=float)
    out = np.zeros(len(queries))
    for seg in _overlap_segments(queries, index, b_volumes):
        if seg[0] == "dense":
            _, idx = seg
            # The chunked dense dot — bitwise-identical to the pure dense
            # predict path for these rows.
            out[idx] = coverage_dot(
                [queries[i] for i in idx],
                index.b_lows,
                index.b_highs,
                b_volumes,
                weights,
            )
        else:
            _, idx, rows, cols, vals = seg
            bv = b_volumes[cols]
            with np.errstate(divide="ignore", invalid="ignore"):
                frac = np.where(bv > 0, vals / bv, 0.0)
            np.clip(frac, 0.0, 1.0, out=frac)
            out[idx] = np.bincount(rows, weights=frac * weights[cols], minlength=idx.size)
    return out


# ---------------------------------------------------------------------------
# Public entry points — CSR outputs
# ---------------------------------------------------------------------------


def _csr_parts(queries: list, index: BucketIndex, b_volumes: np.ndarray | None):
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    for seg in _overlap_segments(queries, index, b_volumes):
        if seg[0] == "dense":
            _, idx = seg
            block = intersection_volume_matrix(
                [queries[i] for i in idx], index.b_lows, index.b_highs, b_volumes
            )
            r, c = np.nonzero(block)
            rows_parts.append(idx[r])
            cols_parts.append(c)
            vals_parts.append(block[r, c])
        else:
            _, idx, rows, cols, vals = seg
            rows_parts.append(idx[rows])
            cols_parts.append(cols)
            vals_parts.append(vals)
    if rows_parts:
        return (
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
        )
    empty_i = np.empty(0, dtype=np.int64)
    return empty_i, empty_i, np.empty(0)


def intersection_volume_matrix_csr(
    queries: Sequence, index: BucketIndex, b_volumes: np.ndarray | None = None
):
    """``Vol(B_j ∩ R_i)`` as a SciPy CSR matrix (explicit entries only)."""
    from scipy.sparse import csr_matrix

    queries = list(queries)
    rows, cols, vals = _csr_parts(queries, index, b_volumes)
    return csr_matrix((vals, (rows, cols)), shape=(len(queries), index.m))


def coverage_matrix_csr(
    queries: Sequence, index: BucketIndex, b_volumes: np.ndarray | None = None
):
    """Eq. (8) design matrix as a SciPy CSR matrix."""
    from scipy.sparse import csr_matrix

    queries = list(queries)
    if b_volumes is None:
        b_volumes = np.prod(index.b_highs - index.b_lows, axis=1)
    else:
        b_volumes = np.asarray(b_volumes, dtype=float)
    rows, cols, vals = _csr_parts(queries, index, b_volumes)
    bv = b_volumes[cols]
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.where(bv > 0, vals / bv, 0.0)
    np.clip(frac, 0.0, 1.0, out=frac)
    return csr_matrix((frac, (rows, cols)), shape=(len(queries), index.m))


# ---------------------------------------------------------------------------
# Public entry points — containment (Eq. 7, point-support models)
# ---------------------------------------------------------------------------

#: Bounding-box padding for candidate lookups feeding containment tests:
#: ``contains`` uses a ``±1e-12`` closure epsilon (and ``sqrt`` of it for
#: squared ball distances), so candidate boxes grow by sqrt(_EPS).
_CONTAIN_PAD = float(np.sqrt(_EPS))


def _containment_segments(queries: list, index: BucketIndex):
    """Per-family membership pairs against a *point* index.

    Yields the same segment shapes as :func:`_overlap_segments`, with
    0/1 membership values mirroring
    :func:`~repro.geometry.batch.containment_matrix` per pair.
    """
    points = index.b_lows  # point support: lows == highs == points
    m = index.m
    boxes, halfspaces, balls, other = _group_by_kind(queries)

    # Membership tests are a few comparisons per pair for every family, so
    # the base (box) crossover applies throughout.
    eff = _effective_crossover("box")

    if boxes:
        q_lows, q_highs = boxes_to_arrays([queries[i] for i in boxes])
        idx = np.asarray(boxes)
        max_pairs = None if eff >= 1.0 else int(eff * idx.size * m)
        found = index.candidates_for_boxes(
            q_lows - _CONTAIN_PAD, q_highs + _CONTAIN_PAD, max_pairs
        )
        if found is None or int(found[0][-1]) > eff * idx.size * m:
            pairs = int(found[0][-1]) if found is not None else idx.size * m
            _record("box", idx.size, m, pairs, "dense")
            yield ("dense", idx)
        else:
            indptr, cols = found
            pairs = int(indptr[-1])
            _record("box", idx.size, m, pairs, "sparse")
            rows = np.repeat(np.arange(idx.size, dtype=np.int64), np.diff(indptr))
            inside = np.ones(rows.size, dtype=bool)
            for k in range(q_lows.shape[1]):
                coords = points[cols, k]
                inside &= coords >= q_lows[rows, k] - _EPS
                inside &= coords <= q_highs[rows, k] + _EPS
            yield ("pairs", idx, rows, cols, inside.astype(float))

    if halfspaces:
        normals = np.stack([queries[i].normal for i in halfspaces])
        offsets = np.array([queries[i].offset for i in halfspaces])
        idx = np.asarray(halfspaces)
        keep = index.halfspace_candidates(normals, offsets)
        pairs = int(keep.sum())
        if pairs > eff * idx.size * m:
            _record("halfspace", idx.size, m, pairs, "dense")
            yield ("dense", idx)
        else:
            _record("halfspace", idx.size, m, pairs, "sparse")
            rows, cols = np.nonzero(keep)
            dots = np.einsum("pd,pd->p", normals[rows], points[cols])
            inside = dots >= offsets[rows] - _EPS
            yield ("pairs", idx, rows, cols, inside.astype(float))

    if balls:
        centers = np.stack([queries[i].ball_center for i in balls])
        radii = np.array([queries[i].radius for i in balls])
        idx = np.asarray(balls)
        pad = radii[:, None] + _CONTAIN_PAD
        max_pairs = None if eff >= 1.0 else int(eff * idx.size * m)
        found = index.candidates_for_boxes(centers - pad, centers + pad, max_pairs)
        if found is None or int(found[0][-1]) > eff * idx.size * m:
            pairs = int(found[0][-1]) if found is not None else idx.size * m
            _record("ball", idx.size, m, pairs, "dense")
            yield ("dense", idx)
        else:
            indptr, cols = found
            pairs = int(indptr[-1])
            _record("ball", idx.size, m, pairs, "sparse")
            rows = np.repeat(np.arange(idx.size, dtype=np.int64), np.diff(indptr))
            sq_dist = np.zeros(rows.size)
            for k in range(centers.shape[1]):
                diff = points[cols, k] - centers[rows, k]
                sq_dist += diff * diff
            inside = sq_dist <= (radii[rows] ** 2 + _EPS)
            yield ("pairs", idx, rows, cols, inside.astype(float))

    if other:
        _SPARSE_CALLS.inc(len(other), kernel="other", path="dense")
        yield ("dense", np.asarray(other))


def sparse_containment_matrix(queries: Sequence, index: BucketIndex) -> np.ndarray:
    """Eq. (7) membership matrix via the spatial index (dense out)."""
    queries = list(queries)
    if index.m < _min_buckets:
        return containment_matrix(queries, index.b_lows)
    out = np.zeros((len(queries), index.m))
    for seg in _containment_segments(queries, index):
        if seg[0] == "dense":
            _, idx = seg
            out[idx] = containment_matrix([queries[i] for i in idx], index.b_lows)
        else:
            _, idx, rows, cols, vals = seg
            out[idx[rows], cols] = vals
    return out


def sparse_containment_dot(
    queries: Sequence, index: BucketIndex, weights: np.ndarray
) -> np.ndarray:
    """Fused sparse membership prediction: ``containment_matrix @ weights``."""
    queries = list(queries)
    weights = np.asarray(weights, dtype=float)
    if index.m < _min_buckets:
        return containment_matrix(queries, index.b_lows) @ weights
    out = np.zeros(len(queries))
    for seg in _containment_segments(queries, index):
        if seg[0] == "dense":
            _, idx = seg
            out[idx] = (
                containment_matrix([queries[i] for i in idx], index.b_lows) @ weights
            )
        else:
            _, idx, rows, cols, vals = seg
            out[idx] = np.bincount(rows, weights=vals * weights[cols], minlength=idx.size)
    return out
