"""Arrangement of training ranges (Section 3.1 bucket design).

The generic learning procedure of Section 3.1 chooses buckets from the
*arrangement* of the training ranges: the partition of the domain into
maximal regions lying in the same subset of ranges.  Two constructions are
provided:

* :func:`box_arrangement_cells` — the exact arrangement refinement for
  orthogonal ranges: the coordinate grid induced by all box edges.  Each
  grid cell lies in a fixed subset of the ranges (constant complexity), so
  the grid is a valid refinement in the sense of the paper.  Size is
  ``O((2n+1)^d)``, which is why the paper (and we) only use it in low
  dimension.

* :func:`sign_vector_cells` — the generic construction for arbitrary
  ranges: Monte-Carlo points are grouped by their *sign vector* (the subset
  of ranges containing them), and one representative per distinct sign
  vector becomes a discrete-distribution bucket.  This realises the
  discrete-distribution variant of Section 3.1 for any query class.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.ranges import Box, Halfspace, Range, unit_box
from repro.geometry.sampling import sample_in_box

__all__ = [
    "box_arrangement_cells",
    "sign_vector_cells",
    "halfspace_arrangement_points",
]


def box_arrangement_cells(
    boxes: Sequence[Box],
    domain: Box | None = None,
    max_cells: int = 250_000,
) -> list[Box]:
    """Exact grid refinement of the arrangement of axis-aligned boxes.

    Every returned cell is a box lying entirely inside or outside each input
    box, and the cells partition the domain (up to measure-zero boundaries).

    Raises
    ------
    ValueError
        If the refinement would exceed ``max_cells`` (a guard against the
        exponential blow-up the paper warns about).
    """
    if not boxes:
        domain = domain if domain is not None else unit_box(1)
        return [domain]
    dim = boxes[0].dim
    if domain is None:
        domain = unit_box(dim)
    if any(b.dim != dim for b in boxes):
        raise ValueError("all boxes must share a dimension")

    cuts_per_dim: list[np.ndarray] = []
    cell_count = 1
    for axis in range(dim):
        coords = {float(domain.lows[axis]), float(domain.highs[axis])}
        for box in boxes:
            lo = float(np.clip(box.lows[axis], domain.lows[axis], domain.highs[axis]))
            hi = float(np.clip(box.highs[axis], domain.lows[axis], domain.highs[axis]))
            coords.add(lo)
            coords.add(hi)
        cuts = np.array(sorted(coords))
        cuts_per_dim.append(cuts)
        cell_count *= max(1, len(cuts) - 1)
        if cell_count > max_cells:
            raise ValueError(
                f"arrangement refinement would need >{max_cells} cells "
                f"(dimension {dim}, {len(boxes)} ranges); use sign_vector_cells instead"
            )

    cells: list[Box] = []
    index = [0] * dim
    while True:
        lows = np.array([cuts_per_dim[a][index[a]] for a in range(dim)])
        highs = np.array([cuts_per_dim[a][index[a] + 1] for a in range(dim)])
        cells.append(Box(lows, highs))
        # Odometer-style increment over the grid indices.
        axis = 0
        while axis < dim:
            index[axis] += 1
            if index[axis] < len(cuts_per_dim[axis]) - 1:
                break
            index[axis] = 0
            axis += 1
        if axis == dim:
            break
    return cells


def sign_vector_cells(
    ranges: Sequence[Range],
    rng: np.random.Generator,
    domain: Box | None = None,
    samples: int = 4096,
) -> np.ndarray:
    """Representative points for the distinct arrangement cells of ``ranges``.

    Draws ``samples`` uniform points in the domain, groups them by the
    subset of ranges containing them, and returns one representative point
    per non-trivial group (plus one for the "outside everything" region if
    present).  The result is suitable as the support of a discrete
    distribution in the sense of Section 3.1.
    """
    if not ranges:
        domain = domain if domain is not None else unit_box(1)
        return domain.center()[None, :]
    dim = ranges[0].dim
    if domain is None:
        domain = unit_box(dim)
    points = sample_in_box(domain, samples, rng)
    membership = np.stack([np.asarray(r.contains(points)) for r in ranges], axis=1)
    # Hash each sign vector into a grouping key.
    weights = 1 << np.arange(min(len(ranges), 62), dtype=np.int64)
    if len(ranges) <= 62:
        keys = membership[:, : len(weights)] @ weights
    else:  # fall back to row-wise bytes for very large range sets
        keys = np.array([row.tobytes() for row in membership])
    _, first_indices = np.unique(keys, return_index=True)
    return points[np.sort(first_indices)]


def halfspace_arrangement_points(
    halfspaces: Sequence[Halfspace],
    domain: Box | None = None,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Exact cell representatives for a 2-D halfspace (line) arrangement.

    Every bounded cell of an arrangement of lines clipped to a box is
    incident to at least one arrangement *vertex* — a line–line crossing,
    a line–boundary crossing, or a box corner.  Around each vertex the
    incident cells are angular sectors, so points offset from the vertex
    along the sector bisector directions (built from the crossing lines'
    direction vectors) land one in each incident cell.  Generating those
    offsets for every vertex and deduplicating by sign vector yields one
    representative point per non-empty cell — the exact discrete bucket
    set of Section 3.1 for linear-inequality queries in the plane.

    Assumes general position (no three lines through one point); random
    workloads satisfy this almost surely, and a degenerate crossing only
    costs a possibly-missed sliver cell, never a wrong representative.
    """
    if any(h.dim != 2 for h in halfspaces):
        raise ValueError("halfspace_arrangement_points is 2-D only")
    if domain is None:
        domain = unit_box(2)
    if not 0 < epsilon < 0.1:
        raise ValueError(f"epsilon must be in (0, 0.1), got {epsilon}")

    # All boundary lines in implicit form n.x = b: the halfspace boundaries
    # plus the four domain edges.
    normals: list[np.ndarray] = [np.asarray(h.normal, dtype=float) for h in halfspaces]
    offsets: list[float] = [float(h.offset) for h in halfspaces]
    for axis in range(2):
        edge_normal = np.zeros(2)
        edge_normal[axis] = 1.0
        normals.append(edge_normal.copy())
        offsets.append(float(domain.lows[axis]))
        normals.append(edge_normal.copy())
        offsets.append(float(domain.highs[axis]))

    candidates: list[np.ndarray] = [domain.center()]
    # Box corners, offset inward.
    for cx in (domain.lows[0] + epsilon, domain.highs[0] - epsilon):
        for cy in (domain.lows[1] + epsilon, domain.highs[1] - epsilon):
            candidates.append(np.array([cx, cy]))
    # Line-line crossings with sector-bisector offsets.
    n_lines = len(normals)
    for i in range(n_lines):
        for j in range(i + 1, n_lines):
            matrix = np.stack([normals[i], normals[j]])
            det = float(np.linalg.det(matrix))
            if abs(det) < 1e-12:
                continue  # parallel
            vertex = np.linalg.solve(matrix, np.array([offsets[i], offsets[j]]))
            if not (
                domain.lows[0] - epsilon <= vertex[0] <= domain.highs[0] + epsilon
                and domain.lows[1] - epsilon <= vertex[1] <= domain.highs[1] + epsilon
            ):
                continue
            # Direction vectors of the two lines (perpendicular to normals).
            d1 = np.array([-normals[i][1], normals[i][0]])
            d2 = np.array([-normals[j][1], normals[j][0]])
            d1 /= np.linalg.norm(d1)
            d2 /= np.linalg.norm(d2)
            for direction in (d1 + d2, d1 - d2, -d1 + d2, -d1 - d2):
                norm = float(np.linalg.norm(direction))
                if norm < 1e-12:
                    continue
                candidates.append(vertex + epsilon * direction / norm)

    points = np.clip(
        np.stack(candidates),
        domain.lows + epsilon / 2,
        domain.highs - epsilon / 2,
    )
    # Deduplicate by sign vector over the halfspaces.
    if halfspaces:
        membership = np.stack(
            [np.asarray(h.contains(points)) for h in halfspaces], axis=1
        )
        weights = 1 << np.arange(min(len(halfspaces), 62), dtype=np.int64)
        keys = membership[:, : len(weights)] @ weights
        _, first = np.unique(keys, return_index=True)
        points = points[np.sort(first)]
    else:
        points = points[:1]
    return points
